"""Shared configuration for the benchmark suite.

Each ``test_bench_*`` file regenerates one paper table/figure and prints the
same rows/series the paper reports (captured with ``pytest -s`` or shown in
the benchmark summary). Scales default to "minutes, not hours"; set
``RFPROTECT_BENCH_FULL=1`` to run the paper's full workload sizes (45
trajectories per environment, larger GAN sampling budgets).
"""

from __future__ import annotations

import os

import pytest

FULL_SCALE = os.environ.get("RFPROTECT_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """Workload sizes for the benchmark run."""
    if FULL_SCALE:
        return {
            "gan_quality": "full",
            "fig11_trajectories": 45,   # the paper's count per environment
            "fig12_samples": 300,
            "table1_raters": 32,
            "duration": 10.0,
        }
    return {
        "gan_quality": "fast",
        "fig11_trajectories": 10,
        "fig12_samples": 120,
        "table1_raters": 32,
        "duration": 10.0,
    }


def emit(result) -> None:
    """Print a result's paper-style table into the captured output."""
    print()
    print(result.format_table())
