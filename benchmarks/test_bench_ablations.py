"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the system and quantifies the
design trade-off the paper argues for (or acknowledges as a limitation).
"""

import numpy as np
import pytest

from repro.experiments.artifacts import trained_gan
from repro.experiments.environments import office_environment
from repro.metrics.alignment import spoofing_errors
from repro.privacy import OccupancyModel
from repro.reflector import ReflectorController, ReflectorPanel, RfProtectTag
from repro.reflector.hardware import AntennaSwitchModel, SwitchModel
from repro.types import Trajectory


def _spoof_once(environment, panel, rng, *, switch=None, duration=8.0):
    """Deploy one straight-line ghost on ``panel`` and sense it."""
    controller = ReflectorController(panel, environment.radar_config.chirp)
    shape = Trajectory(np.linspace([-1.2, -0.8], [1.2, 0.8], 40),
                       dt=duration / 39.0)
    placed = controller.place_trajectory(shape)
    schedule = controller.plan_trajectory(placed)
    antenna_switch = AntennaSwitchModel(num_ports=max(8, panel.num_antennas))
    tag = RfProtectTag(panel, switch=switch, antenna_switch=antenna_switch)
    tag.deploy(schedule)
    scene = environment.make_scene()
    scene.add(tag)
    result = environment.make_radar().sense(scene, duration, rng=rng)
    return schedule, result


@pytest.mark.benchmark(group="ablations")
def test_ablation_square_wave_vs_ssb(benchmark):
    """Sec. 5.1: square-wave switching creates harmonic ghosts; ideal
    single-sideband modulation would not. Quantify the harmonic's power."""
    environment = office_environment()

    def run():
        rows = {}
        for name, switch in (("square", SwitchModel()),
                             ("ssb", SwitchModel(include_negative=False,
                                                 max_harmonic=1))):
            rng = np.random.default_rng(5)
            tag_components = []
            controller = ReflectorController(environment.panel,
                                             environment.radar_config.chirp)
            shape = Trajectory(np.linspace([-1.0, 0.0], [1.0, 0.5], 30),
                               dt=0.25)
            placed = controller.place_trajectory(shape)
            schedule = controller.plan_trajectory(placed)
            tag = RfProtectTag(environment.panel, switch=switch)
            tag.deploy(schedule)
            array = environment.make_radar().array
            channel = environment.make_channel()
            tag_components = tag.path_components(2.0, array, channel, rng)
            offsets = sorted({c.beat_offset_hz for c in tag_components})
            rows[name] = {
                "num_lines": len(offsets),
                "has_third_harmonic": any(
                    o > 0 and any(abs(o - 3 * p) < 1.0
                                  for p in offsets if 0 < p < o)
                    for o in offsets
                ),
            }
        return rows

    rows = benchmark(run)
    print()
    print("ablation: switching waveform")
    for name, row in rows.items():
        print(f"  {name:<8} spectral lines: {row['num_lines']:>2}  "
              f"3rd harmonic: {row['has_third_harmonic']}")
    assert rows["square"]["has_third_harmonic"]
    assert not rows["ssb"]["has_third_harmonic"]
    assert rows["ssb"]["num_lines"] < rows["square"]["num_lines"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_panel_antenna_count(benchmark):
    """Sec. 5.2: K_R controls the discrete-angle resolution. Fewer antennas
    -> coarser angle quantization -> larger angle spoofing error."""
    environment = office_environment()

    def run():
        medians = {}
        for num_antennas in (2, 4, 6, 10):
            panel = ReflectorPanel(environment.panel.center,
                                   num_antennas=num_antennas,
                                   spacing=1.0 / max(num_antennas - 1, 1),
                                   wall_angle=0.0, normal_angle=np.pi / 2)
            rng = np.random.default_rng(11)
            schedule, result = _spoof_once(environment, panel, rng)
            errors = spoofing_errors(result.trajectories()[0],
                                     schedule.intended_trajectory(),
                                     environment.radar_position)
            medians[num_antennas] = errors.medians()["angle_deg"]
        return medians

    medians = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("ablation: panel antenna count (fixed 1.0 m aperture)")
    for count, angle_error in medians.items():
        print(f"  K_R={count:<3d} median angle error: {angle_error:.2f} deg")
    # Coarse panels are clearly worse than fine ones.
    assert medians[2] > medians[6]
    assert medians[10] <= medians[2]


@pytest.mark.benchmark(group="ablations")
def test_ablation_reflector_standoff(benchmark):
    """Sec. 5.2: deployment distance trades angular coverage against
    resolution — farther panels subtend fewer, finer angles."""
    environment = office_environment()

    def run():
        rows = {}
        for standoff in (0.6, 1.2, 2.4):
            panel = ReflectorPanel(
                np.asarray(environment.radar_position)
                + np.array([0.0, standoff]),
                wall_angle=0.0, normal_angle=np.pi / 2,
            )
            low, high = panel.angular_coverage(environment.radar_position)
            coverage = np.degrees(high - low)
            angles = panel.antenna_angles(environment.radar_position)
            step = np.degrees(np.abs(np.diff(angles)).mean())
            rows[standoff] = {"coverage_deg": coverage, "step_deg": step}
        return rows

    rows = benchmark(run)
    print()
    print("ablation: reflector standoff distance")
    for standoff, row in rows.items():
        print(f"  {standoff:.1f} m  coverage {row['coverage_deg']:6.1f} deg  "
              f"angle step {row['step_deg']:.1f} deg")
    coverages = [rows[s]["coverage_deg"] for s in (0.6, 1.2, 2.4)]
    steps = [rows[s]["step_deg"] for s in (0.6, 1.2, 2.4)]
    assert coverages[0] > coverages[1] > coverages[2]  # nearer = wider
    assert steps[0] > steps[2]                          # farther = finer


@pytest.mark.benchmark(group="ablations")
def test_ablation_gan_conditioning(benchmark, bench_scale):
    """Sec. 6: the range-class condition steers generated motion range —
    without it there is no per-class control."""
    artifacts = trained_gan(bench_scale["gan_quality"], seed=0)

    def run():
        rng = np.random.default_rng(3)
        per_class = {}
        for label in range(5):
            samples = artifacts.sampler.sample(25, label=label, rng=rng)
            per_class[label] = float(np.mean([t.motion_range()
                                              for t in samples]))
        return per_class

    per_class = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("ablation: cGAN range-class conditioning")
    for label, motion_range in per_class.items():
        print(f"  class {label}: mean generated range {motion_range:.2f} m")
    # The condition must produce a clear low-to-high spread.
    assert per_class[4] > 1.5 * per_class[0]


@pytest.mark.benchmark(group="ablations")
def test_ablation_phantom_activation_q(benchmark):
    """Sec. 7: q ~ 0.5 maximizes occupancy confusion; q in {0, 1} wastes
    the phantoms entirely."""

    def run():
        return {
            q: OccupancyModel(4, 0.2, 4, q).mutual_information()
            for q in (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
        }

    leakage = benchmark(run)
    print()
    print("ablation: phantom activation probability q (N=4, p=0.2, M=4)")
    for q, bits in leakage.items():
        print(f"  q={q:.1f}  I(X;Z) = {bits:.3f} bits")
    assert leakage[0.5] == min(leakage.values())
    assert leakage[0.0] == max(leakage.values())
