"""Benchmarks for the audit trail: ledger throughput and Ed25519 cost.

The audit layer rides along every recorded run, so its cost must stay
trivial next to the experiments it notarizes: appending a record is one
sha256 over a canonical JSON line, verifying a chain is a linear rescan,
and the pure-python Ed25519 sign/verify (big-int point arithmetic, no C
extension) lands in tens of milliseconds — fine for one signature per
run, which is exactly how it is used.

The measured timings are themselves written as ``benchmark_timing``
records into a scratch ledger, chain-verified and signed — the benchmark
eats the subsystem's own dog food — and dumped to ``audit-timings.json``
(override via ``RFPROTECT_AUDIT_TIMINGS``) next to the other CI timing
artifacts.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.audit import Ledger, ed25519, sign_ledger, verify_chain, verify_signature

TIMINGS_PATH = os.environ.get("RFPROTECT_AUDIT_TIMINGS", "audit-timings.json")

NUM_RECORDS = 200
SEED = bytes(range(32))

_RESULTS: dict[str, float] = {}


def test_aa_ledger_append_throughput(tmp_path):
    """Append NUM_RECORDS payloads; record per-append cost."""
    ledger = Ledger(str(tmp_path / "bench.jsonl"))
    payload = {"experiment_id": "fig9", "elapsed_s": 1.25,
               "result_summary": {"median_errors_m": [0.3, 0.4, 0.5]}}
    started = time.perf_counter()
    for index in range(NUM_RECORDS):
        ledger.append("experiment_run", {**payload, "seed": index})
    elapsed = time.perf_counter() - started
    _RESULTS["ledger.append_s"] = elapsed / NUM_RECORDS
    print(f"\nledger append: {elapsed / NUM_RECORDS * 1e6:.1f} us/record")
    assert len(ledger) == NUM_RECORDS

    started = time.perf_counter()
    verification = verify_chain(ledger.path)
    _RESULTS["ledger.verify_chain_s"] = time.perf_counter() - started
    print(f"chain verify ({NUM_RECORDS} records): "
          f"{_RESULTS['ledger.verify_chain_s'] * 1e3:.1f} ms")
    assert verification.ok and verification.length == NUM_RECORDS


def test_ed25519_sign_verify_cost():
    """One signature round-trip; the per-run notarization cost."""
    message = b"\x5a" * 64
    started = time.perf_counter()
    public = ed25519.public_key(SEED)
    _RESULTS["ed25519.keygen_s"] = time.perf_counter() - started

    started = time.perf_counter()
    signature = ed25519.sign(SEED, message)
    _RESULTS["ed25519.sign_s"] = time.perf_counter() - started

    started = time.perf_counter()
    ok = ed25519.verify(public, message, signature)
    _RESULTS["ed25519.verify_s"] = time.perf_counter() - started

    for name in ("ed25519.keygen_s", "ed25519.sign_s", "ed25519.verify_s"):
        print(f"\n{name}: {_RESULTS[name] * 1e3:.1f} ms")
    assert ok
    # Pure-python curve math is slow in absolute terms but must stay in
    # the "one per run is free" regime, with CI-noise headroom.
    assert _RESULTS["ed25519.sign_s"] < 5.0
    assert _RESULTS["ed25519.verify_s"] < 5.0


def test_zz_dump_audit_timings(tmp_path):
    """Ledger the measured timings, sign, verify, and dump the artifact."""
    assert _RESULTS, "measurement tests must run first"
    assert all(np.isfinite(v) for v in _RESULTS.values())

    ledger = Ledger(str(tmp_path / "timings.jsonl"))
    for name in sorted(_RESULTS):
        ledger.append("benchmark_timing",
                      {"name": name, "seconds": _RESULTS[name]})
    signature_doc = sign_ledger(ledger.path, SEED)
    assert verify_signature(ledger.path, signature_doc)

    with open(TIMINGS_PATH, "w", encoding="utf-8") as handle:
        json.dump({"timings": _RESULTS,
                   "ledger_head": signature_doc["payload"]["head_hash"]},
                  handle, indent=2, sort_keys=True)
    print(f"\naudit timings written to {TIMINGS_PATH}")
