"""Benches for the implemented future-work extensions (Sec. 8 / Sec. 13)."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import ext_floorplan, ext_multiradar, ext_pulsed


@pytest.mark.benchmark(group="extensions")
def test_bench_ext_multiradar(benchmark, bench_scale):
    """Dual-radar consistency attack: one tag cannot fool two radars."""
    result = benchmark.pedantic(
        ext_multiradar.run,
        kwargs={"gan_quality": bench_scale["gan_quality"],
                "duration": bench_scale["duration"]},
        rounds=1, iterations=1,
    )
    emit(result)

    assert result.ghost_exposed()
    assert result.report.num_judged_real >= 1
    assert result.report.num_judged_fake >= 1


@pytest.mark.benchmark(group="extensions")
def test_bench_ext_pulsed(benchmark, bench_scale):
    """Pulsed radar: FMCW switching inert, delay lines spoof."""
    result = benchmark.pedantic(
        ext_pulsed.run, kwargs={"duration": bench_scale["duration"]},
        rounds=1, iterations=1,
    )
    emit(result)

    assert result.human_tracking_error_m < 0.15
    assert result.fmcw_tag_tracks == 0
    assert result.delay_tag_tracks >= 1
    assert result.delay_tag_replay_error_m < 2.5 * result.line_spacing_m


@pytest.mark.benchmark(group="extensions")
def test_bench_ext_floorplan(benchmark, bench_scale):
    """Floor-plan constraint removes every wall crossing."""
    result = benchmark.pedantic(
        ext_floorplan.run,
        kwargs={"gan_quality": bench_scale["gan_quality"],
                "num_ghosts": 40},
        rounds=1, iterations=1,
    )
    emit(result)

    assert result.unconstrained_crossing_rate > 0.0
    assert result.constrained_crossings_total == 0
    # Repair is gentle on the ghosts it touches.
    assert result.shape_change_fraction < 0.6
