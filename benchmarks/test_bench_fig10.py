"""Bench for Fig. 10: reflector microbenchmarks.

(a/b) the phantom's range-angle signature vs a real human's after
background subtraction — peak powers must be comparable; (c) the replayed
cGAN trajectory must follow the intended one.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig10


@pytest.mark.benchmark(group="fig10")
def test_bench_fig10_reflector_microbenchmarks(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig10.run,
        kwargs={"gan_quality": bench_scale["gan_quality"],
                "duration": bench_scale["duration"]},
        rounds=1, iterations=1,
    )
    emit(result)

    # Phantom brightness is human-like (the paper shows near-identical
    # profiles; exact parity depends on the human's range).
    assert abs(result.peak_power_ratio_db) < 10.0
    # Both profiles contain exactly one dominant mover.
    for profile in (result.human_profile, result.ghost_profile):
        peaks = profile.detect(threshold=profile.power.max() / 20.0,
                               max_peaks=4)
        assert 1 <= len(peaks) <= 3
    # The replay follows the generated trajectory.
    assert result.replay_median_error_m < 0.35
