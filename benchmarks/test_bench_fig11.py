"""Bench for Fig. 11: end-to-end spoofing accuracy CDFs (home + office).

Regenerates the paper's headline table — median distance / angle / 2-D
location error per environment, modulo translation+rotation — and asserts
the shape: errors within the radar's resolution regime, office >= home on
location error (multipath), paper medians within a small factor.

Paper: home 5.56 cm / 2.05 deg / 12.70 cm; office 10.19 cm / 4.94 deg /
24.49 cm.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig11


@pytest.mark.benchmark(group="fig11")
def test_bench_fig11_spoofing_accuracy(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig11.run,
        kwargs={"num_trajectories": bench_scale["fig11_trajectories"],
                "gan_quality": bench_scale["gan_quality"],
                "duration": bench_scale["duration"]},
        rounds=1, iterations=1,
    )
    emit(result)

    home = result.sweeps["home"].medians()
    office = result.sweeps["office"].medians()

    # Absolute regime: within a small factor of the paper's numbers.
    assert home["distance_m"] < 0.20
    assert home["angle_deg"] < 8.0
    assert home["location_m"] < 0.35
    assert office["location_m"] < 0.50

    # The paper's crossover claim: the office is worse (multipath).
    assert office["location_m"] > home["location_m"]

    # CDFs are well-formed series.
    for sweep in result.sweeps.values():
        for family in ("distance", "angle", "location"):
            values, levels = sweep.cdf(family)
            assert values.shape == levels.shape
            assert levels[-1] == pytest.approx(1.0)
