"""Bench for Fig. 12: normalized FID of the cGAN vs the three baselines.

Paper series: Real 1.0, GAN 1.229, SingleTraj 1.867, ULM 2.022, Random
3.440. The reproduced *shape* is the ordering — the cGAN sits closest to
real motion, random motion is by far the worst. Absolute magnitudes differ:
the CPU-budget GAN is much smaller than the paper's 512-unit model, and the
kinematic-feature FID is more discriminative than an Inception-style
embedding (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig12


@pytest.mark.benchmark(group="fig12")
def test_bench_fig12_normalized_fid(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig12.run,
        kwargs={"num_samples": bench_scale["fig12_samples"],
                "gan_quality": bench_scale["gan_quality"]},
        rounds=1, iterations=1,
    )
    emit(result)

    fid = result.normalized_fid
    assert fid["Real"] == pytest.approx(1.0)
    # The ordering of Fig. 12: GAN < every baseline; Random is worst.
    assert result.ordering_holds()
    assert fid["Random"] == max(fid.values())
    # The smart eavesdropper nails the naive baselines.
    assert result.classifier_accuracy["Random"] > 0.9
