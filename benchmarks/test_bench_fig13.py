"""Bench for Fig. 13: legitimate sensing through the side channel.

A human and a ghost coexist; the eavesdropper reports two targets, the
legitimate sensor filters the disclosed ghost and recovers the human's
trajectory.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig13


@pytest.mark.benchmark(group="fig13")
def test_bench_fig13_legitimate_sensing(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig13.run,
        kwargs={"gan_quality": bench_scale["gan_quality"],
                "duration": bench_scale["duration"]},
        rounds=1, iterations=1,
    )
    emit(result)

    assert result.eavesdropper_count == 2
    assert result.legitimate_count == 1
    assert result.ghost_matched
    assert result.human_recovery_error_m < 0.25
