"""Bench for Fig. 14: breathing-rate spoofing.

The radar's vital-sign pipeline (phase of the subject's range bin) must
read the correct period from the real breather AND the commanded period
from the phantom breather — the two phase traces are the series Fig. 14
plots.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments import fig14


@pytest.mark.benchmark(group="fig14")
def test_bench_fig14_breathing_spoofing(benchmark):
    result = benchmark.pedantic(
        fig14.run, kwargs={"duration": 30.0}, rounds=1, iterations=1,
    )
    emit(result)

    assert result.human_estimated_period_s == pytest.approx(
        result.human_true_period_s, rel=0.08
    )
    assert result.ghost_estimated_period_s == pytest.approx(
        result.ghost_true_period_s, rel=0.08
    )
    # The spoofed phase trace oscillates with a chest-motion-scale
    # excursion: 4*pi*A/lambda ~ 1.4 rad for the default 5 mm chest at
    # 6 GHz. Unwrap and detrend first — the raw angle may straddle the
    # ±pi branch.
    unwrapped = np.unwrap(result.ghost_phase)
    t = np.arange(unwrapped.size)
    detrended = unwrapped - np.polyval(np.polyfit(t, unwrapped, 1), t)
    ghost_span = float(np.ptp(detrended))
    assert 0.05 < ghost_span < 4.0
