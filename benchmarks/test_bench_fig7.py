"""Bench for Fig. 7: mutual information I(X;Z) vs (M, q).

Regenerates the exact curves (N=4, p=0.2, M in {1,2,4,8}) and checks the
paper's shape: endpoints leak H(X), q~0.5 minimizes, more phantoms leak
less.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig7


@pytest.mark.benchmark(group="fig7")
def test_bench_fig7_mutual_information(benchmark):
    result = benchmark(fig7.run)
    emit(result)

    bits = result.mutual_information_bits
    assert bits[:, 0] == pytest.approx(result.baseline_entropy_bits, abs=1e-6)
    assert bits[:, -1] == pytest.approx(result.baseline_entropy_bits, abs=1e-6)
    minima = bits.min(axis=1)
    assert all(b < a for a, b in zip(minima, minima[1:]))
    for row_index in range(bits.shape[0]):
        assert 0.3 <= result.minimum_q(row_index) <= 0.7
