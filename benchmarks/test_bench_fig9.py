"""Bench for Fig. 9: FMCW radar localization of shaped walks (office).

The paper overlays the detected track on ground truth and reports a close
match; the reproduced series is the per-path median/p90 localization error,
which must sit near the radar's 15 cm range resolution.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig9


@pytest.mark.benchmark(group="fig9")
def test_bench_fig9_radar_localization(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig9.run, kwargs={"duration": bench_scale["duration"]},
        rounds=1, iterations=1,
    )
    emit(result)

    for name, median in zip(result.path_names, result.median_errors_m):
        assert median < 2.0 * result.range_resolution_m, (
            f"{name} localization error {median:.3f} m is far beyond the "
            f"range resolution"
        )
