"""Benchmarks for the fused LSTM sequence kernel and the dtype policy.

The paper-scale step is the two-layer H=512 scan the trajectory cGAN runs
per training batch (T=64, B=32 here; Sec. 6 of the paper). Three ratio
guards, all measured over interleaved rounds so a noisy CI neighbor
cannot bias one side:

- fused float64 must beat the naive per-step graph (measured ~2.2x on a
  1-core container; both paths are GEMM-bound at H=512, so the ratio is
  set by batched-GEMM efficiency and graph overhead, not FLOP count),
- fused float32 must beat fused float64 (measured ~1.7x),
- fused float32 must beat naive float64 by 2x (measured ~3.8x) — the
  combined speedup a paper-scale training run actually gets from this PR.

Ratios are computed per round between back-to-back measurements and the
median across rounds is asserted — on a shared core whose speed drifts,
adjacent-in-time measurements see the same machine regime, which makes the
ratio far more stable than comparing two independent minimums.

The per-op wall-time snapshot (``repro.nn.metrics``) is dumped to
``nn-timings.json`` (override via ``RFPROTECT_NN_TIMINGS``) and uploaded
next to the stage/tracker timing artifacts.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.nn import LSTM, Tensor, dtype_scope, nn_metrics, sequence_backend_scope

TIMINGS_PATH = os.environ.get("RFPROTECT_NN_TIMINGS", "nn-timings.json")

SEQ_LEN, BATCH, IN_DIM, HIDDEN, LAYERS = 64, 32, 64, 512, 2
ROUNDS = 5


def paper_scale_case(dtype: str) -> tuple[LSTM, Tensor]:
    with dtype_scope(dtype):
        lstm = LSTM(IN_DIM, HIDDEN, np.random.default_rng(0),
                    num_layers=LAYERS)
        inputs = Tensor(
            np.random.default_rng(1).standard_normal((SEQ_LEN, BATCH, IN_DIM)),
            requires_grad=True,
        )
    return lstm, inputs


def one_step(lstm: LSTM, inputs: Tensor, backend: str) -> float:
    """Time one forward+backward over the paper-scale sequence."""
    lstm.zero_grad()
    inputs.zero_grad()
    started = time.perf_counter()
    with sequence_backend_scope(backend):
        out = lstm.forward_sequence(inputs)
    out.mean().backward()
    return time.perf_counter() - started


def measure_all() -> tuple[dict[str, float], dict[str, list[float]]]:
    """Per-round timings for every (backend, dtype) combination.

    Returns min-of-rounds per case (for the artifact) plus the raw
    per-round series (for the ratio guards).
    """
    cases = {
        ("naive", "float64"): paper_scale_case("float64"),
        ("fused", "float64"): paper_scale_case("float64"),
        ("naive", "float32"): paper_scale_case("float32"),
        ("fused", "float32"): paper_scale_case("float32"),
    }
    series: dict[str, list[float]] = {f"{b}.{d}": [] for b, d in cases}
    for _ in range(ROUNDS):
        for (backend, dtype), (lstm, inputs) in cases.items():
            series[f"{backend}.{dtype}"].append(
                one_step(lstm, inputs, backend)
            )
    return {name: min(values) for name, values in series.items()}, series


_RESULTS: dict[str, float] = {}
_SERIES: dict[str, list[float]] = {}


def median_ratio(slow: str, fast: str) -> float:
    """Median of per-round ratios between two back-to-back measurements."""
    ratios = [s / f for s, f in zip(_SERIES[slow], _SERIES[fast])]
    return float(np.median(ratios))


def test_aa_measure_paper_scale_step():
    """Populate the shared measurement table (runs first by name)."""
    best, series = measure_all()
    _RESULTS.update(best)
    _SERIES.update(series)
    for name, value in sorted(_RESULTS.items()):
        print(f"\n{name}: {value:.3f}s")
    assert all(np.isfinite(v) for v in _RESULTS.values())


def test_fused_float64_beats_naive():
    ratio = median_ratio("naive.float64", "fused.float64")
    print(f"\nfused float64 speedup over naive: {ratio:.2f}x")
    assert ratio >= 1.3, (
        f"fused float64 only {ratio:.2f}x over naive per-step path"
    )


def test_float32_beats_float64_on_fused():
    ratio = median_ratio("fused.float64", "fused.float32")
    print(f"\nfused float32 speedup over float64: {ratio:.2f}x")
    assert ratio >= 1.2, (
        f"float32 fused only {ratio:.2f}x over float64 fused"
    )


def test_combined_training_path_speedup():
    """fused+float32 vs the pre-PR default (naive, float64)."""
    ratio = median_ratio("naive.float64", "fused.float32")
    print(f"\ncombined fused+float32 speedup: {ratio:.2f}x")
    assert ratio >= 1.8, (
        f"combined fused+float32 only {ratio:.2f}x over naive float64"
    )


def test_zz_dump_nn_timings():
    """Write the per-op metrics snapshot plus the step table (runs last)."""
    snapshot = nn_metrics().snapshot()
    histograms = snapshot["histograms"]
    assert histograms.get("nn.lstm_sequence.wall_s", {}).get("count", 0) > 0
    counters = snapshot["counters"]
    assert counters.get("nn.lstm_sequence.fused.runs", 0) > 0
    assert counters.get("nn.lstm_sequence.naive.runs", 0) > 0
    payload = {"paper_scale_step_s": dict(sorted(_RESULTS.items())),
               "metrics": snapshot}
    with open(TIMINGS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote nn timing snapshot to {TIMINGS_PATH}")
