"""Receive-pipeline throughput benches (true timing benchmarks).

Performance-regression guards for the batched receive engine
(`repro.radar.pipeline`): beat cube in, range-angle map stack out. The
headline guard pins the batched engine against the per-frame pipeline it
replaced — the loop that rebuilds the window taper, range axis, angle
grid, and steering matrix on every single frame — at >= 5x on a 256-frame,
7-antenna sweep. A second guard keeps the batched engine ahead of the
shipped ``RF_PROTECT_PIPELINE=naive`` reference backend (which benefits
from this PR's plane memoization, so the honest floor there is lower).

The sweep is deliberately short-chirp/short-range: per-frame overhead is
what the batched engine removes, and a compact sweep keeps the shared
FFT/GEMM arithmetic from drowning that signal on small CI hosts.
"""

import time

import numpy as np
import pytest

from repro.radar import FmcwRadar, RadarConfig, process_sweep
from repro.radar.processing import RangeAngleProfile
from repro.signal.chirp import ChirpConfig

NUM_FRAMES = 256
MAX_RANGE = 2.0


@pytest.fixture(scope="module")
def sweep_setup():
    """A 256-frame, 7-antenna, 64-sample-chirp sweep with noise-like beats."""
    config = RadarConfig(chirp=ChirpConfig(duration=3.2e-5))
    radar = FmcwRadar(config)
    rng = np.random.default_rng(0)
    shape = (NUM_FRAMES, config.num_antennas, config.chirp.num_samples)
    frames = 0.05 * (rng.normal(size=shape) + 1j * rng.normal(size=shape))
    times = np.arange(NUM_FRAMES) / config.frame_rate
    return config, radar, frames, times


def per_frame_reference_sweep(frames, config, array, times, max_range):
    """The pre-batching per-frame pipeline, planes rebuilt every frame.

    This reproduces, operation for operation, what the receive path did
    before the batched engine and the plane memos landed: per frame, a
    fresh Hann taper and windowed FFT, successive-frame subtraction, a
    fresh range axis / angle grid, and a fresh tapered steering matrix for
    Eq. 2. It is the baseline the >= 5x tentpole claim is measured against.
    """
    chirp = config.chirp
    profiles = []
    raw = []
    previous = None
    for t, frame in zip(times, frames):
        n = np.arange(chirp.num_samples)
        taper = 0.5 - 0.5 * np.cos(2.0 * np.pi * n / (chirp.num_samples - 1))
        n_fft = chirp.num_samples * 2
        current = np.fft.fft(frame * taper, n=n_fft, axis=-1)[..., : n_fft // 2]
        raw.append(current)
        subtracted = (np.zeros_like(current) if previous is None
                      else current - previous)
        previous = current
        beat = np.arange(n_fft // 2) * chirp.sample_rate / n_fft
        ranges = np.asarray(chirp.beat_frequency_to_distance(beat))
        keep = (ranges >= config.min_range) & (ranges <= max_range)
        angles = np.linspace(0.0, np.pi, config.angle_grid_points + 2)[1:-1]
        k = np.arange(array.num_antennas)
        phase = (2.0 * np.pi * np.outer(np.cos(angles), k)
                 * array.spacing / array.wavelength)
        steering = np.exp(-1j * phase)
        m = np.arange(array.num_antennas)
        window = 0.54 - 0.46 * np.cos(
            2.0 * np.pi * m / (array.num_antennas - 1))
        steering = steering * (window / window.sum() * array.num_antennas)
        power = np.abs(steering @ subtracted[:, keep]) ** 2
        profiles.append(RangeAngleProfile(power=power.T, ranges=ranges[keep],
                                          angles=angles, time=float(t)))
    return profiles, np.stack(raw)


def best_of(fn, rounds=5):
    elapsed = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        elapsed.append(time.perf_counter() - started)
    return min(elapsed)


@pytest.mark.benchmark(group="substrate-pipeline")
def test_bench_sweep_processing_vectorized(benchmark, sweep_setup):
    """The batched engine on the full 256-frame sweep."""
    config, radar, frames, times = sweep_setup
    sweep = benchmark(process_sweep, frames, config, radar.array, times,
                      max_range=MAX_RANGE)
    assert sweep.power_cube.shape[0] == NUM_FRAMES


@pytest.mark.benchmark(group="substrate-pipeline")
def test_bench_sweep_processing_speedup(sweep_setup):
    """Batched engine vs the pre-batching per-frame pipeline: >= 5x.

    Measured directly (best of 5) rather than through pytest-benchmark so
    the ratio can be asserted as a regression guard.
    """
    config, radar, frames, times = sweep_setup

    def reference_sweep():
        return per_frame_reference_sweep(frames, config, radar.array, times,
                                         MAX_RANGE)

    def batched_sweep():
        return process_sweep(frames, config, radar.array, times,
                             max_range=MAX_RANGE)

    batched_sweep()  # warm the plane memos / BLAS threads before timing
    reference_s = best_of(reference_sweep)
    batched_s = best_of(batched_sweep)
    speedup = reference_s / batched_s
    print(f"\nsweep {NUM_FRAMES} frames x {config.num_antennas} antennas: "
          f"per-frame {reference_s * 1e3:.1f} ms, "
          f"batched {batched_s * 1e3:.1f} ms, speedup {speedup:.1f}x")

    ref_profiles, ref_raw = reference_sweep()
    sweep = batched_sweep()
    np.testing.assert_allclose(sweep.raw_profiles, ref_raw, atol=1e-10)
    for ours, reference in zip(sweep.profiles(), ref_profiles):
        np.testing.assert_allclose(ours.power, reference.power, atol=1e-10)
    assert speedup >= 5.0


@pytest.mark.benchmark(group="substrate-pipeline")
def test_bench_sweep_processing_vs_naive_backend(sweep_setup):
    """Batched engine vs the shipped (memoized) naive backend: >= 1.5x.

    The naive reference backend shares the plane memos, so its per-frame
    cost is already far below the pre-batching loop; this guard only pins
    that switching ``RF_PROTECT_PIPELINE`` to ``vectorized`` keeps paying.
    """
    config, radar, frames, times = sweep_setup

    def naive_sweep():
        return radar._process_sweep_naive(times, frames, MAX_RANGE)

    def batched_sweep():
        return process_sweep(frames, config, radar.array, times,
                             max_range=MAX_RANGE)

    batched_sweep()
    naive_sweep()
    naive_s = best_of(naive_sweep)
    batched_s = best_of(batched_sweep)
    speedup = naive_s / batched_s
    print(f"\nnaive backend {naive_s * 1e3:.1f} ms, "
          f"batched {batched_s * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= 1.5
