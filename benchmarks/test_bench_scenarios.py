"""Build-and-sense timing sweep over the whole scenario catalog.

Every registered scenario is resolved, built, and sensed on the short
golden chirp, timing the two phases separately. The per-scenario wall
times land in ``scenario-timings.json`` (path overridable via
``RFPROTECT_SCENARIO_TIMINGS``), uploaded by the benchmarks job next to
the stage-timing artifact — so a slow new scenario, or a regression in
the builders, is visible per catalog entry.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import numpy as np
import pytest

from repro.radar import FmcwRadar
from repro.scenarios import build, get_scenario, scenario_names
from repro.signal.chirp import ChirpConfig

TIMINGS_PATH = os.environ.get("RFPROTECT_SCENARIO_TIMINGS",
                              "scenario-timings.json")

BENCH_CHIRP_DURATION_S = 6.4e-5
BENCH_SENSE_DURATION_S = 0.8

#: Accumulated per-scenario timings, dumped by the trailing zz test.
_TIMINGS: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_build_and_sense(name):
    started = time.perf_counter()
    built = build(name)
    scene = built.build_scene()
    built_s = time.perf_counter() - started

    config = dataclasses.replace(
        built.radar_configs[0],
        chirp=ChirpConfig(duration=BENCH_CHIRP_DURATION_S),
    )
    started = time.perf_counter()
    result = FmcwRadar(config).sense(scene, BENCH_SENSE_DURATION_S,
                                     rng=np.random.default_rng(0))
    sense_s = time.perf_counter() - started

    assert result.profiles, name
    _TIMINGS[name] = {
        "build_s": built_s,
        "sense_s": sense_s,
        "num_humans": len(get_scenario(name).humans),
        "num_radars": len(built.radar_configs),
    }
    print(f"\n{name}: build {built_s * 1e3:.1f}ms, "
          f"sense {sense_s * 1e3:.1f}ms")


def test_zz_dump_scenario_timings():
    """Write the accumulated per-scenario timings (runs last by name)."""
    assert sorted(_TIMINGS) == list(scenario_names())
    with open(TIMINGS_PATH, "w", encoding="utf-8") as handle:
        json.dump(_TIMINGS, handle, indent=2, sort_keys=True)
    print(f"\nwrote per-scenario timing snapshot to {TIMINGS_PATH}")
