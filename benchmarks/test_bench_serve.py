"""Serving-throughput benches for the micro-batching sensing service.

Performance-regression guard for ``repro.serve``: at 64 concurrent
in-process clients issuing small sense requests, the micro-batched service
(requests coalesced into fused vectorized batches) must clear >= 3x the
throughput of the same service forced to execute one request at a time
(``max_batch_size=1``, no coalescing window, one worker) — the
configuration that models a naive request-per-call server.

The workload is deliberately small per request (64-sample chirp, 2 frames,
noise-free static-clutter scene in a small room): per-request dispatch
overhead is exactly what micro-batching amortizes, and a compact request
keeps the shared GEMM/FFT arithmetic from drowning that signal on small
CI hosts.
"""

import time

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.radar import RadarConfig, Scene
from repro.serve import InProcessClient, SenseRequest, ServiceConfig
from repro.signal.chirp import ChirpConfig

NUM_CLIENTS = 64
SENSE_DURATION_S = 0.2


@pytest.fixture(scope="module")
def serve_workload():
    """64 small sense requests against a static-clutter room."""
    config = RadarConfig(chirp=ChirpConfig(duration=3.2e-5),
                         position=(1.25, 0.1), noise_std=0.0)
    room = Rectangle.from_size(2.5, 2.5)
    scene = Scene(room)
    scene.add_static((1.0, 2.0), rcs=4.0)
    scene.add_static((2.2, 1.1), rcs=2.0)
    requests = [
        SenseRequest(scene=scene, duration=SENSE_DURATION_S, seed=seed)
        for seed in range(NUM_CLIENTS)
    ]
    return config, requests


def best_of(fn, rounds=3):
    elapsed = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        elapsed.append(time.perf_counter() - started)
    return min(elapsed)


BATCHED = ServiceConfig(max_batch_size=32, batch_window_ms=2.0,
                        queue_depth=2 * NUM_CLIENTS, workers=2)
SEQUENTIAL = ServiceConfig(max_batch_size=1, batch_window_ms=0.0,
                           queue_depth=2 * NUM_CLIENTS, workers=1)


@pytest.mark.benchmark(group="serve")
def test_bench_serve_batched_burst(benchmark, serve_workload):
    """One 64-client burst through the micro-batched service."""
    radar_config, requests = serve_workload
    with InProcessClient(BATCHED, default_radar_config=radar_config) as client:
        client.sense_many(requests)  # warm radar/plane memos and the pool
        responses = benchmark(client.sense_many, requests)
    assert len(responses) == NUM_CLIENTS
    assert max(response.batch_size for response in responses) > 1


@pytest.mark.benchmark(group="serve")
def test_bench_serve_batched_vs_sequential_speedup(serve_workload):
    """Micro-batched vs one-request-at-a-time service: >= 3x at 64 clients.

    Measured directly (best of 3) rather than through pytest-benchmark so
    the throughput ratio can be asserted as a regression guard.
    """
    radar_config, requests = serve_workload

    with InProcessClient(SEQUENTIAL,
                         default_radar_config=radar_config) as client:
        client.sense_many(requests)  # warm-up
        sequential_s = best_of(lambda: client.sense_many(requests))
        assert all(response.batch_size == 1
                   for response in client.sense_many(requests))

    with InProcessClient(BATCHED,
                         default_radar_config=radar_config) as client:
        client.sense_many(requests)  # warm-up
        batched_s = best_of(lambda: client.sense_many(requests))
        batched_responses = client.sense_many(requests)
    assert max(r.batch_size for r in batched_responses) > 1

    speedup = sequential_s / batched_s
    print(f"\n{NUM_CLIENTS} concurrent clients x "
          f"{SENSE_DURATION_S}s sense requests: "
          f"sequential {sequential_s * 1e3:.1f} ms "
          f"({NUM_CLIENTS / sequential_s:.0f} req/s), "
          f"micro-batched {batched_s * 1e3:.1f} ms "
          f"({NUM_CLIENTS / batched_s:.0f} req/s), "
          f"speedup {speedup:.1f}x")

    # Same requests, same seeds: the two scheduling modes must agree
    # bitwise (determinism is independent of batching).
    with InProcessClient(SEQUENTIAL,
                         default_radar_config=radar_config) as client:
        sequential_responses = client.sense_many(requests)
    for batched_r, sequential_r in zip(batched_responses,
                                       sequential_responses):
        assert np.array_equal(batched_r.result.raw_profiles,
                              sequential_r.result.raw_profiles)

    assert speedup >= 3.0
