"""Per-stage timing benches for the stage-graph executor.

Every sense path runs through ``repro.radar.stages``; this bench exercises
the FMCW and pulsed radars on both backends, checks that every stage's
wall-time histogram actually accumulated observations, and dumps the
process-wide :func:`repro.radar.stages.stage_metrics` snapshot to
``stage-timings.json`` (path overridable via ``RFPROTECT_STAGE_TIMINGS``)
— the benchmarks job uploads it next to the pytest-benchmark artifacts,
so a perf regression can be localized to the stage that moved.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.radar import (
    FmcwRadar,
    PulsedRadar,
    PulsedRadarConfig,
    RadarConfig,
    Scene,
    Stage,
    stage_metrics,
)
from repro.signal.chirp import ChirpConfig
from repro.types import Trajectory

TIMINGS_PATH = os.environ.get("RFPROTECT_STAGE_TIMINGS",
                              "stage-timings.json")


def bench_scene() -> Scene:
    room = Rectangle(0.0, 0.0, 8.0, 6.0)
    scene = Scene(room)
    scene.add_static((2.0, 3.0))
    walk = Trajectory(np.linspace([2.0, 2.0], [5.5, 4.0], 40), dt=0.1)
    scene.add_human(walk)
    return scene


@pytest.mark.parametrize("backend", ["naive", "vectorized"])
def test_fmcw_stage_timings(backend):
    radar = FmcwRadar(RadarConfig(chirp=ChirpConfig(duration=6.4e-5)))
    result = radar.sense(bench_scene(), 1.0,
                         rng=np.random.default_rng(0),
                         synth=backend, pipeline=backend)
    result.tracks()
    histograms = stage_metrics().snapshot()["histograms"]
    for stage in Stage:
        name = f"stages.{stage.value}.wall_s"
        assert histograms.get(name, {}).get("count", 0) > 0, name


@pytest.mark.parametrize("backend", ["naive", "vectorized"])
def test_pulsed_stage_timings(backend):
    radar = PulsedRadar(PulsedRadarConfig(sample_rate=2.0e9, max_range=10.0))
    radar.sense(bench_scene(), 1.0, rng=np.random.default_rng(1),
                pipeline=backend)
    counters = stage_metrics().snapshot()["counters"]
    assert counters.get(f"stages.background_subtract.{backend}.runs", 0) > 0


def test_zz_dump_stage_timings():
    """Write the accumulated per-stage snapshot (runs last by name)."""
    snapshot = stage_metrics().snapshot()
    assert snapshot["histograms"], "no stage timings accumulated"
    with open(TIMINGS_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    print(f"\nwrote per-stage timing snapshot to {TIMINGS_PATH}")
