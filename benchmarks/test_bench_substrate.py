"""Throughput benches for the substrates (true timing benchmarks).

These are the performance-regression guards for the simulator and the
neural engine: frame synthesis, range-angle processing, full sensing
sessions, LSTM steps, and GAN training steps.
"""

import time

import numpy as np
import pytest

from repro.experiments.environments import office_environment
from repro.gan import GanConfig, GanTrainer
from repro.nn import LSTM, Tensor
from repro.radar import (
    PathComponent,
    synthesize_frame,
    synthesize_frame_naive,
    synthesize_frames,
)
from repro.radar.processing import compute_range_angle_map, frame_range_profiles
from repro.trajectories import HumanMotionSimulator
from repro.types import Trajectory


@pytest.fixture(scope="module")
def office():
    return office_environment()


def sweep_components(num_components: int) -> list[PathComponent]:
    rng = np.random.default_rng(0)
    return [
        PathComponent(
            distance=float(rng.uniform(1.0, 12.0)),
            angle=float(rng.uniform(0.2, np.pi - 0.2)),
            amplitude=float(rng.uniform(0.01, 0.2)),
            beat_offset_hz=float(rng.uniform(-3e4, 3e4)),
            phase_offset=float(rng.uniform(0.0, 2.0 * np.pi)),
        )
        for _ in range(num_components)
    ]


@pytest.mark.benchmark(group="substrate-radar")
def test_bench_frame_synthesis(benchmark, office):
    radar = office.make_radar()
    rng = np.random.default_rng(0)
    components = [PathComponent(2.0 + i, 0.5 + 0.2 * i, 0.05)
                  for i in range(8)]
    frame = benchmark(synthesize_frame, components, office.radar_config,
                      radar.array, rng)
    assert frame.shape == (7, office.radar_config.chirp.num_samples)


@pytest.mark.benchmark(group="substrate-radar")
def test_bench_sweep_synthesis_vectorized(benchmark, office):
    """The batched engine on a 50-component, 128-chirp sweep."""
    radar = office.make_radar()
    per_frame = [sweep_components(50)] * 128
    frames = benchmark(synthesize_frames, per_frame, office.radar_config,
                       radar.array, None)
    assert frames.shape == (128, 7, office.radar_config.chirp.num_samples)


@pytest.mark.benchmark(group="substrate-radar")
def test_bench_sweep_synthesis_speedup(office):
    """Vectorized vs naive on a 50-component, 128-chirp sweep: >= 5x.

    Measured directly (best of 3) rather than through pytest-benchmark so
    the ratio can be asserted as a regression guard.
    """
    radar = office.make_radar()
    config = office.radar_config
    components = sweep_components(50)
    per_frame = [components] * 128

    def naive_sweep():
        return [synthesize_frame_naive(c, config, radar.array, None)
                for c in per_frame]

    def vectorized_sweep():
        return synthesize_frames(per_frame, config, radar.array, None)

    def best_of(fn, rounds=3):
        elapsed = []
        for _ in range(rounds):
            started = time.perf_counter()
            fn()
            elapsed.append(time.perf_counter() - started)
        return min(elapsed)

    vectorized_sweep()  # warm caches / BLAS threads before timing
    naive_s = best_of(naive_sweep)
    vectorized_s = best_of(vectorized_sweep)
    speedup = naive_s / vectorized_s
    print(f"\nsweep 50 components x 128 chirps: naive {naive_s * 1e3:.1f} ms, "
          f"vectorized {vectorized_s * 1e3:.1f} ms, speedup {speedup:.1f}x")

    reference = np.stack(naive_sweep())
    np.testing.assert_allclose(vectorized_sweep(), reference, atol=1e-10)
    assert speedup >= 5.0


@pytest.mark.benchmark(group="substrate-radar")
def test_bench_range_angle_processing(benchmark, office):
    radar = office.make_radar()
    rng = np.random.default_rng(0)
    components = [PathComponent(4.0, 1.2, 0.05)]
    frame = synthesize_frame(components, office.radar_config, radar.array, rng)
    profiles = frame_range_profiles(frame, office.radar_config)

    profile_map = benchmark(compute_range_angle_map, profiles,
                            office.radar_config, radar.array, 0.0,
                            max_range=12.0)
    assert profile_map.power.shape[0] > 0


@pytest.mark.benchmark(group="substrate-radar")
def test_bench_full_sensing_second(benchmark, office):
    """One second of sensing (10 frames) of a 1-human scene."""
    walk = Trajectory(
        np.linspace(office.room.center, office.room.center + [1.0, 1.0], 20),
        dt=0.05,
    )

    def sense_one_second():
        scene = office.make_scene()
        scene.add_human(walk)
        return office.make_radar().sense(scene, 1.0,
                                         rng=np.random.default_rng(1))

    result = benchmark.pedantic(sense_one_second, rounds=3, iterations=1)
    assert len(result.profiles) == 10


@pytest.mark.benchmark(group="substrate-motion")
def test_bench_motion_simulation(benchmark):
    simulator = HumanMotionSimulator(rng=np.random.default_rng(0))
    trajectory = benchmark(simulator.sample_trajectory)
    assert len(trajectory) == 50


@pytest.mark.benchmark(group="substrate-nn")
def test_bench_lstm_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    lstm = LSTM(16, 32, rng, num_layers=2)
    inputs = [Tensor(rng.standard_normal((32, 16))) for _ in range(49)]

    def step():
        outputs = lstm(inputs)
        loss = (outputs[-1] ** 2.0).sum()
        lstm.zero_grad()
        loss.backward()
        return loss

    loss = benchmark.pedantic(step, rounds=3, iterations=1)
    assert np.isfinite(loss.item())


@pytest.mark.benchmark(group="substrate-nn")
def test_bench_gan_training_step(benchmark):
    simulator = HumanMotionSimulator(rng=np.random.default_rng(0))
    dataset = simulator.build_dataset(64)
    config = GanConfig(noise_dim=8, hidden_size=16, feature_dim=8,
                       batch_size=32, epochs=1, dropout_probability=0.0)
    trainer = GanTrainer(dataset, config)

    history = benchmark.pedantic(trainer.train, kwargs={"epochs": 1},
                                 rounds=2, iterations=1)
    assert len(history.discriminator_losses) > 0
