"""Bench for Table 1: the (simulated) human study.

32 raters x (5 real + 5 GAN) trajectories; the Pearson chi-square test on
the 2x2 trueness x perception table must find no significant association —
paper: chi2 = 0.2, p = 0.65.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import table1


@pytest.mark.benchmark(group="table1")
def test_bench_table1_user_study(benchmark, bench_scale):
    result = benchmark.pedantic(
        table1.run,
        kwargs={"num_raters": bench_scale["table1_raters"],
                "gan_quality": bench_scale["gan_quality"]},
        rounds=1, iterations=1,
    )
    emit(result)

    assert result.table.sum() == bench_scale["table1_raters"] * 10
    assert not result.test.significant(), (
        "raters separated real from fake — the GAN output is detectably "
        "unrealistic at this scale"
    )
    # Humans judge real trajectories as real only slightly more than half
    # the time (paper: 93/160 = 58%) — both rates must be mid-range.
    assert 0.3 <= result.perceived_real_rate(truly_real=True) <= 0.85
    assert 0.3 <= result.perceived_real_rate(truly_real=False) <= 0.85
