"""Tracker throughput benches: streaming ingestion vs the batch driver.

The streaming≡batch contract (``tests/test_property_tracker.py``) says the
two paths produce identical tracks; this bench pins the *cost* side: since
``track_detections`` is literally a loop over ``StreamingTracker.ingest``
plus one ``tracks()`` call, frame-at-a-time streaming may cost at most 10%
over handing the tracker the whole sweep — there is no batch fast path to
drift away from, and this guard keeps anyone from adding one that makes
live sessions second-class.

Also reports raw streaming throughput (frames/s, detections/s) on a
multi-target crossing workload and dumps the numbers to
``tracker-timings.json`` (path overridable via
``RFPROTECT_TRACKER_TIMINGS``), uploaded by CI next to the other timing
artifacts.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.radar.tracker import StreamingTracker, TrackerConfig, track_detections

from .conftest import FULL_SCALE

TIMINGS_PATH = os.environ.get("RFPROTECT_TRACKER_TIMINGS",
                              "tracker-timings.json")

NUM_FRAMES = 4000 if FULL_SCALE else 1200
NUM_TARGETS = 4

CONFIG = TrackerConfig(min_track_points=5, min_hit_ratio=0.2,
                       cluster_radius=0.3, gate_distance=1.0)

_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="module")
def detection_frames():
    """Crossing constant-velocity targets with noise and dropouts."""
    rng = np.random.default_rng(2022)
    crossing_point = np.array([4.0, 3.0])
    velocities = rng.uniform(-0.6, 0.6, (NUM_TARGETS, 2))
    powers = rng.uniform(5.0, 50.0, NUM_TARGETS)
    times = 0.1 * np.arange(NUM_FRAMES, dtype=np.float64)
    t_mid = times[NUM_FRAMES // 2]
    frames = []
    for t in times:
        detections = []
        for k in range(NUM_TARGETS):
            if rng.uniform() < 0.1:  # dropout
                continue
            truth = crossing_point + velocities[k] * ((t - t_mid) % 60.0)
            measured = truth + rng.normal(0.0, 0.03, 2)
            detections.append((measured, float(powers[k])))
        frames.append((float(t), detections))
    return frames


def best_of(fn, rounds=3):
    elapsed = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        elapsed.append(time.perf_counter() - started)
    return min(elapsed)


def run_streaming(frames):
    tracker = StreamingTracker(config=CONFIG)
    for frame_time, detections in frames:
        tracker.ingest_detections(frame_time, detections)
    return tracker.tracks()


@pytest.mark.benchmark(group="tracker")
def test_bench_streaming_ingestion(benchmark, detection_frames):
    """Frame-at-a-time ingestion throughput across the full sweep."""
    tracks = benchmark(run_streaming, detection_frames)
    assert tracks, "workload produced no tracks"

    per_run_s = benchmark.stats.stats.min
    frames_per_s = NUM_FRAMES / per_run_s
    detections = sum(len(d) for _t, d in detection_frames)
    _RESULTS.update({
        "num_frames": float(NUM_FRAMES),
        "num_targets": float(NUM_TARGETS),
        "streaming_min_s": per_run_s,
        "streaming_frames_per_s": frames_per_s,
        "streaming_detections_per_s": detections / per_run_s,
    })
    print(f"\nstreaming: {NUM_FRAMES} frames x {NUM_TARGETS} targets in "
          f"{per_run_s * 1e3:.1f} ms ({frames_per_s:.0f} frames/s)")


def test_streaming_overhead_vs_batch_within_10pct(detection_frames):
    """Streaming may cost at most 10% over the batch driver.

    Measured directly (best of 5) rather than through pytest-benchmark so
    the ratio can be asserted as a regression guard. The two paths run the
    same code today; the margin absorbs timer noise, not architecture.
    """
    run_streaming(detection_frames)  # warm allocator and caches
    streaming_s = best_of(lambda: run_streaming(detection_frames), rounds=5)
    batch_s = best_of(lambda: track_detections(detection_frames, CONFIG),
                      rounds=5)

    overhead = streaming_s / batch_s
    _RESULTS.update({
        "batch_min_s": batch_s,
        "streaming_over_batch": overhead,
    })
    print(f"\nstreaming {streaming_s * 1e3:.1f} ms vs batch "
          f"{batch_s * 1e3:.1f} ms: {overhead:.3f}x")
    assert overhead <= 1.10, (
        f"streaming ingestion costs {overhead:.2f}x the batch driver"
    )

    # And identically: the perf guard must not paper over a result drift.
    stream_tracks = run_streaming(detection_frames)
    batch_tracks = track_detections(detection_frames, CONFIG)
    assert len(stream_tracks) == len(batch_tracks)
    for ours, theirs in zip(stream_tracks, batch_tracks):
        assert ours.track_id == theirs.track_id
        assert ours.times == theirs.times


def test_zz_dump_tracker_timings():
    """Write the accumulated tracker numbers (runs last by name)."""
    assert _RESULTS, "no tracker timings accumulated"
    with open(TIMINGS_PATH, "w", encoding="utf-8") as handle:
        json.dump(_RESULTS, handle, indent=2, sort_keys=True)
    print(f"\nwrote tracker timing snapshot to {TIMINGS_PATH}")
