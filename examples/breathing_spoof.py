#!/usr/bin/env python3
"""Breathing spoofing: fool a vital-sign radar with the tag's phase shifter.

A sleep/health eavesdropper (Sec. 11.4) points an FMCW radar at a bedroom
and reads breathing from the phase of the subject's range bin. This example
puts a *real* breathing human and a *phantom* breather (tag + phase
shifter) in the same home, and shows the eavesdropper extracting two
plausible breathing rates with no way to tell which one is the victim's —
the N/(M+N) guessing bound of Sec. 7.

Run: ``python examples/breathing_spoof.py``
"""

import numpy as np

from repro.eavesdropper import estimate_breathing_period
from repro.experiments.environments import home_environment
from repro.privacy import breath_guess_probability
from repro.radar.scene import BreathingSpec
from repro.reflector import BreathingWaveform
from repro.types import Trajectory


def main() -> None:
    rng = np.random.default_rng(21)
    environment = home_environment()
    radar = environment.make_radar()
    duration = 30.0

    # The victim: asleep (static), breathing at 15 breaths/min.
    victim_position = environment.room.center + np.array([2.5, 1.0])
    victim = Trajectory(np.vstack([victim_position, victim_position]),
                        dt=duration)

    # The phantom breather: a static ghost with an 18 breaths/min waveform.
    controller = environment.make_controller(frame_coherent=True)
    ghost_position = environment.panel.center + np.array([-0.8, 2.5])
    waveform = BreathingWaveform(frequency=0.30,
                                 wavelength=radar.config.chirp.wavelength)
    schedule = controller.plan_static_ghost(ghost_position, duration,
                                            breathing=waveform, rng=rng)
    tag = environment.make_tag()
    tag.deploy(schedule)

    scene = environment.make_scene(include_clutter=False)
    scene.add_human(victim, breathing=BreathingSpec(frequency=0.25),
                    rcs_fluctuation=0.0)
    scene.add(tag)
    result = radar.sense(scene, duration, rng=rng)

    # The eavesdropper scans range bins for breathing-like phase motion.
    victim_distance = radar.array.range_to(victim_position)
    command = schedule.commands[0]
    antenna = environment.panel.antenna_position(command.antenna_index)
    ghost_distance = float(
        radar.array.range_to(antenna)
        + radar.config.chirp.offset_for_switch_frequency(
            command.switch_frequency)
    )

    print("eavesdropper's breathing survey of the home:")
    for name, distance in (("subject A", victim_distance),
                           ("subject B", ghost_distance)):
        period = estimate_breathing_period(result, distance)
        print(f"  {name} @ {distance:.1f} m: "
              f"{60.0 / period:.1f} breaths/min")
    print(f"\nground truth: victim breathes at 15.0, phantom 'breathes' at "
          f"18.0 breaths/min")
    print(f"chance the eavesdropper picks the real subject: "
          f"{breath_guess_probability(1, 1):.2f}")


if __name__ == "__main__":
    main()
