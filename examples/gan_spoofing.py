#!/usr/bin/env python3
"""Train the trajectory cGAN and spoof its output through the reflector.

The full RF-Protect pipeline of Fig. 3: human-motion data -> conditional
GAN -> ghost trajectories -> reflector schedule -> eavesdropper radar.
Also demonstrates the conditional knob: asking the generator for different
range classes produces ghosts with different ranges of motion.

Run: ``python examples/gan_spoofing.py``        (~1 minute, tiny GAN)
     ``python examples/gan_spoofing.py --fast`` (several minutes, better GAN)
"""

import argparse

import numpy as np

from repro.eavesdropper import TrajectoryRealnessClassifier
from repro.experiments.artifacts import trained_gan
from repro.experiments.environments import home_environment
from repro.metrics.alignment import spoofing_errors
from repro.trajectories import TrajectoryDataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="train the better 'fast' preset instead of 'tiny'")
    args = parser.parse_args()
    quality = "fast" if args.fast else "tiny"

    rng = np.random.default_rng(11)
    print(f"training the cGAN (quality={quality})...")
    artifacts = trained_gan(quality, seed=0)
    summary = artifacts.trainer.history.summary()
    print(f"  trained on {len(artifacts.dataset)} traces; "
          f"D(real)={summary['real_score']:.2f}, "
          f"D(fake)={summary['fake_score']:.2f}")

    # Conditional generation: one ghost per range class.
    print("\nconditional generation (range class -> motion range):")
    for label in range(5):
        samples = artifacts.sampler.sample(8, label=label, rng=rng)
        ranges = [t.motion_range() for t in samples]
        print(f"  class {label}: mean range {np.mean(ranges):.2f} m")

    # Can the smart eavesdropper tell GAN output from real motion?
    fakes = TrajectoryDataset(artifacts.sampler.sample(100, rng=rng))
    real_train, real_test = artifacts.dataset.split(0.5, rng)
    classifier = TrajectoryRealnessClassifier()
    classifier.fit(real_train, fakes.subset(range(50)))
    accuracy = classifier.accuracy(real_test, fakes.subset(range(50, 100)))
    print(f"\nsmart-eavesdropper classifier accuracy vs GAN: {accuracy:.2f} "
          f"(0.5 = indistinguishable)")

    # Spoof one GAN trajectory end-to-end in the home environment.
    environment = home_environment()
    controller = environment.make_controller()
    shape = artifacts.sampler.sample(1, rng=rng)[0]
    placed = controller.place_trajectory(shape)
    schedule = controller.plan_trajectory(placed)
    tag = environment.make_tag()
    tag.deploy(schedule)
    scene = environment.make_scene()
    scene.add(tag)
    result = environment.make_radar().sense(scene, duration=10.0, rng=rng)
    medians = spoofing_errors(result.best_trajectory(),
                              schedule.intended_trajectory(),
                              environment.radar_position).medians()
    print(f"\nend-to-end spoof of one GAN trajectory (home): "
          f"{medians['location_m'] * 100:.1f} cm median location error")


if __name__ == "__main__":
    main()
