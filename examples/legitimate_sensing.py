#!/usr/bin/env python3
"""Legitimate sensing: the authorized radar removes disclosed ghosts.

RF-Protect's defense must not break sensing the user *wants* (fall
detection, elder care). This example deploys two phantoms alongside a real
occupant; the eavesdropper sees three people, while the legitimate sensor —
which receives the tag's side-channel ghost reports — filters the phantoms
and recovers the real trajectory (Sec. 11.3 / Fig. 13).

Run: ``python examples/legitimate_sensing.py``
"""

import numpy as np

from repro.eavesdropper import filter_ghost_trajectories
from repro.experiments.environments import home_environment
from repro.metrics.alignment import aligned_trajectory
from repro.trajectories import HumanMotionSimulator
from repro.types import Trajectory


def main() -> None:
    rng = np.random.default_rng(17)
    environment = home_environment()
    radar = environment.make_radar()
    controller = environment.make_controller()
    simulator = HumanMotionSimulator(rng=rng)

    # The real occupant crosses the left side of the home.
    start = environment.room.center + np.array([-5.0, 1.0])
    stop = environment.room.center + np.array([-1.5, 2.5])
    occupant = Trajectory(np.linspace(start, stop, 50), dt=10.0 / 49.0)

    # Two phantoms with human-like shapes, placed at different ranges.
    tag = environment.make_tag()
    for center_range in (4.5, 6.5):
        shape = simulator.sample_trajectory(profile_index=1).centered()
        placed = controller.place_trajectory(shape, center_range=center_range)
        tag.deploy(controller.plan_trajectory(placed))

    scene = environment.make_scene()
    scene.add_human(occupant)
    scene.add(tag)
    result = radar.sense(scene, duration=10.0, rng=rng)

    sensed = result.trajectories()[:3]
    print(f"eavesdropper view: {len(sensed)} moving targets")
    for index, trajectory in enumerate(sensed):
        print(f"  target {index}: centroid "
              f"{np.round(trajectory.centroid(), 1)}, "
              f"path {trajectory.path_length():.1f} m")

    real, matches = filter_ghost_trajectories(sensed, tag.ghost_reports())
    print(f"\nlegitimate sensor view (after side-channel filtering): "
          f"{len(real)} moving target(s)")
    for match in matches:
        print(f"  removed target {match.trajectory_index} as ghost "
              f"{match.ghost_id} (alignment residual {match.residual:.2f} m)")

    if real:
        aligned, reference = aligned_trajectory(real[0], occupant)
        error = float(np.median(
            np.linalg.norm(aligned.points - reference.points, axis=1)
        ))
        print(f"recovered occupant trajectory within {error * 100:.0f} cm "
              f"(median, aligned)")


if __name__ == "__main__":
    main()
