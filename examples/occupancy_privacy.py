#!/usr/bin/env python3
"""Occupancy privacy: what an eavesdropper learns with and without RF-Protect.

Two layers of the paper's privacy argument:

1. *Instance level* — a radar-level simulation: a home with one occupant,
   sensed with and without deployed phantoms; the eavesdropper's occupant
   count is corrupted when the tag is active.
2. *Distribution level* — the exact information-theoretic analysis of
   Sec. 7: mutual information I(X; Z) and the MAP-attacker's counting
   accuracy as functions of the phantom knobs (M, q).

Run: ``python examples/occupancy_privacy.py``
"""

import numpy as np

from repro.eavesdropper import count_occupants
from repro.experiments.environments import home_environment
from repro.privacy import (
    OccupancyModel,
    attacker_count_accuracy,
    breath_guess_probability,
)
from repro.trajectories import HumanMotionSimulator


def radar_level_demo() -> None:
    print("=== instance level: radar simulation ===")
    rng = np.random.default_rng(3)
    environment = home_environment()
    radar = environment.make_radar()
    simulator = HumanMotionSimulator(rng=rng)
    controller = environment.make_controller()

    # One real occupant walking in the home.
    human_walk = None
    while human_walk is None:
        candidate = simulator.sample_trajectory(profile_index=3)
        inside = environment.room.contains_all(
            candidate.points + (environment.room.center - candidate.centroid())
        )
        if inside:
            human_walk = candidate.translated(
                environment.room.center - candidate.centroid()
            )

    # Without the defense.
    scene = environment.make_scene()
    scene.add_human(human_walk)
    result = radar.sense(scene, duration=10.0, rng=rng)
    print(f"without RF-Protect: eavesdropper counts "
          f"{count_occupants(result)} occupant(s) (truth: 1)")

    # With two deployed phantoms.
    tag = environment.make_tag()
    for _ in range(2):
        shape = simulator.sample_trajectory(profile_index=2).centered()
        placed = controller.place_trajectory(shape)
        tag.deploy(controller.plan_trajectory(placed))
    scene = environment.make_scene()
    scene.add_human(human_walk)
    scene.add(tag)
    result = radar.sense(scene, duration=10.0, rng=rng)
    print(f"with RF-Protect (2 phantoms): eavesdropper counts "
          f"{count_occupants(result)} occupant(s) (truth: 1)")


def information_level_demo() -> None:
    print("\n=== distribution level: Sec. 7 analysis (N=4, p=0.2) ===")
    rng = np.random.default_rng(0)
    baseline = OccupancyModel(4, 0.2, 0, 0.0)
    print(f"occupancy entropy H(X) = {baseline.entropy_x():.3f} bits")
    print(f"{'M':>3} {'q':>5} {'I(X;Z) bits':>12} {'MAP count acc':>14} "
          f"{'breath guess':>13}")
    for m in (0, 2, 4, 8):
        for q in (0.25, 0.5, 0.75):
            if m == 0 and q != 0.5:
                continue
            model = OccupancyModel(4, 0.2, m, q)
            attack = attacker_count_accuracy(4, 0.2, m, q, rng=rng,
                                             trials=20_000)
            guess = breath_guess_probability(4, m)
            print(f"{m:>3} {q:>5.2f} {model.mutual_information():>12.3f} "
                  f"{attack['accuracy_with_defense']:>14.3f} {guess:>13.2f}")


def main() -> None:
    radar_level_demo()
    information_level_demo()


if __name__ == "__main__":
    main()
