#!/usr/bin/env python3
"""Pulsed radars and the delay-line variant of RF-Protect (Sec. 13).

The paper's "New Sensor Types" discussion: pulsed radars are prone to the
same ghost-injection defense, but distance spoofing needs a different
mechanism — switched delay lines instead of kHz on/off modulation. This
example shows all three facts live:

1. a pulsed radar tracks a walking human just like the FMCW one;
2. the FMCW switching tag does nothing useful against it;
3. the delay-line tag walks a ghost through its range-angle view.

Run: ``python examples/pulsed_radar_defense.py``
"""

import numpy as np

from repro.experiments.environments import office_environment
from repro.radar import PulsedRadar, PulsedRadarConfig
from repro.reflector import DelayLineTag
from repro.types import Trajectory


def main() -> None:
    rng = np.random.default_rng(9)
    environment = office_environment()
    radar = PulsedRadar(PulsedRadarConfig(
        position=environment.radar_config.position,
        axis_angle=environment.radar_config.axis_angle,
        facing_angle=environment.radar_config.facing_angle,
    ))
    print(f"pulsed radar: {radar.config.bandwidth / 1e9:.1f} GHz pulses, "
          f"{radar.config.range_resolution * 100:.0f} cm resolution")

    # 1) Track a real human.
    walk = Trajectory(
        np.linspace(environment.room.center + np.array([-2.0, -1.0]),
                    environment.room.center + np.array([2.0, 1.5]), 50),
        dt=10.0 / 49.0,
    )
    scene = environment.make_scene()
    scene.add_human(walk)
    result = radar.sense(scene, 10.0, rng=rng)
    track = result.tracks()[0]
    errors = [np.linalg.norm(p - walk.position_at(t))
              for t, p in zip(track.times, track.raw_positions)]
    print(f"human tracked with {np.median(errors):.3f} m median error")

    # 2) The FMCW switching tag against the pulsed radar.
    controller = environment.make_controller()
    ghost = Trajectory(
        np.linspace(environment.panel.center + np.array([-1.0, 2.5]),
                    environment.panel.center + np.array([1.0, 4.0]), 40),
        dt=10.0 / 39.0,
    )
    fmcw_tag = environment.make_tag()
    fmcw_tag.deploy(controller.plan_trajectory(ghost))
    scene = environment.make_scene()
    scene.add(fmcw_tag)
    result = radar.sense(scene, 10.0, rng=rng)
    moving = [t for t in result.trajectories()
              if t.path_length() > 0.5 * ghost.path_length()
              and np.median(np.linalg.norm(
                  t.resampled(len(ghost)).points - ghost.points, axis=1
              )) < 0.4]
    print(f"FMCW switching tag vs pulsed radar: {len(moving)} ghost(s) at "
          f"the commanded path (kHz switching cannot delay a pulse)")

    # 3) The delay-line tag.
    delay_tag = DelayLineTag(environment.panel)
    schedule = delay_tag.plan_trajectory(ghost)
    delay_tag.deploy(schedule)
    scene = environment.make_scene()
    scene.add(delay_tag)
    result = radar.sense(scene, 10.0, rng=rng)
    best = result.trajectories()[0]
    n = min(len(best), len(ghost))
    errors = np.linalg.norm(
        best.resampled(n).points - ghost.resampled(n).points, axis=1
    )
    print(f"delay-line tag vs pulsed radar: ghost tracked with "
          f"{np.median(errors):.3f} m median error "
          f"(delay lines quantize to {delay_tag.line_spacing_m:.2f} m)")


if __name__ == "__main__":
    main()
