#!/usr/bin/env python3
"""Quickstart: inject one ghost human and watch an eavesdropper track it.

This walks the full RF-Protect loop in ~30 lines of API:

1. build the office environment (room, radar, reflector panel);
2. generate a human-like ghost trajectory (here from the motion simulator,
   so the quickstart runs in seconds — see ``gan_spoofing.py`` for the
   trained-cGAN version);
3. compile it to a reflector switching schedule and deploy the tag;
4. run the eavesdropper radar and confirm it "sees" a walking human that
   does not exist.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.experiments.environments import office_environment
from repro.metrics.alignment import spoofing_errors
from repro.trajectories import HumanMotionSimulator


def main() -> None:
    rng = np.random.default_rng(7)
    environment = office_environment()
    radar = environment.make_radar()           # the eavesdropper
    controller = environment.make_controller()  # drives the tag

    # A human-like trajectory shape for the ghost.
    simulator = HumanMotionSimulator(rng=rng)
    shape = simulator.sample_trajectory(profile_index=2).centered()

    # Compile: place the shape in the panel's coverage, derive per-interval
    # (antenna, switch frequency) commands, and deploy on the tag.
    placed = controller.place_trajectory(shape)
    schedule = controller.plan_trajectory(placed)
    tag = environment.make_tag()
    tag.deploy(schedule)
    frequencies_khz = schedule.switch_frequencies() / 1e3
    print(f"ghost schedule: {len(schedule)} commands, switching at "
          f"{frequencies_khz.min():.0f}-{frequencies_khz.max():.0f} kHz")

    # The eavesdropper senses a room containing only clutter and the tag.
    scene = environment.make_scene()
    scene.add(tag)
    result = radar.sense(scene, duration=10.0, rng=rng)

    tracked = result.trajectories()
    print(f"eavesdropper tracked {len(tracked)} moving target(s) "
          f"in an empty room")
    ghost = tracked[0]
    print(f"ghost track: {len(ghost)} frames, "
          f"path length {ghost.path_length():.1f} m")

    errors = spoofing_errors(ghost, schedule.intended_trajectory(),
                             environment.radar_position)
    medians = errors.medians()
    print(f"spoofing accuracy (modulo translation+rotation): "
          f"{medians['location_m'] * 100:.1f} cm median location error, "
          f"{medians['angle_deg']:.1f} deg median angle error")


if __name__ == "__main__":
    main()
