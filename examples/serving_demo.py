#!/usr/bin/env python3
"""Serving demo: concurrent ghost-injection sensing through ``repro.serve``.

The sensing service turns the simulator into shared infrastructure: many
callers submit sense/spoof requests, compatible requests coalesce into one
vectorized batch, and every caller gets back exactly the result a private
``FmcwRadar.sense`` call would have produced. This demo:

1. builds the office deployment with a deployed RF-Protect tag spoofing a
   walking ghost (the workload of ``rfprotect serve``);
2. fires a burst of concurrent sense requests with distinct seeds through
   an :class:`~repro.serve.client.InProcessClient`;
3. shows the batching telemetry and verifies a repeated seed reproduces
   its result bit for bit — batching never perturbs a request.

Run: ``python examples/serving_demo.py``
"""

import numpy as np

from repro.serve import InProcessClient, SenseRequest, ServiceConfig
from repro.serve.app import build_demo_scene


def main() -> None:
    scene, radar_config = build_demo_scene()
    service_config = ServiceConfig(max_batch_size=16, batch_window_ms=5.0,
                                   queue_depth=128, workers=2)

    with InProcessClient(service_config,
                         default_radar_config=radar_config) as client:
        # A burst of concurrent requests: distinct seeds, one shared scene.
        requests = [SenseRequest(scene=scene, duration=0.5, seed=seed)
                    for seed in range(24)]
        responses = client.sense_many(requests)

        # Determinism spot-check: resubmitting seed 0 (now in a completely
        # different batch) must reproduce its result bit for bit.
        replay = client.sense(SenseRequest(scene=scene, duration=0.5, seed=0))
        snapshot = client.metrics_snapshot()

    batch_sizes = sorted({response.batch_size for response in responses})
    backends = sorted({response.backend for response in responses})
    print(f"served {len(responses)} concurrent sense requests "
          f"(backends: {', '.join(backends)})")
    print(f"batch sizes seen: {batch_sizes} "
          f"(max_batch={service_config.max_batch_size}, "
          f"window={service_config.batch_window_ms}ms)")

    counters = snapshot["counters"]
    latency = snapshot["histograms"]["request.latency_s"]
    print(f"telemetry: {counters['requests.completed']} completed over "
          f"{counters['batches.executed']} batches, "
          f"latency p50 {float(latency['p50']) * 1e3:.1f}ms / "
          f"p95 {float(latency['p95']) * 1e3:.1f}ms")

    identical = all(
        np.array_equal(a.power, b.power)
        for a, b in zip(responses[0].result.profiles, replay.result.profiles)
    )
    print(f"seed-0 replay bitwise identical across batchings: {identical}")
    if not identical:
        raise SystemExit("determinism violated: replay differed")

    frames = sum(len(response.result.times) for response in responses)
    print(f"the eavesdropper cube stack covers {frames} frames of a room "
          f"whose only 'occupant' is a reflector-spoofed ghost")


if __name__ == "__main__":
    main()
