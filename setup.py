"""Shim so legacy ``setup.py develop`` works in this offline environment."""

from setuptools import setup

setup()
