"""RF-Protect reproduction: privacy against device-free human tracking.

A faithful, simulation-backed reproduction of *RF-Protect* (SIGCOMM 2022):
an FMCW radar simulator (the eavesdropper), a switched-reflector model that
injects ghost human reflections (the defense), a conditional GAN that
generates realistic trajectories for those ghosts, and the paper's privacy
analysis and evaluation harness.

Quickstart::

    from repro import quickstart_demo  # see examples/quickstart.py

Public entry points live in the subpackages:

- ``repro.radar`` — FMCW radar simulator and tracking pipeline.
- ``repro.reflector`` — the RF-Protect tag (distance/angle/breathing spoofing).
- ``repro.gan`` / ``repro.nn`` — trajectory cGAN on a numpy autograd engine.
- ``repro.trajectories`` — human-motion dataset synthesis and handling.
- ``repro.privacy`` — information-theoretic privacy analysis (Fig. 7).
- ``repro.metrics`` — FID, rigid-alignment errors, statistics.
- ``repro.experiments`` — one module per paper figure/table.
"""

from repro._version import __version__

__all__ = ["__version__"]
