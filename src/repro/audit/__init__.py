"""Verifiable privacy evidence: ledger, signatures, SLOs, reports.

The paper's claim is *measurable* privacy; this package turns the repo's
privacy metrics into tamper-evident evidence. Four pieces:

- :mod:`repro.audit.ledger` — an append-only, sha256-hash-chained JSONL
  artifact log for experiment runs, serve metrics snapshots, and
  benchmark timings (canonical JSON per :mod:`repro.audit.canonical`).
- :mod:`repro.audit.ed25519` — a from-scratch RFC 8032 Ed25519
  implementation (pure :mod:`hashlib` + big-int Python) signing chain
  heads and reports.
- :mod:`repro.audit.slo` — a declarative rules engine evaluating privacy
  SLO profiles (mutual-information, detection-rate, count-accuracy,
  breath-selection bounds) by re-running :mod:`repro.privacy` metrics and
  reading ledger records.
- :mod:`repro.audit.report` — JSON + HTML audit reports with chain,
  signature, and provenance status.

Driven end-to-end by ``rfprotect audit`` (:mod:`repro.audit.app`).
"""

from repro.audit.canonical import canonical_bytes, canonical_json, digest
from repro.audit.ledger import (
    GENESIS_HASH,
    ChainVerification,
    Ledger,
    LedgerRecord,
    sign_ledger,
    verify_chain,
    verify_signature,
)
from repro.audit.provenance import config_snapshot, provenance
from repro.audit.report import (
    build_report,
    render_html,
    sign_report,
    verify_report,
)
from repro.audit.slo import (
    DEFAULT_PROFILE,
    RuleOutcome,
    SloEvaluation,
    SloProfile,
    SloRule,
    evaluate_profile,
    load_profile,
)

__all__ = [
    "ChainVerification",
    "DEFAULT_PROFILE",
    "GENESIS_HASH",
    "Ledger",
    "LedgerRecord",
    "RuleOutcome",
    "SloEvaluation",
    "SloProfile",
    "SloRule",
    "build_report",
    "canonical_bytes",
    "canonical_json",
    "config_snapshot",
    "digest",
    "evaluate_profile",
    "load_profile",
    "provenance",
    "render_html",
    "sign_ledger",
    "sign_report",
    "verify_chain",
    "verify_report",
    "verify_signature",
]
