"""``rfprotect audit``: drive the signed-artifact audit trail.

Subcommands::

    rfprotect audit keygen --seed-hex <64 hex> --key-file audit-key.json
    rfprotect audit sign   <ledger.jsonl> --key-file audit-key.json
    rfprotect audit verify <run-dir | ledger.jsonl | *.sig.json | report.json>
    rfprotect audit report <run-dir> [--key-file ...] [--profile ...]

``keygen`` is deterministic from an explicit 32-byte seed (the repo's
determinism discipline forbids hidden entropy reads; mint a seed with
your platform's secure randomness, e.g. ``python -c "import secrets;
print(secrets.token_hex(32))"``, and keep the key file private).
``verify`` exits non-zero on the first integrity failure — a single
flipped byte in a ledger line, a signature document, or a signed report
body makes it fail.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from typing import Any

from repro.audit import ed25519
from repro.audit.canonical import canonical_json
from repro.audit.ledger import (
    Ledger,
    sign_ledger,
    verify_chain,
    verify_signature,
)
from repro.audit.report import (
    build_report,
    render_html,
    sign_report,
    verify_report,
)
from repro.audit.slo import DEFAULT_PROFILE, evaluate_profile, load_profile
from repro.config import (
    get_audit_key_file,
    get_audit_ledger_name,
    get_audit_profile,
)
from repro.errors import AuditError, ReproError

__all__ = ["KEY_SCHEMA_VERSION", "load_key_seed", "main", "write_key_file"]

KEY_SCHEMA_VERSION = 1


def write_key_file(path: str, seed: bytes) -> dict[str, Any]:
    """Persist a key document (seed + derived public key) to ``path``."""
    document = {
        "schema": KEY_SCHEMA_VERSION,
        "kind": "rfprotect-audit-key",
        "seed": seed.hex(),
        "public_key": ed25519.public_key(seed).hex(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(document) + "\n")
    return document


def load_key_seed(path: str) -> bytes:
    """The 32-byte signing seed from a key file written by ``keygen``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise AuditError(f"cannot load key file {path}: {error}") from error
    if not isinstance(document, dict) or "seed" not in document:
        raise AuditError(f"key file {path} has no 'seed' field")
    try:
        seed = bytes.fromhex(str(document["seed"]))
    except ValueError as error:
        raise AuditError(f"key file {path}: seed is not hex") from error
    if len(seed) != ed25519.SEED_SIZE:
        raise AuditError(
            f"key file {path}: seed must be {ed25519.SEED_SIZE} bytes, "
            f"got {len(seed)}"
        )
    return seed


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rfprotect audit",
        description="hash-chained, Ed25519-signed privacy audit trail",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    keygen = subparsers.add_parser(
        "keygen", help="derive a signing key file from an explicit seed")
    keygen.add_argument(
        "--seed-hex", required=True,
        help="64 hex chars (32 bytes) of caller-supplied entropy")
    keygen.add_argument(
        "--key-file", required=True, help="where to write the key document")

    sign = subparsers.add_parser(
        "sign", help="sign a ledger's verified chain head")
    sign.add_argument("ledger", help="path to a ledger .jsonl file")
    sign.add_argument(
        "--key-file", default=None,
        help="signing key file (default: RF_PROTECT_AUDIT_KEY)")
    sign.add_argument(
        "--out", default=None,
        help="signature document path (default: <ledger>.sig.json)")

    verify = subparsers.add_parser(
        "verify",
        help="verify a run dir, a ledger, a signature doc, or a report")
    verify.add_argument(
        "target",
        help="run directory, ledger .jsonl, <ledger>.sig.json, or a "
             "signed report.json")

    report = subparsers.add_parser(
        "report", help="evaluate privacy SLOs and write JSON + HTML reports")
    report.add_argument("run_dir", help="record directory holding the ledger")
    report.add_argument(
        "--key-file", default=None,
        help="sign the report with this key (default: RF_PROTECT_AUDIT_KEY; "
             "empty = unsigned)")
    report.add_argument(
        "--profile", default=None,
        help="SLO profile JSON (default: RF_PROTECT_AUDIT_PROFILE or the "
             "built-in rf-protect-default)")
    report.add_argument(
        "--out-json", default=None,
        help="report JSON path (default: <run-dir>/report.json)")
    report.add_argument(
        "--out-html", default=None,
        help="report HTML path (default: <run-dir>/report.html)")
    report.add_argument(
        "--generated-at", default="",
        help="timestamp string embedded verbatim in the report "
             "(clock-free by default)")
    return parser


def _signature_path(ledger_path: str) -> str:
    return ledger_path + ".sig.json"


def _load_json(path: str) -> dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise AuditError(f"cannot load {path}: {error}") from error
    if not isinstance(document, dict):
        raise AuditError(f"{path} is not a JSON object")
    return document


def _cmd_keygen(args: argparse.Namespace) -> int:
    try:
        seed = bytes.fromhex(args.seed_hex.strip())
    except ValueError as error:
        raise AuditError(f"--seed-hex is not hex: {error}") from error
    if len(seed) != ed25519.SEED_SIZE:
        raise AuditError(
            f"--seed-hex must encode {ed25519.SEED_SIZE} bytes, "
            f"got {len(seed)}"
        )
    document = write_key_file(args.key_file, seed)
    print(f"key file written to {args.key_file}")
    print(f"public key: {document['public_key']}")
    return 0


def _resolve_key_file(explicit: str | None) -> str:
    key_file = explicit if explicit is not None else get_audit_key_file()
    return key_file


def _cmd_sign(args: argparse.Namespace) -> int:
    key_file = _resolve_key_file(args.key_file)
    if not key_file:
        raise AuditError(
            "no signing key: pass --key-file or set RF_PROTECT_AUDIT_KEY"
        )
    seed = load_key_seed(key_file)
    signature_doc = sign_ledger(args.ledger, seed)
    out = args.out if args.out is not None else _signature_path(args.ledger)
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(signature_doc) + "\n")
    payload = signature_doc["payload"]
    print(f"signed {payload['length']} record(s); head "
          f"{payload['head_hash'][:16]}…")
    print(f"signature document written to {out}")
    return 0


def _verify_ledger(ledger_path: str, *, quiet: bool = False) -> bool:
    """Chain check plus, when present, the sibling signature document."""
    verification = verify_chain(ledger_path)
    ok = verification.ok
    if verification.ok:
        if not quiet:
            print(f"chain ok: {verification.length} record(s), head "
                  f"{verification.head_hash[:16]}…")
    else:
        print(f"chain FAILED at record {verification.first_bad_index}: "
              f"{verification.reason}")
    signature_file = _signature_path(ledger_path)
    if os.path.exists(signature_file):
        valid = verify_signature(ledger_path, _load_json(signature_file))
        print(f"ledger signature {'ok' if valid else 'FAILED'} "
              f"({signature_file})")
        ok = ok and valid
    return ok


def _verify_report_file(path: str) -> bool:
    document = _load_json(path)
    if "report" not in document:
        print(f"{path} is not a signed report (no 'report' envelope)")
        return False
    valid = verify_report(document)
    print(f"report signature {'ok' if valid else 'FAILED'} ({path})")
    return valid


def _cmd_verify(args: argparse.Namespace) -> int:
    target = args.target
    ok = True
    if os.path.isdir(target):
        ledger_path = os.path.join(target, get_audit_ledger_name())
        ok = _verify_ledger(ledger_path)
        report_path = os.path.join(target, "report.json")
        if os.path.exists(report_path):
            document = _load_json(report_path)
            if "report" in document:
                ok = _verify_report_file(report_path) and ok
    elif target.endswith(".sig.json"):
        ledger_path = target[: -len(".sig.json")]
        valid = verify_signature(ledger_path, _load_json(target))
        print(f"ledger signature {'ok' if valid else 'FAILED'} ({target})")
        ok = valid
    elif target.endswith(".jsonl"):
        ok = _verify_ledger(target)
    else:
        ok = _verify_report_file(target)
    print("verification " + ("PASSED" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    ledger_path = os.path.join(args.run_dir, get_audit_ledger_name())
    chain = verify_chain(ledger_path)

    profile_path = (args.profile if args.profile is not None
                    else get_audit_profile())
    profile = load_profile(profile_path) if profile_path else DEFAULT_PROFILE

    records = list(Ledger(ledger_path).records()) if chain.ok else []
    evaluation = evaluate_profile(profile, records)

    signature_file = _signature_path(ledger_path)
    signature_doc = (_load_json(signature_file)
                     if os.path.exists(signature_file) else None)

    report = build_report(
        ledger_path, chain=chain, profile=profile, evaluation=evaluation,
        signature_doc=signature_doc, generated_at=args.generated_at,
    )

    key_file = _resolve_key_file(args.key_file)
    document: dict[str, Any]
    if key_file:
        document = sign_report(report, load_key_seed(key_file))
    else:
        document = report

    out_json = (args.out_json if args.out_json is not None
                else os.path.join(args.run_dir, "report.json"))
    out_html = (args.out_html if args.out_html is not None
                else os.path.join(args.run_dir, "report.html"))
    with open(out_json, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
    with open(out_html, "w", encoding="utf-8") as handle:
        handle.write(render_html(report))

    slo = report["slo"]
    print(f"chain {'ok' if chain.ok else 'FAILED'}; SLO profile "
          f"{slo['profile_name']}: {slo['passed']} passed, "
          f"{slo['failed']} failed")
    print(f"report written to {out_json} and {out_html}"
          + (" (signed)" if key_file else " (unsigned)"))
    return 0 if report["ok"] else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(
        list(sys.argv[1:] if argv is None else argv)
    )
    handlers = {
        "keygen": _cmd_keygen,
        "sign": _cmd_sign,
        "verify": _cmd_verify,
        "report": _cmd_report,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
