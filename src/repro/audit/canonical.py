"""Canonical JSON serialization: one byte stream per value, forever.

Every hash and every signature in :mod:`repro.audit` is computed over the
output of :func:`canonical_bytes`, so two processes serializing the same
value must produce the same bytes. The rules (enforced here and by the
rflint rule **RFP015** for any stray ``json.dumps`` in this package):

- keys sorted (``sort_keys=True``) at every nesting level,
- compact separators (``","`` / ``":"``) — no whitespace,
- ASCII-only escapes (``ensure_ascii=True``),
- ``NaN``/``Infinity`` rejected (``allow_nan=False``) — they are not JSON
  and no two parsers agree on them,
- only JSON-native types: passing a value :mod:`json` cannot encode is an
  :class:`~repro.errors.AuditError`, never a silent ``repr`` fallback.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import AuditError

__all__ = ["canonical_bytes", "canonical_json", "digest", "sha256_hex"]


def canonical_json(value: Any) -> str:
    """The canonical JSON text for ``value`` (sorted keys, compact)."""
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=True, allow_nan=False)
    except (TypeError, ValueError) as error:
        raise AuditError(
            f"value is not canonically serializable: {error}"
        ) from error


def canonical_bytes(value: Any) -> bytes:
    """The canonical UTF-8 byte stream hashes and signatures run over."""
    return canonical_json(value).encode("utf-8")


def sha256_hex(data: bytes) -> str:
    """Lowercase hex sha256 of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def digest(value: Any) -> str:
    """sha256 over the canonical serialization of ``value``."""
    return sha256_hex(canonical_bytes(value))
