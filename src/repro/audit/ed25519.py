"""Pure-python Ed25519 (RFC 8032 §5.1), pinned by the RFC test vectors.

The audit trail must be verifiable on any machine with a Python
interpreter — no ``cryptography``/``pynacl`` wheel, no OpenSSL version
skew — so this is the reference construction from RFC 8032 written
against :mod:`hashlib` only: twisted-Edwards point arithmetic in extended
homogeneous coordinates over GF(2^255 - 19), SHA-512 as the internal
hash, deterministic signatures (no RNG anywhere, matching the repo's
determinism discipline — key *seeds* are caller-supplied bytes).

This is an audit-integrity primitive, not a general-purpose crypto
library: arithmetic is big-int Python (not constant-time), which is the
standard trade-off for verification tooling where the threat model is
tampered artifacts, not timing side channels on the signer.

Sizes are RFC-fixed: 32-byte seed, 32-byte public key, 64-byte signature.
``tests/test_audit_ed25519.py`` pins the RFC 8032 §7.1 test vectors
(TEST 1-3 and TEST SHA(abc)).
"""

from __future__ import annotations

import hashlib

from repro.errors import SignatureError

__all__ = [
    "PUBLIC_KEY_SIZE",
    "SEED_SIZE",
    "SIGNATURE_SIZE",
    "public_key",
    "sign",
    "verify",
]

SEED_SIZE = 32
PUBLIC_KEY_SIZE = 32
SIGNATURE_SIZE = 64

#: Field prime p = 2^255 - 19.
_P = 2**255 - 19
#: Group order L = 2^252 + 27742317777372353535851937790883648493.
_L = 2**252 + 27742317777372353535851937790883648493
#: Curve constant d = -121665 / 121666 mod p.
_D = (-121665 * pow(121666, _P - 2, _P)) % _P
#: sqrt(-1) mod p, used when recovering x from y.
_SQRT_M1 = pow(2, (_P - 1) // 4, _P)

_Point = tuple[int, int, int, int]  # extended homogeneous (X, Y, Z, T)

#: Neutral element (0, 1).
_IDENTITY: _Point = (0, 1, 1, 0)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _sha512_mod_l(data: bytes) -> int:
    return int.from_bytes(_sha512(data), "little") % _L


def _point_add(p: _Point, q: _Point) -> _Point:
    # RFC 8032 §5.1.4 addition formulas (complete, unified).
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _point_mul(scalar: int, point: _Point) -> _Point:
    result = _IDENTITY
    while scalar > 0:
        if scalar & 1:
            result = _point_add(result, point)
        point = _point_add(point, point)
        scalar >>= 1
    return result


def _point_equal(p: _Point, q: _Point) -> bool:
    # Projective equality: X1/Z1 == X2/Z2 and Y1/Z1 == Y2/Z2.
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % _P == 0 and (y1 * z2 - y2 * z1) % _P == 0


def _recover_x(y: int, sign: int) -> int:
    """x with x^2 = (y^2 - 1) / (d y^2 + 1), of the requested sign."""
    if y >= _P:
        raise SignatureError("point y-coordinate out of range")
    x2 = (y * y - 1) * pow(_D * y * y + 1, _P - 2, _P) % _P
    if x2 == 0:
        if sign:
            raise SignatureError("invalid point encoding (x = 0 with sign)")
        return 0
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = x * _SQRT_M1 % _P
    if (x * x - x2) % _P != 0:
        raise SignatureError("point is not on the curve")
    if x & 1 != sign:
        x = _P - x
    return x


#: Base point B: unique point with y = 4/5 and positive x.
_B_Y = 4 * pow(5, _P - 2, _P) % _P
_B_X = _recover_x(_B_Y, 0)
_BASE: _Point = (_B_X, _B_Y, 1, _B_X * _B_Y % _P)


def _point_compress(point: _Point) -> bytes:
    x, y, z, _ = point
    z_inv = pow(z, _P - 2, _P)
    x, y = x * z_inv % _P, y * z_inv % _P
    return ((y | ((x & 1) << 255)).to_bytes(32, "little"))


def _point_decompress(encoded: bytes) -> _Point:
    if len(encoded) != 32:
        raise SignatureError(
            f"compressed point must be 32 bytes, got {len(encoded)}"
        )
    raw = int.from_bytes(encoded, "little")
    sign = raw >> 255
    y = raw & ((1 << 255) - 1)
    x = _recover_x(y, sign)
    return (x, y, 1, x * y % _P)


def _secret_expand(seed: bytes) -> tuple[int, bytes]:
    """RFC 8032 §5.1.5: seed -> (clamped scalar a, 32-byte prefix)."""
    if len(seed) != SEED_SIZE:
        raise SignatureError(
            f"seed must be {SEED_SIZE} bytes, got {len(seed)}"
        )
    digest = _sha512(seed)
    scalar = int.from_bytes(digest[:32], "little")
    scalar &= (1 << 254) - 8
    scalar |= 1 << 254
    return scalar, digest[32:]


def public_key(seed: bytes) -> bytes:
    """The 32-byte public key for a 32-byte private seed."""
    scalar, _ = _secret_expand(seed)
    return _point_compress(_point_mul(scalar, _BASE))


def sign(seed: bytes, message: bytes) -> bytes:
    """The 64-byte RFC 8032 signature of ``message`` under ``seed``.

    Deterministic: the nonce is ``SHA-512(prefix || message)`` per the
    RFC, so signing the same message twice yields identical bytes.
    """
    scalar, prefix = _secret_expand(seed)
    a_compressed = _point_compress(_point_mul(scalar, _BASE))
    r = _sha512_mod_l(prefix + message)
    r_compressed = _point_compress(_point_mul(r, _BASE))
    k = _sha512_mod_l(r_compressed + a_compressed + message)
    s = (r + k * scalar) % _L
    return r_compressed + s.to_bytes(32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Whether ``signature`` is a valid signature of ``message``.

    Returns ``False`` for any cryptographic mismatch; raises
    :class:`~repro.errors.SignatureError` only for structurally invalid
    inputs (wrong key/signature sizes).
    """
    if len(public) != PUBLIC_KEY_SIZE:
        raise SignatureError(
            f"public key must be {PUBLIC_KEY_SIZE} bytes, got {len(public)}"
        )
    if len(signature) != SIGNATURE_SIZE:
        raise SignatureError(
            f"signature must be {SIGNATURE_SIZE} bytes, got {len(signature)}"
        )
    try:
        a_point = _point_decompress(public)
        r_point = _point_decompress(signature[:32])
    except SignatureError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    k = _sha512_mod_l(signature[:32] + public + message)
    return _point_equal(
        _point_mul(s, _BASE),
        _point_add(r_point, _point_mul(k, a_point)),
    )
