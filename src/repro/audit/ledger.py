"""Append-only, hash-chained JSONL artifact ledger.

One ledger file holds one run's evidence trail: experiment run records,
serve metrics snapshots, benchmark timing artifacts. Each line is the
canonical JSON (:mod:`repro.audit.canonical`) of one
:class:`LedgerRecord`; records are chained by sha256 — record ``i``
stores ``prev_hash`` = the ``record_hash`` of record ``i - 1`` (the fixed
:data:`GENESIS_HASH` for the first), and its own ``record_hash`` is the
sha256 of its canonical body *without* the hash field. Editing any byte
of any line therefore breaks either that record's hash or every later
record's link, which is what ``rfprotect audit verify`` checks.

Records are schema-versioned (:data:`SCHEMA_VERSION` rides in every
record) and typed by ``kind`` (:data:`RECORD_KINDS`); payloads are
arbitrary canonically-serializable JSON. Nothing here reads a clock —
ordering is the chain itself, and callers that want wall-clock context
supply it inside the payload (the serve snapshot's ``now=`` convention).
"""

from __future__ import annotations

import dataclasses
import json
import os
from collections.abc import Iterator
from typing import Any

from repro.audit import ed25519
from repro.audit.canonical import canonical_json, digest, sha256_hex
from repro.errors import LedgerError, SignatureError

__all__ = [
    "ChainVerification",
    "GENESIS_HASH",
    "Ledger",
    "LedgerRecord",
    "RECORD_KINDS",
    "SCHEMA_VERSION",
    "sign_ledger",
    "signing_payload",
    "verify_chain",
    "verify_signature",
]

#: Version of the record schema written by this module.
SCHEMA_VERSION = 1

#: The chain link of the first record.
GENESIS_HASH = sha256_hex(b"rfprotect-audit-genesis-v1")

#: Recognized record types.
RECORD_KINDS: tuple[str, ...] = (
    "experiment_run", "serve_metrics", "benchmark_timing",
)


@dataclasses.dataclass(frozen=True)
class LedgerRecord:
    """One chained ledger entry."""

    index: int
    kind: str
    payload: dict[str, Any]
    prev_hash: str
    record_hash: str
    schema: int = SCHEMA_VERSION

    def body(self) -> dict[str, Any]:
        """The hashed portion: everything except ``record_hash``."""
        return {
            "index": self.index,
            "kind": self.kind,
            "payload": self.payload,
            "prev_hash": self.prev_hash,
            "schema": self.schema,
        }

    def computed_hash(self) -> str:
        """sha256 over the canonical serialization of :meth:`body`."""
        return digest(self.body())

    def to_dict(self) -> dict[str, Any]:
        record = self.body()
        record["record_hash"] = self.record_hash
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "LedgerRecord":
        try:
            return cls(
                index=int(record["index"]),
                kind=str(record["kind"]),
                payload=dict(record["payload"]),
                prev_hash=str(record["prev_hash"]),
                record_hash=str(record["record_hash"]),
                schema=int(record["schema"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise LedgerError(f"malformed ledger record: {error}") from error


class Ledger:
    """An append-only chained record log backed by one JSONL file.

    Appends re-anchor on the file's current tail, so sequential appends
    from several ``Ledger`` instances still form one valid chain.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._next_index = 0
        self._tail_hash = GENESIS_HASH
        if os.path.exists(path):
            for record in self.records():
                self._next_index = record.index + 1
                self._tail_hash = record.record_hash

    def __len__(self) -> int:
        return self._next_index

    @property
    def head_hash(self) -> str:
        """The chain head: the last record's hash (genesis when empty)."""
        return self._tail_hash

    def records(self) -> Iterator[LedgerRecord]:
        """Parse every record in file order (no chain checks)."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                yield _parse_line(line, self.path, line_number)

    def append(self, kind: str, payload: dict[str, Any]) -> LedgerRecord:
        """Chain and persist one record; returns the stored record."""
        if kind not in RECORD_KINDS:
            known = ", ".join(RECORD_KINDS)
            raise LedgerError(f"unknown record kind {kind!r}; known: {known}")
        body = {
            "index": self._next_index,
            "kind": kind,
            "payload": payload,
            "prev_hash": self._tail_hash,
            "schema": SCHEMA_VERSION,
        }
        record = LedgerRecord(
            index=self._next_index,
            kind=kind,
            payload=payload,
            prev_hash=self._tail_hash,
            record_hash=digest(body),
        )
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(canonical_json(record.to_dict()) + "\n")
        self._next_index = record.index + 1
        self._tail_hash = record.record_hash
        return record


def _parse_line(line: str, path: str, line_number: int) -> LedgerRecord:
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as error:
        raise LedgerError(
            f"{path}:{line_number}: unparseable ledger line: {error}"
        ) from error
    if not isinstance(raw, dict):
        raise LedgerError(
            f"{path}:{line_number}: ledger line is not a JSON object"
        )
    return LedgerRecord.from_dict(raw)


@dataclasses.dataclass(frozen=True)
class ChainVerification:
    """Outcome of walking a ledger's hash chain."""

    ok: bool
    length: int
    head_hash: str
    #: Index of the first record that failed, or ``None`` when ok.
    first_bad_index: int | None = None
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "length": self.length,
            "head_hash": self.head_hash,
            "first_bad_index": self.first_bad_index,
            "reason": self.reason,
        }


def verify_chain(path: str) -> ChainVerification:
    """Walk the chain in ``path``; any byte flip surfaces here.

    Never raises for tampered content — a corrupt line or broken link is
    reported as a failed verification (missing files do raise).
    """
    if not os.path.exists(path):
        raise LedgerError(f"no such ledger: {path}")
    expected_prev = GENESIS_HASH
    length = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = _parse_line(line, path, line_number)
            except LedgerError as error:
                return ChainVerification(
                    ok=False, length=length, head_hash=expected_prev,
                    first_bad_index=length, reason=str(error),
                )
            problem = _record_problem(record, length, expected_prev)
            if problem is not None:
                return ChainVerification(
                    ok=False, length=length, head_hash=expected_prev,
                    first_bad_index=length, reason=problem,
                )
            expected_prev = record.record_hash
            length += 1
    return ChainVerification(ok=True, length=length, head_hash=expected_prev)


def _record_problem(record: LedgerRecord, position: int,
                    expected_prev: str) -> str | None:
    if record.schema != SCHEMA_VERSION:
        return (f"record {position} has schema {record.schema}, "
                f"expected {SCHEMA_VERSION}")
    if record.index != position:
        return f"record {position} carries index {record.index}"
    if record.kind not in RECORD_KINDS:
        return f"record {position} has unknown kind {record.kind!r}"
    if record.prev_hash != expected_prev:
        return f"record {position} breaks the chain link"
    if record.computed_hash() != record.record_hash:
        return f"record {position} fails its content hash"
    return None


def signing_payload(verification: ChainVerification) -> dict[str, Any]:
    """What a ledger signature covers: schema, length, and chain head."""
    return {
        "schema": SCHEMA_VERSION,
        "length": verification.length,
        "head_hash": verification.head_hash,
    }


def sign_ledger(path: str, seed: bytes) -> dict[str, Any]:
    """Sign the (verified) chain head of the ledger at ``path``.

    Returns the signature document ``rfprotect audit sign`` writes next to
    the ledger: the signed payload, the public key, and the signature,
    all hex/JSON so the document itself is canonically serializable.
    """
    verification = verify_chain(path)
    if not verification.ok:
        raise LedgerError(
            f"refusing to sign a broken ledger: {verification.reason}"
        )
    payload = signing_payload(verification)
    message = canonical_json(payload).encode("utf-8")
    return {
        "payload": payload,
        "public_key": ed25519.public_key(seed).hex(),
        "signature": ed25519.sign(seed, message).hex(),
    }


def verify_signature(path: str, signature_doc: dict[str, Any]) -> bool:
    """Whether ``signature_doc`` signs the *current* chain of ``path``.

    Re-verifies the chain, requires the signed payload to match the
    recomputed head (a signature over a shorter, truncated ledger must
    not validate), then checks the Ed25519 signature.
    """
    verification = verify_chain(path)
    if not verification.ok:
        return False
    try:
        payload = dict(signature_doc["payload"])
        public = bytes.fromhex(str(signature_doc["public_key"]))
        signature = bytes.fromhex(str(signature_doc["signature"]))
    except (KeyError, TypeError, ValueError):
        return False
    if payload != signing_payload(verification):
        return False
    message = canonical_json(payload).encode("utf-8")
    try:
        return ed25519.verify(public, message, signature)
    except SignatureError:
        return False
