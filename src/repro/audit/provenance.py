"""Run provenance: what code and configuration produced an artifact.

A ledger record is only evidence if it says *what* ran: the package
version, and the resolved value of every declared ``RF_PROTECT_*`` knob
(backend/dtype selections change numeric results; serve knobs change
latency artifacts). The snapshot is taken through the typed registry's
accessor table (:data:`repro.config.ENV_ACCESSORS`) so a knob added to
the registry shows up in provenance automatically, and its canonical
hash gives reports a one-line configuration fingerprint.
"""

from __future__ import annotations

import sys
from collections.abc import Mapping
from typing import Any

from repro._version import __version__
from repro.audit.canonical import digest
from repro.config import ENV_ACCESSORS

__all__ = ["config_snapshot", "provenance"]


def config_snapshot(
    environ: Mapping[str, str] | None = None,
) -> dict[str, Any]:
    """Resolved value of every declared knob (defaults where unset)."""
    return {name: accessor(environ)
            for name, accessor in sorted(ENV_ACCESSORS.items())}


def provenance(environ: Mapping[str, str] | None = None) -> dict[str, Any]:
    """The self-describing header attached to ledger payloads."""
    config = config_snapshot(environ)
    return {
        "package_version": __version__,
        "python_version": "{}.{}.{}".format(*sys.version_info[:3]),
        "config": config,
        "config_hash": digest(config),
    }
