"""Audit report generation: one JSON document, one HTML rendering.

The JSON report is the machine-checkable artifact: chain-verification
status, ledger signature status, per-rule SLO outcomes, and provenance
(package version, resolved config knobs, profile hash). When a signing
seed is supplied the report is wrapped in a signed envelope — the
Ed25519 signature covers the canonical serialization of the report body,
so ``rfprotect audit verify report.json`` re-checks it offline.

The HTML rendering is a human view of the same dict: no scripts, no
external assets, no clock reads — rendering the same report twice yields
byte-identical HTML.
"""

from __future__ import annotations

import html
from collections import Counter
from typing import Any

from repro.audit import ed25519
from repro.audit.canonical import canonical_bytes, digest
from repro.audit.ledger import ChainVerification, Ledger, verify_signature
from repro.audit.provenance import provenance
from repro.audit.slo import SloEvaluation, SloProfile
from repro.errors import AuditError, SignatureError

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "build_report",
    "render_html",
    "sign_report",
    "verify_report",
]

REPORT_SCHEMA_VERSION = 1


def build_report(ledger_path: str, *,
                 chain: ChainVerification,
                 profile: SloProfile,
                 evaluation: SloEvaluation,
                 signature_doc: dict[str, Any] | None = None,
                 generated_at: str = "") -> dict[str, Any]:
    """Assemble the JSON report body for one ledger.

    ``generated_at`` is caller-supplied context (clock-free by default,
    matching the rest of the audit trail).
    """
    kinds = Counter(record.kind for record in Ledger(ledger_path).records())
    if signature_doc is None:
        ledger_signature: dict[str, Any] = {"present": False, "valid": None}
    else:
        ledger_signature = {
            "present": True,
            "valid": verify_signature(ledger_path, signature_doc),
            "public_key": str(signature_doc.get("public_key", "")),
        }
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "kind": "rfprotect-audit-report",
        "generated_at": generated_at,
        "ledger": {
            "chain": chain.to_dict(),
            "records_by_kind": dict(sorted(kinds.items())),
            "signature": ledger_signature,
        },
        "slo": evaluation.to_dict(),
        "profile_hash": digest(profile.to_dict()),
        "provenance": provenance(),
        "ok": bool(
            chain.ok
            and evaluation.ok
            and ledger_signature["valid"] is not False
        ),
    }


def sign_report(report: dict[str, Any], seed: bytes) -> dict[str, Any]:
    """Wrap ``report`` in a signed envelope (signature over canonical body)."""
    message = canonical_bytes(report)
    return {
        "report": report,
        "public_key": ed25519.public_key(seed).hex(),
        "signature": ed25519.sign(seed, message).hex(),
    }


def verify_report(document: dict[str, Any]) -> bool:
    """Whether a signed report envelope's signature matches its body."""
    try:
        report = document["report"]
        public = bytes.fromhex(str(document["public_key"]))
        signature = bytes.fromhex(str(document["signature"]))
    except (KeyError, TypeError, ValueError):
        return False
    if not isinstance(report, dict):
        return False
    try:
        return ed25519.verify(public, canonical_bytes(report), signature)
    except (SignatureError, AuditError):
        return False


_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.6rem; }
table { border-collapse: collapse; width: 100%; margin: 0.6rem 0; }
th, td { border: 1px solid #cbd5e1; padding: 0.35rem 0.6rem;
         text-align: left; font-size: 0.9rem; }
th { background: #eef2f7; }
code { font-family: ui-monospace, monospace; font-size: 0.85rem;
       word-break: break-all; }
.pass { color: #166534; font-weight: 600; }
.fail { color: #b91c1c; font-weight: 600; }
.muted { color: #64748b; }
""".strip()


def _status(ok: bool) -> str:
    return ('<span class="pass">PASS</span>' if ok
            else '<span class="fail">FAIL</span>')


def _esc(value: Any) -> str:
    return html.escape(str(value))


def render_html(report: dict[str, Any]) -> str:
    """A deterministic, self-contained HTML view of the JSON report."""
    chain = report["ledger"]["chain"]
    signature = report["ledger"]["signature"]
    slo = report["slo"]
    prov = report["provenance"]

    rows = []
    for outcome in slo["outcomes"]:
        rule = outcome["rule"]
        value = ("&mdash;" if outcome["value"] is None
                 else f"{outcome['value']:.6g}")
        rows.append(
            "<tr>"
            f"<td><code>{_esc(rule['rule_id'])}</code></td>"
            f"<td>{_esc(rule['description'])}</td>"
            f"<td><code>{_esc(rule['source'])}</code></td>"
            f"<td>{value} {_esc(rule['comparator'])} "
            f"{_esc(rule['threshold'])}</td>"
            f"<td>{_status(outcome['passed'])}"
            f" <span class=\"muted\">{_esc(outcome['detail'])}</span></td>"
            "</tr>"
        )
    record_rows = [
        f"<tr><td>{_esc(kind)}</td><td>{count}</td></tr>"
        for kind, count in report["ledger"]["records_by_kind"].items()
    ]
    if signature["present"]:
        signature_line = (
            f"{_status(bool(signature['valid']))} "
            f"<code>{_esc(signature.get('public_key', ''))}</code>"
        )
    else:
        signature_line = '<span class="muted">no ledger signature</span>'
    config_rows = [
        f"<tr><td><code>{_esc(name)}</code></td><td>{_esc(value)}</td></tr>"
        for name, value in prov["config"].items()
    ]
    generated = (_esc(report["generated_at"]) if report["generated_at"]
                 else '<span class="muted">(not recorded)</span>')

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>RF-Protect privacy audit report</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>RF-Protect privacy audit report {_status(bool(report["ok"]))}</h1>
<p class="muted">schema {report["schema"]} &middot; generated {generated}</p>

<h2>Ledger integrity</h2>
<table>
<tr><th>Chain</th><td>{_status(bool(chain["ok"]))}
 <span class="muted">{_esc(chain["reason"]) if chain["reason"] else ""}</span></td></tr>
<tr><th>Records</th><td>{chain["length"]}</td></tr>
<tr><th>Head hash</th><td><code>{_esc(chain["head_hash"])}</code></td></tr>
<tr><th>Signature</th><td>{signature_line}</td></tr>
</table>
<table>
<tr><th>Record kind</th><th>Count</th></tr>
{"".join(record_rows) or '<tr><td colspan="2" class="muted">empty ledger</td></tr>'}
</table>

<h2>Privacy SLOs &mdash; profile <code>{_esc(slo["profile_name"])}</code>
 ({slo["passed"]} passed, {slo["failed"]} failed)</h2>
<table>
<tr><th>Rule</th><th>Description</th><th>Source</th><th>Check</th>
<th>Status</th></tr>
{"".join(rows)}
</table>

<h2>Provenance</h2>
<table>
<tr><th>Package</th><td>repro {_esc(prov["package_version"])}
 (python {_esc(prov["python_version"])})</td></tr>
<tr><th>Config hash</th><td><code>{_esc(prov["config_hash"])}</code></td></tr>
<tr><th>Profile hash</th><td><code>{_esc(report["profile_hash"])}</code></td></tr>
</table>
<table>
<tr><th>Knob</th><th>Active value</th></tr>
{"".join(config_rows)}
</table>
</body>
</html>
"""
