"""Declarative privacy-SLO rules engine over ledger records.

A :class:`SloProfile` is a named list of :class:`SloRule`\\ s; each rule
compares one observed value against a threshold. Values come from two
sources:

- ``metric:<name>`` — re-run one of the repo's privacy metrics
  (:mod:`repro.privacy`, :mod:`repro.eavesdropper`-style attacker models)
  with the rule's ``params``. These are the paper's evaluation quantities:
  occupancy mutual information, detection rate under the defense, the
  optimal count-attacker's accuracy, breath-selection probability.
- ``record:<kind>:<dotted.path>`` — extract a number from every ledger
  record of ``kind`` at ``dotted.path`` inside its payload (e.g.
  ``experiment_run`` / ``summary.median_errors_m``), then fold the
  matches with the rule's ``aggregate`` (``last``/``max``/``min``/
  ``mean``). Lists encountered along the path fan out element-wise.

Everything is deterministic: Monte-Carlo metrics draw from a
``np.random.default_rng`` seeded by the rule's ``seed`` param, and
profiles round-trip through canonical JSON so a profile file hashes
stably into report provenance.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Callable, Iterable, Mapping
from typing import Any

import numpy as np

from repro.audit.ledger import RECORD_KINDS, LedgerRecord
from repro.errors import AuditError
from repro.privacy import (
    OccupancyModel,
    attacker_count_accuracy,
    breath_guess_probability,
    occupancy_detection_rate,
)

__all__ = [
    "COMPARATORS",
    "DEFAULT_PROFILE",
    "METRIC_PROVIDERS",
    "PROFILE_SCHEMA_VERSION",
    "RuleOutcome",
    "SloEvaluation",
    "SloProfile",
    "SloRule",
    "evaluate_profile",
    "load_profile",
]

PROFILE_SCHEMA_VERSION = 1

#: Comparator name -> predicate(value, threshold).
COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    ">": lambda value, threshold: value > threshold,
}

_AGGREGATES: dict[str, Callable[[list[float]], float]] = {
    "last": lambda values: values[-1],
    "max": max,
    "min": min,
    "mean": lambda values: sum(values) / len(values),
}


def _metric_mutual_information(params: Mapping[str, Any]) -> float:
    model = OccupancyModel(
        num_humans=int(params.get("num_humans", 4)),
        moving_probability=float(params.get("moving_probability", 0.2)),
        num_phantoms=int(params.get("num_phantoms", 10)),
        phantom_probability=float(params.get("phantom_probability", 0.5)),
    )
    return model.mutual_information()


def _metric_detection_rate(params: Mapping[str, Any]) -> float:
    rates = occupancy_detection_rate(
        num_humans=int(params.get("num_humans", 4)),
        moving_probability=float(params.get("moving_probability", 0.2)),
        num_phantoms=int(params.get("num_phantoms", 10)),
        phantom_probability=float(params.get("phantom_probability", 0.5)),
    )
    return float(rates["with_defense"])


def _metric_count_accuracy(params: Mapping[str, Any]) -> float:
    accuracy = attacker_count_accuracy(
        num_humans=int(params.get("num_humans", 4)),
        moving_probability=float(params.get("moving_probability", 0.2)),
        num_phantoms=int(params.get("num_phantoms", 10)),
        phantom_probability=float(params.get("phantom_probability", 0.5)),
        rng=np.random.default_rng(int(params.get("seed", 0))),
        trials=int(params.get("trials", 4000)),
    )
    return float(accuracy["accuracy_with_defense"])


def _metric_breath_guess(params: Mapping[str, Any]) -> float:
    return breath_guess_probability(
        num_real=int(params.get("num_real", 1)),
        num_fake=int(params.get("num_fake", 3)),
    )


#: Metric-source providers: name -> params -> observed value.
METRIC_PROVIDERS: dict[str, Callable[[Mapping[str, Any]], float]] = {
    "occupancy_mutual_information_bits": _metric_mutual_information,
    "occupancy_detection_rate": _metric_detection_rate,
    "attacker_count_accuracy": _metric_count_accuracy,
    "breath_guess_probability": _metric_breath_guess,
}


@dataclasses.dataclass(frozen=True)
class SloRule:
    """One declarative check: ``source`` ``comparator`` ``threshold``."""

    rule_id: str
    description: str
    source: str
    comparator: str
    threshold: float
    params: dict[str, Any] = dataclasses.field(default_factory=dict)
    aggregate: str = "last"

    def __post_init__(self) -> None:
        if self.comparator not in COMPARATORS:
            known = ", ".join(sorted(COMPARATORS))
            raise AuditError(
                f"rule {self.rule_id}: unknown comparator "
                f"{self.comparator!r}; known: {known}"
            )
        if self.aggregate not in _AGGREGATES:
            known = ", ".join(sorted(_AGGREGATES))
            raise AuditError(
                f"rule {self.rule_id}: unknown aggregate "
                f"{self.aggregate!r}; known: {known}"
            )
        scheme = self.source.split(":", 1)[0]
        if scheme == "metric":
            name = self.source.split(":", 1)[1]
            if name not in METRIC_PROVIDERS:
                known = ", ".join(sorted(METRIC_PROVIDERS))
                raise AuditError(
                    f"rule {self.rule_id}: unknown metric {name!r}; "
                    f"known: {known}"
                )
        elif scheme == "record":
            parts = self.source.split(":")
            if len(parts) != 3 or parts[1] not in RECORD_KINDS or not parts[2]:
                raise AuditError(
                    f"rule {self.rule_id}: record source must be "
                    f"'record:<kind>:<dotted.path>' with kind in "
                    f"{RECORD_KINDS}, got {self.source!r}"
                )
        else:
            raise AuditError(
                f"rule {self.rule_id}: source must start with 'metric:' or "
                f"'record:', got {self.source!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "description": self.description,
            "source": self.source,
            "comparator": self.comparator,
            "threshold": self.threshold,
            "params": self.params,
            "aggregate": self.aggregate,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SloRule":
        try:
            return cls(
                rule_id=str(record["rule_id"]),
                description=str(record.get("description", "")),
                source=str(record["source"]),
                comparator=str(record["comparator"]),
                threshold=float(record["threshold"]),
                params=dict(record.get("params", {})),
                aggregate=str(record.get("aggregate", "last")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise AuditError(f"malformed SLO rule: {error}") from error


@dataclasses.dataclass(frozen=True)
class SloProfile:
    """A named set of SLO rules (unique rule ids)."""

    name: str
    rules: tuple[SloRule, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for rule in self.rules:
            if rule.rule_id in seen:
                raise AuditError(
                    f"profile {self.name!r} repeats rule id {rule.rule_id!r}"
                )
            seen.add(rule.rule_id)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "name": self.name,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SloProfile":
        schema = int(record.get("schema", PROFILE_SCHEMA_VERSION))
        if schema != PROFILE_SCHEMA_VERSION:
            raise AuditError(
                f"unsupported profile schema {schema}, expected "
                f"{PROFILE_SCHEMA_VERSION}"
            )
        rules_raw = record.get("rules")
        if not isinstance(rules_raw, list):
            raise AuditError("profile 'rules' must be a list")
        return cls(
            name=str(record.get("name", "unnamed")),
            rules=tuple(SloRule.from_dict(rule) for rule in rules_raw),
        )


#: The built-in privacy SLO profile: the paper's Sec. 7 attacks at the
#: reference operating point (N=4 occupants, p=0.2 moving, M=10 phantoms
#: firing at q=0.5), thresholds where the defense is doing its job.
DEFAULT_PROFILE = SloProfile(
    name="rf-protect-default",
    rules=(
        SloRule(
            rule_id="mi-leak",
            description="occupancy channel leaks at most 0.6 bits",
            source="metric:occupancy_mutual_information_bits",
            comparator="<=", threshold=0.6,
        ),
        SloRule(
            rule_id="occupancy-confusion",
            description="'is anyone home?' attacker correct at most 80% "
                        "of the time",
            source="metric:occupancy_detection_rate",
            comparator="<=", threshold=0.8,
        ),
        SloRule(
            rule_id="count-confusion",
            description="optimal MAP count attacker exactly right at most "
                        "60% of the time",
            source="metric:attacker_count_accuracy",
            comparator="<=", threshold=0.6,
            params={"seed": 0, "trials": 4000},
        ),
        SloRule(
            rule_id="breath-selection",
            description="victim breath picked with at most uniform "
                        "probability over 1 real + 3 spoofed",
            source="metric:breath_guess_probability",
            comparator="<=", threshold=0.25,
            params={"num_real": 1, "num_fake": 3},
        ),
    ),
)


def load_profile(path: str) -> SloProfile:
    """Load a profile from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise AuditError(f"cannot load SLO profile {path}: {error}") from error
    if not isinstance(record, dict):
        raise AuditError(f"SLO profile {path} is not a JSON object")
    return SloProfile.from_dict(record)


@dataclasses.dataclass(frozen=True)
class RuleOutcome:
    """One evaluated rule: the observed value and the verdict."""

    rule: SloRule
    value: float | None
    passed: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule.to_dict(),
            "value": self.value,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclasses.dataclass(frozen=True)
class SloEvaluation:
    """All rule outcomes for one profile over one ledger."""

    profile_name: str
    outcomes: tuple[RuleOutcome, ...]

    @property
    def ok(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "profile_name": self.profile_name,
            "ok": self.ok,
            "passed": sum(1 for o in self.outcomes if o.passed),
            "failed": sum(1 for o in self.outcomes if not o.passed),
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }


def _walk_path(value: Any, parts: list[str]) -> list[float]:
    """Numeric leaves at ``parts`` below ``value``; lists fan out."""
    if isinstance(value, list):
        # Fan out before the leaf test so a list at the end of the path
        # contributes every element, not nothing.
        found: list[float] = []
        for element in value:
            found.extend(_walk_path(element, parts))
        return found
    if not parts:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return []
        return [float(value)]
    if isinstance(value, dict) and parts[0] in value:
        return _walk_path(value[parts[0]], parts[1:])
    return []


def _record_values(rule: SloRule,
                   records: Iterable[LedgerRecord]) -> list[float]:
    _, kind, dotted = rule.source.split(":", 2)
    parts = dotted.split(".")
    values: list[float] = []
    for record in records:
        if record.kind == kind:
            values.extend(_walk_path(record.payload, parts))
    return values


def _evaluate_rule(rule: SloRule,
                   records: list[LedgerRecord]) -> RuleOutcome:
    if rule.source.startswith("metric:"):
        provider = METRIC_PROVIDERS[rule.source.split(":", 1)[1]]
        value = float(provider(rule.params))
        detail = f"recomputed {rule.source}"
    else:
        values = _record_values(rule, records)
        if not values:
            return RuleOutcome(
                rule=rule, value=None, passed=False,
                detail=f"no ledger values at {rule.source}",
            )
        value = float(_AGGREGATES[rule.aggregate](values))
        detail = f"{rule.aggregate} of {len(values)} ledger value(s)"
    passed = COMPARATORS[rule.comparator](value, rule.threshold)
    return RuleOutcome(rule=rule, value=value, passed=passed, detail=detail)


def evaluate_profile(profile: SloProfile,
                     records: Iterable[LedgerRecord]) -> SloEvaluation:
    """Evaluate every rule; record rules see the given ledger records."""
    materialized = list(records)
    return SloEvaluation(
        profile_name=profile.name,
        outcomes=tuple(_evaluate_rule(rule, materialized)
                       for rule in profile.rules),
    )
