"""``rfprotect`` command-line interface.

Usage::

    rfprotect list                 # show the available experiments
    rfprotect run fig7             # full run of one experiment
    rfprotect run fig11 --fast     # quick (seconds-scale) run
    rfprotect run all --fast       # every experiment, quick settings
    rfprotect run all --fast --workers 4   # fan out over 4 processes
    rfprotect scenarios            # list the registered scenario specs
    rfprotect run fig9 --fast --scenario home   # run against a scenario
    rfprotect lint src tests       # rflint static-analysis suite
    rfprotect serve --requests 32  # micro-batching sensing service demo
    rfprotect audit report runs/   # signed privacy audit report
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.errors import ReproError
from repro.experiments.runner import EXPERIMENTS, run_experiments

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rfprotect",
        description="RF-Protect (SIGCOMM 2022) reproduction harness",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    subparsers.add_parser("scenarios",
                          help="list the registered scenario specs")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment",
        help="experiment id (fig7 ... fig14, table1) or 'all'",
    )
    run_parser.add_argument(
        "--fast", action="store_true",
        help="use quick-run settings (seconds instead of minutes)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment's random seed",
    )
    run_parser.add_argument(
        "--scenario", default=None,
        help="run against a registered scenario's environment (see "
             "'rfprotect scenarios'; default: $RF_PROTECT_SCENARIO)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for multi-experiment runs (default: 1)",
    )
    run_parser.add_argument(
        "--record-dir", default=None,
        help="write a per-experiment timing/result JSON record here",
    )

    lint_parser = subparsers.add_parser(
        "lint", add_help=False,
        help="run the rflint static-analysis suite (see 'rfprotect lint -h')",
    )
    lint_parser.add_argument("lint_args", nargs=argparse.REMAINDER)

    serve_parser = subparsers.add_parser(
        "serve", add_help=False,
        help="run the micro-batching sensing service on a demo workload "
             "(see 'rfprotect serve -h')",
    )
    serve_parser.add_argument("serve_args", nargs=argparse.REMAINDER)

    audit_parser = subparsers.add_parser(
        "audit", add_help=False,
        help="hash-chained, signed privacy audit trail "
             "(see 'rfprotect audit -h')",
    )
    audit_parser.add_argument("audit_args", nargs=argparse.REMAINDER)
    return parser


def _run_all(experiment_ids: list[str], *, fast: bool, seed: int | None,
             scenario: str | None, workers: int,
             record_dir: str | None) -> None:
    options: dict[str, object] = {} if seed is None else {"seed": seed}
    if scenario:
        options["scenario"] = scenario
    runs = run_experiments(experiment_ids, fast=fast, workers=workers,
                           record_dir=record_dir, **options)
    for run in runs:
        print(run.result.format_table())
        print(f"[{run.experiment_id} finished in {run.elapsed_s:.1f}s]")
        print()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["lint"]:
        # Forwarded verbatim (before argparse) so lint's own options like
        # --list-rules and --format reach its parser untouched.
        from repro.devtools.lint import main as lint_main

        return lint_main(arguments[1:])
    if arguments[:1] == ["serve"]:
        # Same forwarding pattern: serve owns its option surface.
        from repro.serve.app import main as serve_main

        return serve_main(arguments[1:])
    if arguments[:1] == ["audit"]:
        # Same forwarding pattern: audit owns its subcommand surface.
        from repro.audit.app import main as audit_main

        return audit_main(arguments[1:])
    args = _build_parser().parse_args(arguments)

    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for experiment_id in sorted(EXPERIMENTS):
            spec = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:<{width}}  {spec.description}")
        return 0

    if args.command == "scenarios":
        from repro.scenarios import get_scenario, scenario_names

        names = scenario_names()
        width = max(len(name) for name in names)
        for name in names:
            print(f"{name:<{width}}  {get_scenario(name).description}")
        return 0

    from repro.config import get_scenario_name

    scenario = (args.scenario if args.scenario is not None
                else get_scenario_name() or None)
    targets = (sorted(EXPERIMENTS) if args.experiment == "all"
               else [args.experiment])
    try:
        _run_all(targets, fast=args.fast, seed=args.seed,
                 scenario=scenario, workers=args.workers,
                 record_dir=args.record_dir)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
