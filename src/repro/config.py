"""Central typed registry for ``RF_PROTECT_*`` environment variables.

Every environment variable the reproduction responds to is declared here as
an :class:`EnvVar` with a name, a default, a parser, and a docstring, and is
read exclusively through this module. That single point of truth is what
keeps runtime dispatch auditable: one place lists every knob, every knob
validates its raw value the same way, and the ``rflint`` rule **RFP003**
(:mod:`repro.devtools.rules`) rejects any ``os.environ`` /``os.getenv`` read
of an ``RF_PROTECT_*`` name anywhere else in the tree.

Typical use::

    from repro.config import get_synth_backend

    if get_synth_backend() == "naive":
        ...

Adding a knob means adding one ``EnvVar`` declaration plus a typed accessor
function; nothing else in the tree should touch the environment.
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Callable, Mapping
from typing import Generic, TypeVar

from repro.errors import ConfigurationError

__all__ = [
    "ENV_REGISTRY",
    "EnvVar",
    "PIPELINE_BACKENDS",
    "PIPELINE_BACKEND_VAR",
    "SYNTH_BACKENDS",
    "SYNTH_BACKEND_VAR",
    "get_pipeline_backend",
    "get_synth_backend",
]

T = TypeVar("T")

#: Recognized beat-signal synthesis kernels (see ``repro.radar.frontend``).
SYNTH_BACKENDS: tuple[str, ...] = ("naive", "vectorized")

#: Recognized receive-processing engines (see ``repro.radar.pipeline``).
PIPELINE_BACKENDS: tuple[str, ...] = ("naive", "vectorized")


@dataclasses.dataclass(frozen=True)
class EnvVar(Generic[T]):
    """One declared environment variable: name, default, parser, docs.

    Attributes:
        name: full environment-variable name (``RF_PROTECT_*``).
        default: value used when the variable is unset.
        parse: raw-string -> value parser; raise :class:`ConfigurationError`
            (or ``ValueError``, which is wrapped) on invalid input.
        description: one-line summary for docs and error messages.
    """

    name: str
    default: T
    parse: Callable[[str], T]
    description: str = ""

    def read(self, environ: Mapping[str, str] | None = None) -> T:
        """The variable's parsed value from ``environ`` (default: process env)."""
        env: Mapping[str, str] = os.environ if environ is None else environ
        raw = env.get(self.name)
        if raw is None:
            return self.default
        try:
            return self.parse(raw)
        except ConfigurationError:
            raise
        except ValueError as error:
            raise ConfigurationError(
                f"{self.name}={raw!r} is invalid: {error}"
            ) from error


#: Every environment variable the library reads, keyed by variable name.
ENV_REGISTRY: dict[str, EnvVar[str]] = {}


def _register(var: EnvVar[T]) -> EnvVar[T]:
    if var.name in ENV_REGISTRY:
        raise ConfigurationError(f"duplicate env var registration: {var.name}")
    if not var.name.startswith("RF_PROTECT_"):
        raise ConfigurationError(
            f"env vars must be namespaced RF_PROTECT_*, got {var.name!r}"
        )
    ENV_REGISTRY[var.name] = var  # type: ignore[assignment]
    return var


def _backend_parser(var_name: str,
                    choices: tuple[str, ...]) -> Callable[[str], str]:
    """A parser accepting exactly ``choices`` (case-insensitively)."""
    def parse(raw: str) -> str:
        backend = raw.strip().lower()
        if backend not in choices:
            raise ConfigurationError(
                f"{var_name} must be one of {choices}, got {backend!r}"
            )
        return backend
    return parse


SYNTH_BACKEND_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_SYNTH",
        default="vectorized",
        parse=_backend_parser("RF_PROTECT_SYNTH", SYNTH_BACKENDS),
        description="beat-signal synthesis kernel: 'vectorized' (batched "
                    "engine) or 'naive' (reference per-component loop)",
    )
)


PIPELINE_BACKEND_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_PIPELINE",
        default="vectorized",
        parse=_backend_parser("RF_PROTECT_PIPELINE", PIPELINE_BACKENDS),
        description="receive-processing engine: 'vectorized' (sweep-wide "
                    "FFT + einsum beamforming, repro.radar.pipeline) or "
                    "'naive' (reference per-frame loop)",
    )
)


def get_synth_backend(environ: Mapping[str, str] | None = None) -> str:
    """The active synthesis kernel name, from ``RF_PROTECT_SYNTH``."""
    return SYNTH_BACKEND_VAR.read(environ)


def get_pipeline_backend(environ: Mapping[str, str] | None = None) -> str:
    """The active receive-processing engine, from ``RF_PROTECT_PIPELINE``."""
    return PIPELINE_BACKEND_VAR.read(environ)
