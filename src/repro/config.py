"""Central typed registry for ``RF_PROTECT_*`` environment variables.

Every environment variable the reproduction responds to is declared here as
an :class:`EnvVar` with a name, a default, a parser, and a docstring, and is
read exclusively through this module. That single point of truth is what
keeps runtime dispatch auditable: one place lists every knob, every knob
validates its raw value the same way, and the ``rflint`` rule **RFP003**
(:mod:`repro.devtools.rules`) rejects any ``os.environ`` /``os.getenv`` read
of an ``RF_PROTECT_*`` name anywhere else in the tree.

Typical use::

    from repro.config import get_synth_backend

    if get_synth_backend() == "naive":
        ...

Adding a knob means adding one ``EnvVar`` declaration plus a typed accessor
function; nothing else in the tree should touch the environment.
"""

from __future__ import annotations

import dataclasses
import math
import os
from collections.abc import Callable, Mapping
from typing import Generic, TypeVar

from repro.errors import ConfigurationError

__all__ = [
    "AUDIT_KEY_FILE_VAR",
    "AUDIT_LEDGER_NAME_VAR",
    "AUDIT_PROFILE_VAR",
    "ENV_ACCESSORS",
    "ENV_REGISTRY",
    "EnvVar",
    "LINT_CACHE_VAR",
    "NN_BACKENDS",
    "NN_BACKEND_VAR",
    "NN_DTYPES",
    "NN_DTYPE_VAR",
    "PIPELINE_BACKENDS",
    "PIPELINE_BACKEND_VAR",
    "SCENARIO_SEED_VAR",
    "SCENARIO_VAR",
    "SERVE_BATCH_WINDOW_MS_VAR",
    "SERVE_DEADLINE_S_VAR",
    "SERVE_MAX_BATCH_VAR",
    "SERVE_QUEUE_DEPTH_VAR",
    "SERVE_WORKERS_VAR",
    "SESSION_IDLE_S_VAR",
    "SESSION_MAX_LIVE_VAR",
    "SESSION_MAX_SESSIONS_VAR",
    "SESSION_SWEEP_S_VAR",
    "SYNTH_BACKENDS",
    "SYNTH_BACKEND_VAR",
    "get_audit_key_file",
    "get_audit_ledger_name",
    "get_audit_profile",
    "get_lint_cache_dir",
    "get_nn_backend",
    "get_nn_dtype",
    "get_pipeline_backend",
    "get_scenario_name",
    "get_scenario_seed",
    "get_serve_batch_window_ms",
    "get_serve_deadline_s",
    "get_serve_max_batch",
    "get_serve_queue_depth",
    "get_serve_workers",
    "get_session_idle_s",
    "get_session_max_live",
    "get_session_max_sessions",
    "get_session_sweep_s",
    "get_synth_backend",
]

T = TypeVar("T")

#: Recognized beat-signal synthesis kernels (see ``repro.radar.frontend``).
SYNTH_BACKENDS: tuple[str, ...] = ("naive", "vectorized")

#: Recognized receive-processing engines (see ``repro.radar.pipeline``).
PIPELINE_BACKENDS: tuple[str, ...] = ("naive", "vectorized")

#: Recognized recurrent-sequence kernels (see ``repro.nn.recurrent``).
NN_BACKENDS: tuple[str, ...] = ("naive", "fused")

#: Recognized autograd default dtypes (see ``repro.nn.tensor``).
NN_DTYPES: tuple[str, ...] = ("float32", "float64")


@dataclasses.dataclass(frozen=True)
class EnvVar(Generic[T]):
    """One declared environment variable: name, default, parser, docs.

    Attributes:
        name: full environment-variable name (``RF_PROTECT_*``).
        default: value used when the variable is unset.
        parse: raw-string -> value parser; raise :class:`ConfigurationError`
            (or ``ValueError``, which is wrapped) on invalid input.
        description: one-line summary for docs and error messages.
    """

    name: str
    default: T
    parse: Callable[[str], T]
    description: str = ""

    def read(self, environ: Mapping[str, str] | None = None) -> T:
        """The variable's parsed value from ``environ`` (default: process env)."""
        env: Mapping[str, str] = os.environ if environ is None else environ
        raw = env.get(self.name)
        if raw is None:
            return self.default
        try:
            return self.parse(raw)
        except ConfigurationError:
            raise
        except ValueError as error:
            raise ConfigurationError(
                f"{self.name}={raw!r} is invalid: {error}"
            ) from error


#: Every environment variable the library reads, keyed by variable name.
ENV_REGISTRY: dict[str, EnvVar[str]] = {}


def _register(var: EnvVar[T]) -> EnvVar[T]:
    if var.name in ENV_REGISTRY:
        raise ConfigurationError(f"duplicate env var registration: {var.name}")
    if not var.name.startswith("RF_PROTECT_"):
        raise ConfigurationError(
            f"env vars must be namespaced RF_PROTECT_*, got {var.name!r}"
        )
    ENV_REGISTRY[var.name] = var  # type: ignore[assignment]
    return var


def _backend_parser(var_name: str,
                    choices: tuple[str, ...]) -> Callable[[str], str]:
    """A parser accepting exactly ``choices`` (case-insensitively)."""
    def parse(raw: str) -> str:
        backend = raw.strip().lower()
        if backend not in choices:
            raise ConfigurationError(
                f"{var_name} must be one of {choices}, got {backend!r}"
            )
        return backend
    return parse


SYNTH_BACKEND_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_SYNTH",
        default="vectorized",
        parse=_backend_parser("RF_PROTECT_SYNTH", SYNTH_BACKENDS),
        description="beat-signal synthesis kernel: 'vectorized' (batched "
                    "engine) or 'naive' (reference per-component loop)",
    )
)


PIPELINE_BACKEND_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_PIPELINE",
        default="vectorized",
        parse=_backend_parser("RF_PROTECT_PIPELINE", PIPELINE_BACKENDS),
        description="receive-processing engine: 'vectorized' (sweep-wide "
                    "FFT + einsum beamforming, repro.radar.pipeline) or "
                    "'naive' (reference per-frame loop)",
    )
)


NN_BACKEND_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_NN_BACKEND",
        default="fused",
        parse=_backend_parser("RF_PROTECT_NN_BACKEND", NN_BACKENDS),
        description="recurrent-sequence autograd kernel: 'fused' (whole-"
                    "sequence scan with one hand-written BPTT backward) or "
                    "'naive' (reference per-timestep cell graph)",
    )
)


NN_DTYPE_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_NN_DTYPE",
        default="float64",
        parse=_backend_parser("RF_PROTECT_NN_DTYPE", NN_DTYPES),
        description="default dtype for autograd leaf tensors and nn "
                    "parameters: 'float64' (reference precision) or "
                    "'float32' (faster GEMMs at paper-scale GAN training)",
    )
)


def _nonempty_str_parser(var_name: str) -> Callable[[str], str]:
    """A parser accepting any non-empty (post-strip) string."""
    def parse(raw: str) -> str:
        value = raw.strip()
        if not value:
            raise ConfigurationError(f"{var_name} must not be empty")
        return value
    return parse


def _positive_int_parser(var_name: str) -> Callable[[str], int]:
    """A parser accepting strictly positive integers."""
    def parse(raw: str) -> int:
        value = int(raw.strip())
        if value <= 0:
            raise ConfigurationError(
                f"{var_name} must be a positive integer, got {value}"
            )
        return value
    return parse


def _positive_float_parser(var_name: str, *,
                           allow_zero: bool = False) -> Callable[[str], float]:
    """A parser accepting positive (optionally zero) finite floats."""
    def parse(raw: str) -> float:
        value = float(raw.strip())
        if not math.isfinite(value):
            raise ConfigurationError(f"{var_name} must be finite, got {value}")
        if value < 0 or (value == 0 and not allow_zero):
            bound = ">= 0" if allow_zero else "> 0"
            raise ConfigurationError(
                f"{var_name} must be {bound}, got {value}"
            )
        return value
    return parse


SERVE_BATCH_WINDOW_MS_VAR: EnvVar[float] = _register(
    EnvVar(
        name="RF_PROTECT_SERVE_BATCH_WINDOW_MS",
        default=2.0,
        parse=_positive_float_parser("RF_PROTECT_SERVE_BATCH_WINDOW_MS",
                                     allow_zero=True),
        description="micro-batching window in milliseconds: how long the "
                    "sensing service holds an open batch for more compatible "
                    "requests before flushing it (0 flushes immediately)",
    )
)


SERVE_MAX_BATCH_VAR: EnvVar[int] = _register(
    EnvVar(
        name="RF_PROTECT_SERVE_MAX_BATCH",
        default=32,
        parse=_positive_int_parser("RF_PROTECT_SERVE_MAX_BATCH"),
        description="largest number of sense requests the service coalesces "
                    "into one vectorized batch",
    )
)


SERVE_QUEUE_DEPTH_VAR: EnvVar[int] = _register(
    EnvVar(
        name="RF_PROTECT_SERVE_QUEUE_DEPTH",
        default=256,
        parse=_positive_int_parser("RF_PROTECT_SERVE_QUEUE_DEPTH"),
        description="admission-control bound: requests pending inside the "
                    "service before new submissions are rejected",
    )
)


SERVE_DEADLINE_S_VAR: EnvVar[float] = _register(
    EnvVar(
        name="RF_PROTECT_SERVE_DEADLINE_S",
        default=30.0,
        parse=_positive_float_parser("RF_PROTECT_SERVE_DEADLINE_S"),
        description="default per-request deadline in seconds: queued work "
                    "whose deadline expires is cancelled, never executed",
    )
)


SERVE_WORKERS_VAR: EnvVar[int] = _register(
    EnvVar(
        name="RF_PROTECT_SERVE_WORKERS",
        default=2,
        parse=_positive_int_parser("RF_PROTECT_SERVE_WORKERS"),
        description="bounded worker pool size executing flushed batches",
    )
)


SESSION_MAX_LIVE_VAR: EnvVar[int] = _register(
    EnvVar(
        name="RF_PROTECT_SESSION_MAX_LIVE",
        default=64,
        parse=_positive_int_parser("RF_PROTECT_SESSION_MAX_LIVE"),
        description="tracking sessions kept live (full tracker state in "
                    "memory) before the least-recently-used ones are parked "
                    "to compact checkpoints",
    )
)


SESSION_MAX_SESSIONS_VAR: EnvVar[int] = _register(
    EnvVar(
        name="RF_PROTECT_SESSION_MAX_SESSIONS",
        default=1024,
        parse=_positive_int_parser("RF_PROTECT_SESSION_MAX_SESSIONS"),
        description="total tracking sessions (live + parked checkpoints) "
                    "the session store retains before dropping the "
                    "least-recently-used ones entirely",
    )
)


SESSION_IDLE_S_VAR: EnvVar[float] = _register(
    EnvVar(
        name="RF_PROTECT_SESSION_IDLE_S",
        default=60.0,
        parse=_positive_float_parser("RF_PROTECT_SESSION_IDLE_S"),
        description="seconds a tracking session may sit without ingesting a "
                    "frame before the eviction sweep parks its tracker "
                    "state to a checkpoint",
    )
)


SESSION_SWEEP_S_VAR: EnvVar[float] = _register(
    EnvVar(
        name="RF_PROTECT_SESSION_SWEEP_S",
        default=5.0,
        parse=_positive_float_parser("RF_PROTECT_SESSION_SWEEP_S"),
        description="cadence in seconds of the service's idle-session "
                    "eviction sweep",
    )
)


AUDIT_LEDGER_NAME_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_AUDIT_LEDGER",
        default="ledger.jsonl",
        parse=_nonempty_str_parser("RF_PROTECT_AUDIT_LEDGER"),
        description="filename of the hash-chained artifact ledger inside a "
                    "record directory (experiments runner and 'rfprotect "
                    "audit' must agree on it)",
    )
)


AUDIT_KEY_FILE_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_AUDIT_KEY",
        default="",
        parse=lambda raw: raw.strip(),
        description="path to an Ed25519 signing-key file (from 'rfprotect "
                    "audit keygen'); empty (the default) leaves ledgers and "
                    "reports unsigned, CLI --key-file overrides",
    )
)


AUDIT_PROFILE_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_AUDIT_PROFILE",
        default="",
        parse=lambda raw: raw.strip(),
        description="path to a privacy-SLO profile JSON for 'rfprotect "
                    "audit report'; empty (the default) evaluates the "
                    "built-in rf-protect-default profile",
    )
)


LINT_CACHE_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_LINT_CACHE",
        default="",
        parse=lambda raw: raw.strip(),
        description="directory for rflint's incremental analysis cache; "
                    "empty (the default) disables caching, the CLI flags "
                    "--cache-dir/--no-cache override in either direction",
    )
)


def _non_negative_int_parser(var_name: str) -> Callable[[str], int]:
    """A parser accepting integers >= 0."""
    def parse(raw: str) -> int:
        value = int(raw.strip())
        if value < 0:
            raise ConfigurationError(
                f"{var_name} must be >= 0, got {value}"
            )
        return value
    return parse


SCENARIO_VAR: EnvVar[str] = _register(
    EnvVar(
        name="RF_PROTECT_SCENARIO",
        default="",
        parse=lambda raw: raw.strip(),
        description="default scenario name resolved through the scenario "
                    "registry (repro.scenarios) by the experiments runner "
                    "and 'rfprotect serve'; empty (the default) keeps each "
                    "consumer's built-in default, CLI --scenario overrides",
    )
)


SCENARIO_SEED_VAR: EnvVar[int] = _register(
    EnvVar(
        name="RF_PROTECT_SCENARIO_SEED",
        default=0,
        parse=_non_negative_int_parser("RF_PROTECT_SCENARIO_SEED"),
        description="base seed for scenario content streams (per-human "
                    "trajectories, reflector strategy) when a scenario is "
                    "built without an explicit seed",
    )
)


def get_audit_ledger_name(environ: Mapping[str, str] | None = None) -> str:
    """Ledger filename inside a record dir, from ``RF_PROTECT_AUDIT_LEDGER``."""
    return AUDIT_LEDGER_NAME_VAR.read(environ)


def get_audit_key_file(environ: Mapping[str, str] | None = None) -> str:
    """Signing-key file path ('' = unsigned), from ``RF_PROTECT_AUDIT_KEY``."""
    return AUDIT_KEY_FILE_VAR.read(environ)


def get_audit_profile(environ: Mapping[str, str] | None = None) -> str:
    """SLO profile path ('' = built-in), from ``RF_PROTECT_AUDIT_PROFILE``."""
    return AUDIT_PROFILE_VAR.read(environ)


def get_lint_cache_dir(environ: Mapping[str, str] | None = None) -> str:
    """rflint cache directory ('' = off), from ``RF_PROTECT_LINT_CACHE``."""
    return LINT_CACHE_VAR.read(environ)


def get_scenario_name(environ: Mapping[str, str] | None = None) -> str:
    """Default scenario name ('' = consumer default), from ``RF_PROTECT_SCENARIO``.

    Validation against the registry happens at resolution time
    (:func:`repro.scenarios.get_scenario`), not here — the config layer
    stays import-independent of the catalog.
    """
    return SCENARIO_VAR.read(environ)


def get_scenario_seed(environ: Mapping[str, str] | None = None) -> int:
    """Scenario base seed, from ``RF_PROTECT_SCENARIO_SEED``."""
    return SCENARIO_SEED_VAR.read(environ)


def get_synth_backend(environ: Mapping[str, str] | None = None) -> str:
    """The active synthesis kernel name, from ``RF_PROTECT_SYNTH``."""
    return SYNTH_BACKEND_VAR.read(environ)


def get_pipeline_backend(environ: Mapping[str, str] | None = None) -> str:
    """The active receive-processing engine, from ``RF_PROTECT_PIPELINE``."""
    return PIPELINE_BACKEND_VAR.read(environ)


def get_nn_backend(environ: Mapping[str, str] | None = None) -> str:
    """The active recurrent-sequence kernel, from ``RF_PROTECT_NN_BACKEND``."""
    return NN_BACKEND_VAR.read(environ)


def get_nn_dtype(environ: Mapping[str, str] | None = None) -> str:
    """The autograd default dtype name, from ``RF_PROTECT_NN_DTYPE``."""
    return NN_DTYPE_VAR.read(environ)


def get_serve_batch_window_ms(environ: Mapping[str, str] | None = None) -> float:
    """Micro-batching window (ms), from ``RF_PROTECT_SERVE_BATCH_WINDOW_MS``."""
    return SERVE_BATCH_WINDOW_MS_VAR.read(environ)


def get_serve_max_batch(environ: Mapping[str, str] | None = None) -> int:
    """Largest coalesced batch size, from ``RF_PROTECT_SERVE_MAX_BATCH``."""
    return SERVE_MAX_BATCH_VAR.read(environ)


def get_serve_queue_depth(environ: Mapping[str, str] | None = None) -> int:
    """Admission-control queue bound, from ``RF_PROTECT_SERVE_QUEUE_DEPTH``."""
    return SERVE_QUEUE_DEPTH_VAR.read(environ)


def get_serve_deadline_s(environ: Mapping[str, str] | None = None) -> float:
    """Default request deadline (s), from ``RF_PROTECT_SERVE_DEADLINE_S``."""
    return SERVE_DEADLINE_S_VAR.read(environ)


def get_serve_workers(environ: Mapping[str, str] | None = None) -> int:
    """Batch-executing worker count, from ``RF_PROTECT_SERVE_WORKERS``."""
    return SERVE_WORKERS_VAR.read(environ)


def get_session_max_live(environ: Mapping[str, str] | None = None) -> int:
    """Live tracking-session bound, from ``RF_PROTECT_SESSION_MAX_LIVE``."""
    return SESSION_MAX_LIVE_VAR.read(environ)


def get_session_max_sessions(environ: Mapping[str, str] | None = None) -> int:
    """Total session retention bound, from ``RF_PROTECT_SESSION_MAX_SESSIONS``."""
    return SESSION_MAX_SESSIONS_VAR.read(environ)


def get_session_idle_s(environ: Mapping[str, str] | None = None) -> float:
    """Idle-session parking threshold (s), from ``RF_PROTECT_SESSION_IDLE_S``."""
    return SESSION_IDLE_S_VAR.read(environ)


def get_session_sweep_s(environ: Mapping[str, str] | None = None) -> float:
    """Eviction-sweep cadence (s), from ``RF_PROTECT_SESSION_SWEEP_S``."""
    return SESSION_SWEEP_S_VAR.read(environ)


#: Accessor for every declared variable, keyed by variable name. Tests use
#: this to prove the registry is complete: a knob declared without a typed
#: accessor (or vice versa) fails ``tests/test_config_registry.py``.
ENV_ACCESSORS: dict[str, Callable[[Mapping[str, str] | None], object]] = {
    "RF_PROTECT_AUDIT_LEDGER": get_audit_ledger_name,
    "RF_PROTECT_AUDIT_KEY": get_audit_key_file,
    "RF_PROTECT_AUDIT_PROFILE": get_audit_profile,
    "RF_PROTECT_LINT_CACHE": get_lint_cache_dir,
    "RF_PROTECT_SCENARIO": get_scenario_name,
    "RF_PROTECT_SCENARIO_SEED": get_scenario_seed,
    "RF_PROTECT_SYNTH": get_synth_backend,
    "RF_PROTECT_PIPELINE": get_pipeline_backend,
    "RF_PROTECT_NN_BACKEND": get_nn_backend,
    "RF_PROTECT_NN_DTYPE": get_nn_dtype,
    "RF_PROTECT_SERVE_BATCH_WINDOW_MS": get_serve_batch_window_ms,
    "RF_PROTECT_SERVE_MAX_BATCH": get_serve_max_batch,
    "RF_PROTECT_SERVE_QUEUE_DEPTH": get_serve_queue_depth,
    "RF_PROTECT_SERVE_DEADLINE_S": get_serve_deadline_s,
    "RF_PROTECT_SERVE_WORKERS": get_serve_workers,
    "RF_PROTECT_SESSION_MAX_LIVE": get_session_max_live,
    "RF_PROTECT_SESSION_MAX_SESSIONS": get_session_max_sessions,
    "RF_PROTECT_SESSION_IDLE_S": get_session_idle_s,
    "RF_PROTECT_SESSION_SWEEP_S": get_session_sweep_s,
}
