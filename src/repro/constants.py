"""Physical constants and paper-level defaults shared across subsystems.

Values mirror the experimental setup in Sec. 9 of the paper: a 6--7 GHz chirp
swept over 500 microseconds, a 7-antenna radar array, a 6-antenna reflector
panel with roughly 20 cm spacing, and a radar-to-reflector separation of
about 1.2 m.
"""

from __future__ import annotations

SPEED_OF_LIGHT = 299_792_458.0
"""Speed of light in vacuum (m/s)."""

CHIRP_START_HZ = 6.0e9
"""Paper chirp sweep start frequency (Sec. 9.1)."""

CHIRP_BANDWIDTH_HZ = 1.0e9
"""Paper chirp bandwidth: 6--7 GHz sweep (Sec. 9.1)."""

CHIRP_DURATION_S = 500e-6
"""Paper chirp duration (Sec. 9.1)."""

RADAR_NUM_ANTENNAS = 7
"""Antennas in the paper's eavesdropper radar array (Sec. 9.1)."""

PANEL_NUM_ANTENNAS = 6
"""Directional antennas on the RF-Protect panel (Sec. 9.2)."""

PANEL_ANTENNA_SPACING_M = 0.20
"""Panel antenna separation used in the paper's experiments (Sec. 9.2)."""

RADAR_TO_REFLECTOR_DISTANCE_M = 1.2
"""Distance between eavesdropper radar and reflector (Sec. 9.3)."""

RANGE_RESOLUTION_M = SPEED_OF_LIGHT / (2.0 * CHIRP_BANDWIDTH_HZ)
"""FMCW range resolution C / (2B) ~= 15 cm for a 1 GHz sweep (Sec. 3)."""

TRACE_NUM_POINTS = 50
"""Points per trajectory trace in the paper's dataset (Sec. 6)."""

TRACE_DURATION_S = 10.0
"""Duration of each trajectory trace (Sec. 6)."""

NUM_RANGE_CLASSES = 5
"""Range-of-motion classes used to condition the cGAN (Sec. 6)."""

OFFICE_SIZE_M = (10.0, 6.6)
"""Office environment footprint, width x depth (Fig. 8b)."""

HOME_SIZE_M = (15.24, 7.62)
"""Home environment footprint, width x depth (Fig. 8c)."""
