"""``repro.devtools`` — static-analysis tooling for the reproduction.

The centerpiece is **rflint**, an AST-based invariant checker that machine-
checks the properties the test suite can only spot-check: explicit RNG
threading, determinism of the synthesis pipeline, dtype discipline in the
radar/signal hot paths, and single-point-of-truth env-var dispatch.

Entry points:

* ``rfprotect lint [paths...]`` — CLI subcommand,
* ``python -m repro.devtools.lint`` — module form,
* :func:`repro.devtools.engine.lint_paths` — library API.

Rules live in :mod:`repro.devtools.rules`; the visitor framework, rule
registry, per-path scoping, and suppression handling live in
:mod:`repro.devtools.engine`.
"""

from __future__ import annotations

from repro.devtools.engine import (
    Finding,
    LintConfig,
    LintResult,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
]
