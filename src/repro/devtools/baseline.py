"""Finding baseline: adopt rflint on legacy findings, then only shrink.

A baseline file records fingerprints of *accepted* findings. Linting with
``--baseline`` subtracts them from the result, so a tree with known debt
still gates on anything new; ``--update-baseline`` rewrites the file from
the current findings. CI additionally asserts the file never grows in a
change — the ratchet: debt can be paid down or carried, never added.

Fingerprints are ``sha256(path :: rule :: message)`` with a
per-fingerprint *count*, deliberately excluding line numbers: moving code
must not churn the baseline, but a second identical violation in the same
file is new debt and shows up.

This repository ships an **empty** baseline (``.rflint-baseline.json``):
RFP001–RFP014 hold everywhere, and the ratchet keeps it that way.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.devtools.engine import Finding

__all__ = ["Baseline", "fingerprint"]

_BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Line-number-independent identity of a finding."""
    material = f"{finding.path}::{finding.rule_id}::{finding.message}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:20]


class Baseline:
    """Accepted-finding counts keyed by fingerprint."""

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except (OSError, ValueError) as error:
            raise ValueError(f"unreadable baseline {path}: {error}") from None
        counts = raw.get("findings", {}) if isinstance(raw, dict) else {}
        if not isinstance(counts, dict):
            raise ValueError(f"malformed baseline {path}")
        return cls({str(k): int(v) for k, v in counts.items()})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = fingerprint(finding)
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
        return baseline

    def filter(self, findings: Sequence[Finding]) -> list[Finding]:
        """The findings NOT covered by this baseline.

        Each baselined fingerprint absorbs up to its recorded count;
        occurrences beyond that are new debt and pass through.
        """
        remaining = dict(self.counts)
        fresh: list[Finding] = []
        for finding in findings:
            key = fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                fresh.append(finding)
        return fresh

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def save(self, path: Path) -> None:
        payload = {
            "version": _BASELINE_VERSION,
            "total": self.total,
            "findings": dict(sorted(self.counts.items())),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    def grows_over(self, previous: "Baseline") -> list[str]:
        """Fingerprints whose count increased vs ``previous`` (CI ratchet)."""
        return sorted(
            key for key, count in self.counts.items()
            if count > previous.counts.get(key, 0)
        )
