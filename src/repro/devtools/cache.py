"""Content-hash incremental cache for the rflint per-file pass.

One JSON file per cache directory maps each linted path to the sha256 of
its content plus the local findings and project facts computed from it.
A warm run re-analyzes only files whose hash changed; everything else is
served from the cache — including its facts, so the (always re-run)
project pass still sees the whole tree.

The store is keyed by a *stamp*: fact schema version + registered rule
ids + lint configuration fingerprint. Any of those changing abandons the
whole store — incremental reuse is only sound while the analysis itself
is unchanged.

Cached findings carry no auto-fix payloads (edits reference exact spans
that are only trustworthy against a freshly parsed tree), which is why
``--fix`` runs uncached.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.devtools.engine import Finding, LintConfig, all_rules

__all__ = ["CACHE_FILE_NAME", "LintCache", "cache_stamp"]

CACHE_FILE_NAME = "rflint-cache.json"
_CACHE_LAYOUT_VERSION = 1


def cache_stamp(config: LintConfig) -> str:
    """Fingerprint of everything that invalidates cached results."""
    from repro.devtools.project import FACTS_SCHEMA_VERSION

    return json.dumps(
        {
            "layout": _CACHE_LAYOUT_VERSION,
            "facts": FACTS_SCHEMA_VERSION,
            "rules": sorted(all_rules()),
            "config": config.stamp(),
        },
        sort_keys=True,
    )


class LintCache:
    """The on-disk incremental store; one instance per lint run."""

    def __init__(self, directory: Path, stamp: str) -> None:
        self.directory = directory
        self.stamp = stamp
        self.path = directory / CACHE_FILE_NAME
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self._load()

    @classmethod
    def open(cls, directory: Path | str, config: LintConfig) -> "LintCache":
        return cls(Path(directory), cache_stamp(config))

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("stamp") != self.stamp:
            self._dirty = True  # stale layout/ruleset: rewrite on save
            return
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def lookup(
        self, display_path: str, content_hash: str
    ) -> tuple[list[Finding], dict[str, Any] | None] | None:
        """Cached ``(findings, facts)`` for an unchanged file, else None."""
        entry = self._entries.get(display_path)
        if entry is None or entry.get("hash") != content_hash:
            return None
        findings = [Finding.from_dict(record)
                    for record in entry.get("findings", [])]
        facts = entry.get("facts")
        return findings, facts if isinstance(facts, dict) else None

    def store(
        self,
        display_path: str,
        content_hash: str,
        findings: list[Finding],
        facts: dict[str, Any] | None,
    ) -> None:
        self._entries[display_path] = {
            "hash": content_hash,
            "findings": [finding.to_dict() for finding in findings],
            "facts": facts,
        }
        self._dirty = True

    def prune(self, keep: set[str]) -> None:
        """Drop entries for files no longer part of the linted set."""
        stale = [path for path in self._entries if path not in keep]
        for path in stale:
            del self._entries[path]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = {"stamp": self.stamp, "entries": self._entries}
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True),
                           encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            return  # a cache that cannot persist is just a cold cache
        self._dirty = False
