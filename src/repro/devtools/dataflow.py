"""Intraprocedural dataflow for rflint: dtype tags through one function.

The per-file dtype rule (RFP004) can only see one call at a time — it
checks that array constructors *spell* a dtype. This module tracks what
the dtypes *do*: a small abstract interpreter walks one function body in
source order, tagging local names with an element-dtype lattice value and
reporting where a ``float64`` value flows into a ``float32`` buffer. The
project layer (:mod:`repro.devtools.project`) additionally records the
tags of call arguments so RFP013 can follow a tagged value across modules
into a callee whose parameter annotation pins the other precision.

The lattice is deliberately coarse — ``complex > float64 > float32``,
anything else is unknown — because the repo's dtype *policy* is coarse:
the hot path pins ``complex128``/``float64`` (PR 2), and the failure mode
worth catching statically is a silent precision drop, not exact dtype
arithmetic. Joins take the wider side, matching numpy promotion for the
array-vs-array cases we track (python scalars are weak and do not widen).
"""

from __future__ import annotations

import ast
import dataclasses

from repro.devtools.rules import resolve

__all__ = [
    "COMPLEX",
    "FLOAT32",
    "FLOAT64",
    "DtypeAnalysis",
    "analyze_dtypes",
    "tag_of_annotation",
    "tag_of_dtype_expr",
]

FLOAT32 = "float32"
FLOAT64 = "float64"
COMPLEX = "complex"

_TAG_BY_NAME = {
    "float32": FLOAT32,
    "single": FLOAT32,
    "float64": FLOAT64,
    "double": FLOAT64,
    "float": FLOAT64,  # numpy's default float is 64-bit
    "float_": FLOAT64,
    "complex64": COMPLEX,
    "complex128": COMPLEX,
    "complex": COMPLEX,
    "csingle": COMPLEX,
    "cdouble": COMPLEX,
}

#: numpy constructors taking ``dtype=`` (positional slot is 0-based).
_CONSTRUCTORS = {
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.empty": 1,
    "numpy.full": 2,
    "numpy.array": 1,
    "numpy.asarray": 1,
    "numpy.arange": 3,
    "numpy.linspace": 5,
}

#: Elementwise/layout calls whose result dtype follows their first argument.
_PASSTHROUGH = frozenset(
    {
        "numpy.ascontiguousarray",
        "numpy.copy",
        "numpy.sqrt",
        "numpy.square",
        "numpy.exp",
        "numpy.log",
        "numpy.clip",
    }
)

#: ``numpy.float64(x)``-style scalar casts.
_CASTS = {
    "numpy." + name: tag
    for name, tag in _TAG_BY_NAME.items()
    if name not in ("float", "complex")
}


def _tag_of_terminal(name: str) -> str | None:
    return _TAG_BY_NAME.get(name)


def tag_of_dtype_expr(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """The lattice tag a ``dtype=`` expression pins, or ``None``.

    Handles ``np.float32``, ``"float32"`` strings, the ``float`` builtin,
    and ``np.dtype(...)`` wrappers.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _tag_of_terminal(node.value.lower())
    if isinstance(node, ast.Name):
        return _tag_of_terminal(node.id)
    if isinstance(node, ast.Attribute):
        target = resolve(node, aliases)
        if target is not None:
            return _tag_of_terminal(target.rsplit(".", 1)[-1])
        return _tag_of_terminal(node.attr)
    if isinstance(node, ast.Call) and node.args:
        if resolve(node.func, aliases) == "numpy.dtype":
            return tag_of_dtype_expr(node.args[0], aliases)
    return None


def tag_of_annotation(node: ast.AST | None,
                      aliases: dict[str, str]) -> str | None:
    """The dtype tag a parameter/return annotation pins, or ``None``.

    Scans the whole annotation expression so parametrized forms like
    ``npt.NDArray[np.float32]`` and string annotations resolve too.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    found: str | None = None
    for child in ast.walk(node):
        tag: str | None = None
        if isinstance(child, ast.Attribute):
            tag = _tag_of_terminal(child.attr)
        elif isinstance(child, ast.Name):
            tag = _tag_of_terminal(child.id) if child.id != "float" else None
        if tag is not None:
            # Widest tag wins so NDArray[np.float32] | np.float64 ~ float64.
            found = _join(found, tag)
    return found


def _join(left: str | None, right: str | None) -> str | None:
    """Lattice join: complex > float64 > float32 > unknown (weak)."""
    if left == COMPLEX or right == COMPLEX:
        return COMPLEX
    if left == FLOAT64 or right == FLOAT64:
        return FLOAT64
    return left or right


@dataclasses.dataclass
class DtypeAnalysis:
    """What the dtype pass learned about one function."""

    #: ``(line, col, message)`` — local float64-into-float32 stores.
    violations: list[tuple[int, int, str]]
    #: ``(line, col)`` of each call -> ``[(arg slot, tag), ...]`` where
    #: slot is a positional index as a string ("0") or a keyword name.
    call_args: dict[tuple[int, int], list[tuple[str, str]]]
    #: Final tag per local name (exposed for tests).
    env: dict[str, str]


class _DtypeInterp:
    def __init__(self, aliases: dict[str, str],
                 param_tags: dict[str, str]) -> None:
        self.aliases = aliases
        self.env: dict[str, str] = dict(param_tags)
        self.violations: list[tuple[int, int, str]] = []
        self.call_args: dict[tuple[int, int], list[tuple[str, str]]] = {}

    # -- expression tags ---------------------------------------------------

    def tag_of(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Subscript):
            return self.tag_of(node.value)
        if isinstance(node, ast.Attribute):
            if node.attr in ("T", "flat"):
                return self.tag_of(node.value)
            if node.attr in ("real", "imag"):
                inner = self.tag_of(node.value)
                return FLOAT64 if inner == COMPLEX else inner
            target = resolve(node, self.aliases)
            if target is not None and target in _CASTS:
                return _CASTS[target]
            return None
        if isinstance(node, ast.Call):
            return self._tag_of_call(node)
        if isinstance(node, ast.BinOp):
            return _join(self.tag_of(node.left), self.tag_of(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.tag_of(node.operand)
        if isinstance(node, ast.IfExp):
            return _join(self.tag_of(node.body), self.tag_of(node.orelse))
        return None

    def _dtype_keyword(self, node: ast.Call) -> ast.AST | None:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                return keyword.value
        return None

    def _tag_of_call(self, node: ast.Call) -> str | None:
        # x.astype(np.float32) — the cast wins regardless of x.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            dtype_expr = self._dtype_keyword(node) or (
                node.args[0] if node.args else None
            )
            if dtype_expr is not None:
                return tag_of_dtype_expr(dtype_expr, self.aliases)
            return None
        target = resolve(node.func, self.aliases)
        if target is None:
            return None
        if target in _CASTS:
            return _CASTS[target]
        if target in ("numpy.abs", "numpy.absolute"):
            inner = self.tag_of(node.args[0]) if node.args else None
            return FLOAT64 if inner == COMPLEX else inner
        slot = _CONSTRUCTORS.get(target)
        if slot is not None:
            dtype_expr = self._dtype_keyword(node)
            if dtype_expr is None and len(node.args) > slot:
                dtype_expr = node.args[slot]
            if dtype_expr is not None:
                return tag_of_dtype_expr(dtype_expr, self.aliases)
            if target in ("numpy.array", "numpy.asarray") and node.args:
                return self.tag_of(node.args[0])
            return None
        if target in _PASSTHROUGH and node.args:
            return self.tag_of(node.args[0])
        return None

    # -- statement walk ----------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are analyzed on their own
        self._record_calls(stmt)
        if isinstance(stmt, ast.Assign):
            value_tag = self.tag_of(stmt.value)
            for target in stmt.targets:
                self._store(target, stmt.value, value_tag)
        elif isinstance(stmt, ast.AnnAssign):
            tag = tag_of_annotation(stmt.annotation, self.aliases)
            if tag is None and stmt.value is not None:
                tag = self.tag_of(stmt.value)
            self._store(stmt.target, stmt.value, tag)
        elif isinstance(stmt, ast.AugAssign):
            self._store(stmt.target, stmt.value, self.tag_of(stmt.value),
                        augmented=True)
        for body in self._nested_bodies(stmt):
            self.run(body)

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if isinstance(block, list) and block and isinstance(
                block[0], ast.stmt
            ):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []):
            bodies.append(handler.body)
        return bodies

    def _store(self, target: ast.AST, value: ast.AST | None,
               value_tag: str | None, *, augmented: bool = False) -> None:
        if isinstance(target, ast.Name):
            if augmented:
                value_tag = _join(self.env.get(target.id), value_tag)
            if value_tag is not None:
                self.env[target.id] = value_tag
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, ast.Subscript):
            buffer_tag = self.tag_of(target.value)
            if buffer_tag == FLOAT32 and value_tag in (FLOAT64, COMPLEX):
                name = (target.value.id
                        if isinstance(target.value, ast.Name) else "buffer")
                self.violations.append((
                    target.lineno, target.col_offset + 1,
                    f"{value_tag} value stored into float32 buffer "
                    f"{name!r} silently narrows precision; cast explicitly "
                    f"or widen the buffer",
                ))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, None, None)

    def _record_calls(self, stmt: ast.stmt) -> None:
        for node in _walk_no_nested_defs(stmt):
            if not isinstance(node, ast.Call):
                continue
            tags: list[tuple[str, str]] = []
            for index, arg in enumerate(node.args):
                tag = self.tag_of(arg)
                if tag is not None:
                    tags.append((str(index), tag))
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                tag = self.tag_of(keyword.value)
                if tag is not None:
                    tags.append((keyword.arg, tag))
            if tags:
                self.call_args[(node.lineno, node.col_offset)] = tags


def _walk_no_nested_defs(root: ast.AST) -> "list[ast.AST]":
    found: list[ast.AST] = []
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        found.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return found


def analyze_dtypes(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
    aliases: dict[str, str],
) -> DtypeAnalysis:
    """Run the dtype pass over one function body.

    Parameter annotations seed the environment, so a parameter annotated
    ``np.float32``/``NDArray[np.float32]`` is a float32 buffer from line
    one. Flow is approximated in source order (later stores win; branches
    are walked in sequence) — coarse, but monotone on the tiny lattice we
    track, and it never *invents* a tag.
    """
    param_tags: dict[str, str] = {}
    args = function.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        tag = tag_of_annotation(arg.annotation, aliases)
        if tag is not None:
            param_tags[arg.arg] = tag
    interp = _DtypeInterp(aliases, param_tags)
    interp.run(function.body)
    return DtypeAnalysis(
        violations=interp.violations,
        call_args=interp.call_args,
        env=dict(interp.env),
    )
