"""rflint engine: rule registry, scoping, suppression, the two-pass driver.

A :class:`Rule` inspects one parsed :class:`SourceFile` and yields
:class:`Finding` objects. A :class:`ProjectRule` instead inspects the
whole-project fact base (:class:`repro.devtools.project.ProjectGraph`) —
the module/symbol graph built from every linted file — which is how the
cross-module rules (RFP010–RFP014) reason about call chains, kernel
registrations, and lock discipline across files. Rules self-register via
:func:`register` and declare *path scopes* — fnmatch globs limiting where
they apply (e.g. the dtype-discipline rule only runs under ``repro/radar``
and ``repro/signal``). Scopes and global excludes can be overridden from
``pyproject.toml``::

    [tool.rflint]
    exclude = ["tests/fixtures/*"]

    [tool.rflint.per-rule.RFP004]
    include = ["*repro/radar/*", "*repro/signal/*"]

Suppression is per *logical line*: a trailing ``# rflint: disable=RFP001``
(comma-separated ids, or ``all``) silences matching findings anywhere on
the statement's physical line span — so a disable comment at the end of a
parenthesized continuation or a multi-line ``def`` header covers the whole
statement, not just the physical line the comment sits on.

The driver (:func:`lint_paths`) runs in two passes: a per-file pass
(local rules + fact extraction, content-hash cached and optionally
parallel across processes) and a project pass (the cross-module rules
over the assembled fact base, always recomputed — facts are cheap, and
rerunning them is what keeps cached files' cross-file findings fresh).
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import hashlib
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Any, ClassVar

if TYPE_CHECKING:
    from repro.devtools.cache import LintCache
    from repro.devtools.project import ProjectGraph

__all__ = [
    "DEFAULT_EXCLUDES",
    "Finding",
    "LintConfig",
    "LintResult",
    "PARSE_ERROR_ID",
    "ProjectRule",
    "Rule",
    "RuleScope",
    "SourceFile",
    "TextEdit",
    "all_rules",
    "content_hash",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "register",
]

#: Pseudo-rule id attached to unparseable files. Not suppressible.
PARSE_ERROR_ID = "RFP000"

#: Directory-walk excludes applied even without a pyproject override. The
#: lint fixture corpus intentionally violates every rule, so it must never
#: count against the tree; explicitly named files bypass these.
DEFAULT_EXCLUDES: tuple[str, ...] = (
    "*tests/fixtures/*",
    "*/__pycache__/*",
    "*/.git/*",
    "*.egg-info/*",
    "*/build/*",
)

_RULE_ID_RE = re.compile(r"^RFP\d{3}$")
_SUPPRESS_RE = re.compile(r"#\s*rflint:\s*disable=([A-Za-z0-9_,\s]+)")


def content_hash(text: str) -> str:
    """Content fingerprint used by the incremental cache."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class TextEdit:
    """One mechanical source edit attached to a finding by ``--fix``.

    Replaces the half-open span ``(line, col) .. (end_line, end_col)``
    (1-based lines, 0-based columns, matching the AST) with ``text``; a
    zero-width span is a pure insertion.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    text: str


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Mechanical auto-fix edits (``rfprotect lint --fix``); transient —
    #: not serialized, not part of identity or ordering.
    fixes: tuple[TextEdit, ...] = dataclasses.field(
        default=(), compare=False
    )

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "Finding":
        return cls(
            path=str(record["path"]),
            line=int(record["line"]),
            col=int(record["col"]),
            rule_id=str(record["rule"]),
            message=str(record["message"]),
        )

    def format_human(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


_NON_CONTENT_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


def _collect_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids disabled on that line.

    Comments are found with :mod:`tokenize` so a ``# rflint:`` sequence
    inside a string literal never counts. A disable comment trailing any
    physical line of a *logical* line (a statement spanning parenthesized
    continuations, a multi-line ``def`` header) suppresses the whole span
    — findings anchor at the statement's first line, the comment often
    sits on its last. On tokenization failure (the file will be reported
    as a parse error anyway) no suppressions apply.
    """
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions

    def add(line: int, ids: frozenset[str]) -> None:
        suppressions[line] = suppressions.get(line, frozenset()) | ids

    pending: frozenset[str] = frozenset()
    span_start: int | None = None
    span_end: int | None = None
    saw_content = False
    for token in tokens:
        if token.type == tokenize.COMMENT:
            match = _SUPPRESS_RE.search(token.string)
            if match is not None:
                ids = frozenset(
                    part.strip().upper()
                    for part in match.group(1).split(",")
                    if part.strip()
                )
                if ids and saw_content:
                    # Trailing comment: covers the whole logical line.
                    pending |= ids
                elif ids:
                    # Standalone comment line: covers only itself.
                    add(token.start[0], ids)
            continue
        if token.type == tokenize.NEWLINE:
            if pending and span_start is not None and span_end is not None:
                for line in range(span_start, span_end + 1):
                    add(line, pending)
            pending = frozenset()
            span_start = span_end = None
            saw_content = False
        elif token.type not in _NON_CONTENT_TOKENS:
            saw_content = True
            if span_start is None:
                span_start = token.start[0]
            span_end = max(span_end or 0, token.end[0])
    return suppressions


@dataclasses.dataclass
class SourceFile:
    """One parsed Python file presented to the rules."""

    display_path: str
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]]

    @classmethod
    def from_source(cls, text: str, display_path: str) -> "SourceFile":
        """Parse ``text``; raises ``SyntaxError`` on unparseable input."""
        tree = ast.parse(text, filename=display_path)
        return cls(
            display_path=display_path,
            text=text,
            tree=tree,
            suppressions=_collect_suppressions(text),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        disabled = self.suppressions.get(finding.line)
        if disabled is None:
            return False
        return finding.rule_id in disabled or "ALL" in disabled


class Rule:
    """Base class for rflint rules.

    Subclasses set the class attributes and implement :meth:`check`;
    decorating with :func:`register` adds them to the global registry.
    """

    rule_id: ClassVar[str]
    title: ClassVar[str]
    #: Default path scope (fnmatch globs over posix-style paths). ``*``
    #: matches across ``/``, so ``*repro/radar/*`` hits any depth.
    include: ClassVar[tuple[str, ...]] = ("*",)
    exclude: ClassVar[tuple[str, ...]] = ()
    #: Project rules run in the cross-module pass, not per file.
    requires_project: ClassVar[bool] = False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST, message: str,
                fixes: tuple[TextEdit, ...] = ()) -> Finding:
        return Finding(
            path=source.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
            fixes=fixes,
        )


class ProjectRule(Rule):
    """A rule that inspects the whole-project fact base.

    Project rules run once per lint invocation, after every file's facts
    have been extracted (or restored from the incremental cache). Their
    findings land in specific files and are scope-filtered and
    suppression-filtered per landing path, exactly like local findings.
    """

    requires_project: ClassVar[bool] = True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectGraph") -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, line: int, col: int,
                   message: str) -> Finding:
        return Finding(path=path, line=line, col=col,
                       rule_id=self.rule_id, message=message)


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``rule_cls`` to the global rule registry."""
    rule_id = getattr(rule_cls, "rule_id", None)
    if rule_id is None or not _RULE_ID_RE.match(rule_id):
        raise ValueError(f"rule id must match RFP###, got {rule_id!r}")
    if rule_id == PARSE_ERROR_ID:
        raise ValueError(f"{PARSE_ERROR_ID} is reserved for parse errors")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    """The registered rules, keyed and sorted by rule id."""
    _ensure_builtin_rules()
    return dict(sorted(_REGISTRY.items()))


def _ensure_builtin_rules() -> None:
    # Importing the rule modules triggers their @register decorators.
    from repro.devtools import projectrules as _projectrules  # noqa: F401
    from repro.devtools import rules as _rules  # noqa: F401


@dataclasses.dataclass(frozen=True)
class RuleScope:
    """Per-rule path-scope override; ``None`` keeps the rule's default."""

    include: tuple[str, ...] | None = None
    exclude: tuple[str, ...] | None = None


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Lint run configuration: excludes, rule selection, per-rule scopes."""

    exclude: tuple[str, ...] = DEFAULT_EXCLUDES
    select: tuple[str, ...] | None = None
    scopes: Mapping[str, RuleScope] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig | None":
        """Config from ``[tool.rflint]``; ``None`` if absent or unreadable.

        Needs :mod:`tomllib` (Python 3.11+); on 3.10 the built-in defaults
        apply, which are sufficient for this repository.
        """
        try:
            import tomllib
        except ImportError:
            return None
        try:
            data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError):
            return None
        table = data.get("tool", {}).get("rflint")
        if not isinstance(table, dict):
            return None
        exclude = tuple(table.get("exclude", ())) + DEFAULT_EXCLUDES
        select_raw = table.get("select")
        select = tuple(select_raw) if select_raw else None
        scopes: dict[str, RuleScope] = {}
        for rule_id, scope in table.get("per-rule", {}).items():
            if not isinstance(scope, dict):
                continue
            scopes[rule_id] = RuleScope(
                include=tuple(scope["include"]) if "include" in scope else None,
                exclude=tuple(scope["exclude"]) if "exclude" in scope else None,
            )
        return cls(exclude=exclude, select=select, scopes=scopes)

    @classmethod
    def discover(cls, start: Path) -> "LintConfig":
        """Walk up from ``start`` for a pyproject with ``[tool.rflint]``."""
        for directory in [start, *start.resolve().parents]:
            pyproject = directory / "pyproject.toml"
            if pyproject.is_file():
                config = cls.from_pyproject(pyproject)
                if config is not None:
                    return config
        return cls()

    def stamp(self) -> str:
        """Configuration fingerprint folded into the cache key."""
        return content_hash(
            repr((sorted(self.exclude),
                  sorted(self.select) if self.select else None,
                  sorted((rule_id, scope.include, scope.exclude)
                         for rule_id, scope in self.scopes.items())))
        )


@dataclasses.dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    findings: tuple[Finding, ...]
    files_checked: int
    #: Files actually parsed and analyzed this run (the rest were served
    #: unchanged from the incremental cache).
    files_reanalyzed: int = -1

    def __post_init__(self) -> None:
        if self.files_reanalyzed < 0:
            object.__setattr__(self, "files_reanalyzed", self.files_checked)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "files_checked": self.files_checked,
            "files_reanalyzed": self.files_reanalyzed,
            "findings": [finding.to_dict() for finding in self.findings],
            "ok": self.ok,
        }


def _matches(path_posix: str, patterns: Iterable[str]) -> bool:
    return any(
        fnmatch.fnmatch(path_posix, pattern)
        or fnmatch.fnmatch(path_posix, pattern.rstrip("/") + "/*")
        for pattern in patterns
    )


def _rule_applies(
    rule_cls: type[Rule], config: LintConfig, display_path: str
) -> bool:
    scope = config.scopes.get(rule_cls.rule_id, RuleScope())
    include = scope.include if scope.include is not None else rule_cls.include
    exclude = scope.exclude if scope.exclude is not None else rule_cls.exclude
    if not _matches(display_path, include):
        return False
    return not _matches(display_path, exclude)


def _selected_rules(config: LintConfig) -> list[type[Rule]]:
    rules = all_rules()
    if config.select is None:
        return list(rules.values())
    unknown = sorted(set(config.select) - set(rules))
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return [rules[rule_id] for rule_id in sorted(set(config.select))]


def _display_path(path: Path) -> str:
    # Normalized posix form so glob scopes behave identically everywhere.
    return Path(str(path)).as_posix().removeprefix("./")


def iter_source_paths(
    paths: Sequence[Path | str], config: LintConfig
) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list.

    Global excludes apply only during directory traversal: a file named
    explicitly on the command line is always linted (that is how the
    fixture corpus exercises itself).
    """
    seen: set[str] = set()
    collected: list[Path] = []

    def add(path: Path) -> None:
        key = _display_path(path)
        if key not in seen:
            seen.add(key)
            collected.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _matches(_display_path(candidate), config.exclude):
                    add(candidate)
        elif path.is_file():
            add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return collected


# --------------------------------------------------------------------------
# Per-file pass
# --------------------------------------------------------------------------


def _parse_error_finding(display_path: str, error: SyntaxError) -> Finding:
    return Finding(
        path=display_path,
        line=error.lineno or 1,
        col=(error.offset or 0) + 1,
        rule_id=PARSE_ERROR_ID,
        message=f"syntax error: {error.msg}",
    )


def _analyze_file(
    text: str, display_path: str, config: LintConfig
) -> tuple[list[Finding], dict[str, Any] | None]:
    """One file's local findings plus its project facts (``None`` on
    parse error)."""
    try:
        source = SourceFile.from_source(text, display_path)
    except SyntaxError as error:
        return [_parse_error_finding(display_path, error)], None
    findings: list[Finding] = []
    for rule_cls in _selected_rules(config):
        if rule_cls.requires_project:
            continue
        if not _rule_applies(rule_cls, config, display_path):
            continue
        for finding in rule_cls().check(source):
            if not source.is_suppressed(finding):
                findings.append(finding)

    from repro.devtools.project import extract_facts

    return sorted(findings), extract_facts(source)


def _analyze_worker(
    job: tuple[str, str, LintConfig],
) -> tuple[str, list[Finding], dict[str, Any] | None]:
    """Process-pool entry point for the parallel per-file pass."""
    display_path, text, config = job
    findings, facts = _analyze_file(text, display_path, config)
    return display_path, findings, facts


def _project_findings(
    facts_by_path: Mapping[str, dict[str, Any]], config: LintConfig
) -> list[Finding]:
    """Run the cross-module rules over the assembled fact base."""
    project_rules = [rule_cls for rule_cls in _selected_rules(config)
                     if rule_cls.requires_project]
    if not project_rules or not facts_by_path:
        return []

    from repro.devtools.project import ProjectGraph

    graph = ProjectGraph(dict(facts_by_path))
    findings: list[Finding] = []
    for rule_cls in project_rules:
        rule = rule_cls()
        assert isinstance(rule, ProjectRule)
        for finding in rule.check_project(graph):
            if not _rule_applies(rule_cls, config, finding.path):
                continue
            if graph.is_suppressed(finding):
                continue
            findings.append(finding)
    return findings


def lint_source(
    text: str,
    display_path: str,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob under ``display_path``'s scopes.

    Project rules see a one-module project — enough for the single-file
    fixture corpus; use :func:`lint_sources` to exercise genuinely
    cross-module behavior in memory.
    """
    return lint_sources({display_path: text}, config)


def lint_sources(
    sources: Mapping[str, str],
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint several in-memory files as one project; returns all findings."""
    config = config if config is not None else LintConfig()
    findings: list[Finding] = []
    facts_by_path: dict[str, dict[str, Any]] = {}
    for display_path, text in sorted(sources.items()):
        local, facts = _analyze_file(text, display_path, config)
        findings.extend(local)
        if facts is not None:
            facts_by_path[display_path] = facts
    findings.extend(_project_findings(facts_by_path, config))
    return sorted(findings)


def lint_paths(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
    *,
    cache: "LintCache | None" = None,
    jobs: int = 1,
) -> LintResult:
    """Lint files and directories; the core entry point behind the CLI.

    Args:
        paths: files and directories to lint.
        config: lint configuration (defaults apply when ``None``).
        cache: optional incremental cache — files whose content hash is
            unchanged skip parsing and local rules entirely, reusing the
            cached findings and facts (cached findings carry no ``--fix``
            payloads, so the fixer runs uncached).
        jobs: per-file analysis parallelism; ``> 1`` fans files out over
            a process pool. Results are bitwise order-independent — the
            final finding list is sorted either way.
    """
    config = config if config is not None else LintConfig()
    findings: list[Finding] = []
    files = iter_source_paths(paths, config)

    texts: dict[str, str] = {}
    unreadable: list[Finding] = []
    for path in files:
        display = _display_path(path)
        try:
            texts[display] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            unreadable.append(
                Finding(path=display, line=1, col=1, rule_id=PARSE_ERROR_ID,
                        message=f"unreadable file: {error}")
            )
    findings.extend(unreadable)

    facts_by_path: dict[str, dict[str, Any]] = {}
    to_analyze: list[str] = []
    for display, text in texts.items():
        cached = cache.lookup(display, content_hash(text)) if cache else None
        if cached is not None:
            cached_findings, cached_facts = cached
            findings.extend(cached_findings)
            if cached_facts is not None:
                facts_by_path[display] = cached_facts
        else:
            to_analyze.append(display)

    jobs = max(int(jobs), 1)
    results: dict[str, tuple[list[Finding], dict[str, Any] | None]] = {}
    if jobs > 1 and len(to_analyze) > 1:
        job_args = [(display, texts[display], config)
                    for display in to_analyze]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for display, local, facts in pool.map(
                _analyze_worker, job_args,
                chunksize=max(len(job_args) // (jobs * 4), 1),
            ):
                results[display] = (local, facts)
    else:
        for display in to_analyze:
            results[display] = _analyze_file(texts[display], display, config)

    for display, (local, facts) in results.items():
        findings.extend(local)
        if facts is not None:
            facts_by_path[display] = facts
        if cache is not None:
            cache.store(display, content_hash(texts[display]), local, facts)

    findings.extend(_project_findings(facts_by_path, config))
    if cache is not None:
        cache.prune(set(texts))
        cache.save()
    return LintResult(
        findings=tuple(sorted(findings)),
        files_checked=len(files),
        files_reanalyzed=len(to_analyze) + len(unreadable),
    )
