"""rflint engine: rule registry, per-path scoping, suppression, file walking.

A :class:`Rule` inspects one parsed :class:`SourceFile` and yields
:class:`Finding` objects. Rules self-register via :func:`register` and
declare *path scopes* — fnmatch globs limiting where they apply (e.g. the
dtype-discipline rule only runs under ``repro/radar`` and ``repro/signal``).
Scopes and global excludes can be overridden from ``pyproject.toml``::

    [tool.rflint]
    exclude = ["tests/fixtures/*"]

    [tool.rflint.per-rule.RFP004]
    include = ["*repro/radar/*", "*repro/signal/*"]

Suppression is per-line: a trailing ``# rflint: disable=RFP001`` (comma-
separated ids, or ``all``) silences matching findings on that line.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Mapping, Sequence
from pathlib import Path
from typing import Any, ClassVar

__all__ = [
    "DEFAULT_EXCLUDES",
    "Finding",
    "LintConfig",
    "LintResult",
    "PARSE_ERROR_ID",
    "Rule",
    "RuleScope",
    "SourceFile",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
]

#: Pseudo-rule id attached to unparseable files. Not suppressible.
PARSE_ERROR_ID = "RFP000"

#: Directory-walk excludes applied even without a pyproject override. The
#: lint fixture corpus intentionally violates every rule, so it must never
#: count against the tree; explicitly named files bypass these.
DEFAULT_EXCLUDES: tuple[str, ...] = (
    "*tests/fixtures/*",
    "*/__pycache__/*",
    "*/.git/*",
    "*.egg-info/*",
    "*/build/*",
)

_RULE_ID_RE = re.compile(r"^RFP\d{3}$")
_SUPPRESS_RE = re.compile(r"#\s*rflint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    def format_human(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def _collect_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids disabled on that line.

    Comments are found with :mod:`tokenize` so a ``# rflint:`` sequence
    inside a string literal never counts; on tokenization failure (the file
    will be reported as a parse error anyway) no suppressions apply.
    """
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        ids = frozenset(
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        )
        if ids:
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | ids
    return suppressions


@dataclasses.dataclass
class SourceFile:
    """One parsed Python file presented to the rules."""

    display_path: str
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]]

    @classmethod
    def from_source(cls, text: str, display_path: str) -> "SourceFile":
        """Parse ``text``; raises ``SyntaxError`` on unparseable input."""
        tree = ast.parse(text, filename=display_path)
        return cls(
            display_path=display_path,
            text=text,
            tree=tree,
            suppressions=_collect_suppressions(text),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        disabled = self.suppressions.get(finding.line)
        if disabled is None:
            return False
        return finding.rule_id in disabled or "ALL" in disabled


class Rule:
    """Base class for rflint rules.

    Subclasses set the class attributes and implement :meth:`check`;
    decorating with :func:`register` adds them to the global registry.
    """

    rule_id: ClassVar[str]
    title: ClassVar[str]
    #: Default path scope (fnmatch globs over posix-style paths). ``*``
    #: matches across ``/``, so ``*repro/radar/*`` hits any depth.
    include: ClassVar[tuple[str, ...]] = ("*",)
    exclude: ClassVar[tuple[str, ...]] = ()

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=source.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``rule_cls`` to the global rule registry."""
    rule_id = getattr(rule_cls, "rule_id", None)
    if rule_id is None or not _RULE_ID_RE.match(rule_id):
        raise ValueError(f"rule id must match RFP###, got {rule_id!r}")
    if rule_id == PARSE_ERROR_ID:
        raise ValueError(f"{PARSE_ERROR_ID} is reserved for parse errors")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    """The registered rules, keyed and sorted by rule id."""
    _ensure_builtin_rules()
    return dict(sorted(_REGISTRY.items()))


def _ensure_builtin_rules() -> None:
    # Importing the rules module triggers its @register decorators.
    from repro.devtools import rules as _rules  # noqa: F401


@dataclasses.dataclass(frozen=True)
class RuleScope:
    """Per-rule path-scope override; ``None`` keeps the rule's default."""

    include: tuple[str, ...] | None = None
    exclude: tuple[str, ...] | None = None


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Lint run configuration: excludes, rule selection, per-rule scopes."""

    exclude: tuple[str, ...] = DEFAULT_EXCLUDES
    select: tuple[str, ...] | None = None
    scopes: Mapping[str, RuleScope] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig | None":
        """Config from ``[tool.rflint]``; ``None`` if absent or unreadable.

        Needs :mod:`tomllib` (Python 3.11+); on 3.10 the built-in defaults
        apply, which are sufficient for this repository.
        """
        try:
            import tomllib
        except ImportError:
            return None
        try:
            data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError):
            return None
        table = data.get("tool", {}).get("rflint")
        if not isinstance(table, dict):
            return None
        exclude = tuple(table.get("exclude", ())) + DEFAULT_EXCLUDES
        select_raw = table.get("select")
        select = tuple(select_raw) if select_raw else None
        scopes: dict[str, RuleScope] = {}
        for rule_id, scope in table.get("per-rule", {}).items():
            if not isinstance(scope, dict):
                continue
            scopes[rule_id] = RuleScope(
                include=tuple(scope["include"]) if "include" in scope else None,
                exclude=tuple(scope["exclude"]) if "exclude" in scope else None,
            )
        return cls(exclude=exclude, select=select, scopes=scopes)

    @classmethod
    def discover(cls, start: Path) -> "LintConfig":
        """Walk up from ``start`` for a pyproject with ``[tool.rflint]``."""
        for directory in [start, *start.resolve().parents]:
            pyproject = directory / "pyproject.toml"
            if pyproject.is_file():
                config = cls.from_pyproject(pyproject)
                if config is not None:
                    return config
        return cls()


@dataclasses.dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    findings: tuple[Finding, ...]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "files_checked": self.files_checked,
            "findings": [finding.to_dict() for finding in self.findings],
            "ok": self.ok,
        }


def _matches(path_posix: str, patterns: Iterable[str]) -> bool:
    return any(
        fnmatch.fnmatch(path_posix, pattern)
        or fnmatch.fnmatch(path_posix, pattern.rstrip("/") + "/*")
        for pattern in patterns
    )


def _rule_applies(
    rule_cls: type[Rule], config: LintConfig, display_path: str
) -> bool:
    scope = config.scopes.get(rule_cls.rule_id, RuleScope())
    include = scope.include if scope.include is not None else rule_cls.include
    exclude = scope.exclude if scope.exclude is not None else rule_cls.exclude
    if not _matches(display_path, include):
        return False
    return not _matches(display_path, exclude)


def _selected_rules(config: LintConfig) -> list[type[Rule]]:
    rules = all_rules()
    if config.select is None:
        return list(rules.values())
    unknown = sorted(set(config.select) - set(rules))
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return [rules[rule_id] for rule_id in sorted(set(config.select))]


def _display_path(path: Path) -> str:
    # Normalized posix form so glob scopes behave identically everywhere.
    return Path(str(path)).as_posix().removeprefix("./")


def iter_source_paths(
    paths: Sequence[Path | str], config: LintConfig
) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list.

    Global excludes apply only during directory traversal: a file named
    explicitly on the command line is always linted (that is how the
    fixture corpus exercises itself).
    """
    seen: set[str] = set()
    collected: list[Path] = []

    def add(path: Path) -> None:
        key = _display_path(path)
        if key not in seen:
            seen.add(key)
            collected.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _matches(_display_path(candidate), config.exclude):
                    add(candidate)
        elif path.is_file():
            add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return collected


def lint_source(
    text: str,
    display_path: str,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob under ``display_path``'s scopes."""
    config = config if config is not None else LintConfig()
    try:
        source = SourceFile.from_source(text, display_path)
    except SyntaxError as error:
        return [
            Finding(
                path=display_path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                rule_id=PARSE_ERROR_ID,
                message=f"syntax error: {error.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule_cls in _selected_rules(config):
        if not _rule_applies(rule_cls, config, display_path):
            continue
        for finding in rule_cls().check(source):
            if not source.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
) -> LintResult:
    """Lint files and directories; the core entry point behind the CLI."""
    config = config if config is not None else LintConfig()
    findings: list[Finding] = []
    files = iter_source_paths(paths, config)
    for path in files:
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            findings.append(
                Finding(
                    path=_display_path(path),
                    line=1,
                    col=1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"unreadable file: {error}",
                )
            )
            continue
        findings.extend(lint_source(text, _display_path(path), config))
    return LintResult(findings=tuple(sorted(findings)), files_checked=len(files))
