"""The rflint auto-fixer: apply ``TextEdit`` payloads to source text.

Rules attach :class:`~repro.devtools.engine.TextEdit` spans to findings
they know how to repair mechanically (today RFP004 missing ``dtype=`` on
zero-filled constructors and RFP005 mutable defaults). ``rfprotect lint
--fix`` collects those per file, applies them bottom-up (so earlier spans
stay valid), skips anything overlapping, rewrites the file, and re-lints
— the fixer is idempotent: a second ``--fix`` run finds nothing to do.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

from repro.devtools.engine import Finding, TextEdit

__all__ = ["FixOutcome", "apply_edits", "fixable"]


@dataclasses.dataclass(frozen=True)
class FixOutcome:
    """Result of fixing one file."""

    text: str
    applied: int
    skipped: int


def fixable(findings: Iterable[Finding]) -> list[Finding]:
    return [finding for finding in findings if finding.fixes]


def _offset(line_starts: list[int], line: int, col: int) -> int:
    return line_starts[line - 1] + col


def _line_starts(text: str) -> list[int]:
    starts = [0]
    for index, char in enumerate(text):
        if char == "\n":
            starts.append(index + 1)
    return starts


def apply_edits(text: str, edits: Sequence[TextEdit]) -> FixOutcome:
    """Apply non-overlapping edits to ``text``, last-span-first."""
    starts = _line_starts(text)

    def span(edit: TextEdit) -> tuple[int, int]:
        return (
            _offset(starts, edit.line, edit.col),
            _offset(starts, edit.end_line, edit.end_col),
        )

    ordered = sorted(
        {(span(edit), edit.text) for edit in edits},
        key=lambda item: item[0],
        reverse=True,
    )
    applied = 0
    skipped = 0
    last_start = len(text) + 1
    for (start, end), replacement in ordered:
        if end > last_start or end < start:
            skipped += 1  # overlaps an already-applied edit
            continue
        text = text[:start] + replacement + text[end:]
        last_start = start
        applied += 1
    return FixOutcome(text=text, applied=applied, skipped=skipped)
