"""``rfprotect lint`` / ``python -m repro.devtools.lint`` entry point.

Usage::

    rfprotect lint                       # lint src and tests
    rfprotect lint src tests             # explicit paths
    rfprotect lint --format json src     # machine-readable output
    rfprotect lint --select RFP001,RFP004 src
    rfprotect lint --list-rules

Exit codes: 0 clean, 1 findings, 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.devtools.engine import LintConfig, all_rules, lint_paths

__all__ = ["main"]

_DEFAULT_PATHS = ("src", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rfprotect lint",
        description="rflint: AST-based invariant checks for the RF-Protect "
                    "reproduction",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(_DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.rflint] from "
             "(default: discovered from the current directory)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.rflint] configuration; use built-in defaults",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    elif args.config is not None:
        loaded = LintConfig.from_pyproject(Path(args.config))
        if loaded is None:
            raise ValueError(
                f"no [tool.rflint] table readable from {args.config}"
            )
        config = loaded
    else:
        config = LintConfig.discover(Path.cwd())
    if args.select:
        select = tuple(
            part.strip().upper() for part in args.select.split(",")
            if part.strip()
        )
        config = LintConfig(
            exclude=config.exclude, select=select, scopes=config.scopes
        )
    return config


def _print_rules() -> None:
    for rule_id, rule_cls in all_rules().items():
        summary = (rule_cls.__doc__ or rule_cls.title).strip().splitlines()[0]
        print(f"{rule_id}  {summary}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    try:
        config = _resolve_config(args)
        result = lint_paths(args.paths, config)
    except (FileNotFoundError, ValueError) as error:
        print(f"rflint: error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.format_human())
        noun = "file" if result.files_checked == 1 else "files"
        status = "clean" if result.ok else f"{len(result.findings)} finding(s)"
        print(f"rflint: {result.files_checked} {noun} checked, {status}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
