"""``rfprotect lint`` / ``python -m repro.devtools.lint`` entry point.

Usage::

    rfprotect lint                        # lint src and tests
    rfprotect lint src tests              # explicit paths
    rfprotect lint --format json src      # machine-readable output
    rfprotect lint --format sarif src     # GitHub code-scanning annotations
    rfprotect lint --select RFP001,RFP004 src
    rfprotect lint --fix src              # apply mechanical auto-fixes
    rfprotect lint --baseline .rflint-baseline.json src tests
    rfprotect lint --update-baseline .rflint-baseline.json src tests
    rfprotect lint --cache-dir .rflint-cache --jobs 4 src tests
    rfprotect lint --list-rules

Caching: ``--cache-dir`` (or the ``RF_PROTECT_LINT_CACHE`` knob) enables
the content-hash incremental store — a warm run re-analyzes only changed
files; ``--no-cache`` forces a cold run. ``--fix`` always runs uncached
(cached findings carry no edit payloads).

Exit codes: 0 clean, 1 findings, 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.devtools.engine import (
    LintConfig,
    LintResult,
    all_rules,
    lint_paths,
)

__all__ = ["main"]

_DEFAULT_PATHS = ("src", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rfprotect lint",
        description="rflint: AST + project-graph invariant checks for the "
                    "RF-Protect reproduction",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(_DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.rflint] from "
             "(default: discovered from the current directory)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore [tool.rflint] configuration; use built-in defaults",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical auto-fixes (RFP004/RFP005) in place, then "
             "report what remains",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="subtract findings recorded in this baseline file; only new "
             "findings fail the run",
    )
    parser.add_argument(
        "--update-baseline", default=None, metavar="FILE",
        help="rewrite the baseline file from the current findings and exit "
             "clean",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="analyze files with N parallel processes (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="enable the incremental cache in DIR (default: the "
             "RF_PROTECT_LINT_CACHE knob; unset means no cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore any configured incremental cache",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print files checked vs re-analyzed (cache effectiveness)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    elif args.config is not None:
        loaded = LintConfig.from_pyproject(Path(args.config))
        if loaded is None:
            raise ValueError(
                f"no [tool.rflint] table readable from {args.config}"
            )
        config = loaded
    else:
        config = LintConfig.discover(Path.cwd())
    if args.select:
        select = tuple(
            part.strip().upper() for part in args.select.split(",")
            if part.strip()
        )
        config = LintConfig(
            exclude=config.exclude, select=select, scopes=config.scopes
        )
    return config


def _resolve_cache_dir(args: argparse.Namespace) -> Path | None:
    if args.no_cache or args.fix:
        return None
    if args.cache_dir is not None:
        return Path(args.cache_dir)
    from repro.config import get_lint_cache_dir

    configured = get_lint_cache_dir()
    return Path(configured) if configured else None


def _run_fix(paths: Sequence[str], config: LintConfig,
             jobs: int) -> tuple[LintResult, int]:
    """Apply fixes in place; returns the post-fix result and edit count."""
    from repro.devtools.fixer import apply_edits

    result = lint_paths(paths, config, jobs=jobs)
    edits_by_path: dict[str, list] = {}
    for finding in result.findings:
        if finding.fixes:
            edits_by_path.setdefault(finding.path, []).extend(finding.fixes)
    applied = 0
    for path, edits in sorted(edits_by_path.items()):
        target = Path(path)
        outcome = apply_edits(target.read_text(encoding="utf-8"), edits)
        if outcome.applied:
            target.write_text(outcome.text, encoding="utf-8")
            applied += outcome.applied
    if applied:
        result = lint_paths(paths, config, jobs=jobs)
    return result, applied


def _print_rules() -> None:
    for rule_id, rule_cls in all_rules().items():
        summary = (rule_cls.__doc__ or rule_cls.title).strip().splitlines()[0]
        print(f"{rule_id}  {summary}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    if args.baseline and args.update_baseline:
        print("rflint: error: --baseline and --update-baseline are "
              "mutually exclusive", file=sys.stderr)
        return 2

    applied = 0
    try:
        config = _resolve_config(args)
        if args.fix:
            result, applied = _run_fix(args.paths, config, args.jobs)
        else:
            cache_dir = _resolve_cache_dir(args)
            cache = None
            if cache_dir is not None:
                from repro.devtools.cache import LintCache

                cache = LintCache.open(cache_dir, config)
            result = lint_paths(args.paths, config, cache=cache,
                                jobs=args.jobs)
    except (FileNotFoundError, ValueError) as error:
        print(f"rflint: error: {error}", file=sys.stderr)
        return 2

    findings = list(result.findings)
    if args.update_baseline:
        from repro.devtools.baseline import Baseline

        Baseline.from_findings(findings).save(Path(args.update_baseline))
        print(f"rflint: baseline {args.update_baseline} updated with "
              f"{len(findings)} finding(s)")
        return 0
    if args.baseline:
        from repro.devtools.baseline import Baseline

        try:
            baseline = Baseline.load(Path(args.baseline))
        except ValueError as error:
            print(f"rflint: error: {error}", file=sys.stderr)
            return 2
        suppressed = len(findings)
        findings = baseline.filter(findings)
        suppressed -= len(findings)
    else:
        suppressed = 0

    ok = not findings
    if args.format == "json":
        payload = {
            "files_checked": result.files_checked,
            "files_reanalyzed": result.files_reanalyzed,
            "findings": [finding.to_dict() for finding in findings],
            "baselined": suppressed,
            "fixed": applied,
            "ok": ok,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        from repro.devtools.sarif import to_sarif

        print(json.dumps(to_sarif(findings), indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format_human())
        noun = "file" if result.files_checked == 1 else "files"
        status = "clean" if ok else f"{len(findings)} finding(s)"
        extras = []
        if applied:
            extras.append(f"{applied} fix(es) applied")
        if suppressed:
            extras.append(f"{suppressed} baselined")
        if args.stats:
            extras.append(f"{result.files_reanalyzed} re-analyzed")
        suffix = f" ({', '.join(extras)})" if extras else ""
        print(f"rflint: {result.files_checked} {noun} checked, "
              f"{status}{suffix}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
