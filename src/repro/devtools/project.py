"""Project-wide symbol graph for rflint: per-module facts + resolution.

The cross-module rules (RFP010–RFP014) cannot work from a single AST —
they follow a call from ``SenseService.submit_tracked`` into
``SessionStore.get`` and on into ``StreamingTracker.from_checkpoint``,
three modules apart. This module supplies the two halves that make that
tractable inside a linter:

- :func:`extract_facts` distills one parsed file into a JSON-serializable
  fact dict — classes (fields, lock presence, attribute types, checkpoint
  schema), functions (signature, calls with lock context, attribute
  accesses, blocking calls, dtype events from
  :mod:`repro.devtools.dataflow`), kernel registrations, and checkpoint
  subscript reads. Facts are what the incremental cache stores: they are
  cheap to extract, cheap to reload, and contain everything the project
  pass needs, so a cached file never has to be re-parsed for cross-module
  analysis.
- :class:`ProjectGraph` assembles all modules' facts and resolves
  *call descriptors* to concrete functions: ``self.x()``, ``self.attr.x()``
  through constructor-inferred attribute types, local variables through
  annotations / constructor calls / return-type hops, and fully dotted
  paths through the import table.

Resolution is deliberately best-effort and sound-ish rather than
complete: an unresolvable call simply ends a chain (no finding), it never
invents one.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.devtools.dataflow import analyze_dtypes, tag_of_annotation
from repro.devtools.rules import (
    _BLOCKING_CALLS,
    _BLOCKING_METHODS,
    build_aliases,
    resolve,
)

if TYPE_CHECKING:
    from repro.devtools.engine import Finding, SourceFile

__all__ = ["FACTS_SCHEMA_VERSION", "ProjectGraph", "extract_facts",
           "module_name_for"]

#: Bump when the fact layout changes: invalidates every cache entry.
FACTS_SCHEMA_VERSION = 1

#: Comment marking a function as blocking for RFP014 even though it calls
#: nothing on the blocking lists itself (CPU-bound work, C extensions).
BLOCKING_MARKER = "# rflint: blocking"

_LOCK_SUFFIX = "lock"


def module_name_for(display_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/serve/session.py`` -> ``repro.serve.session``; paths
    outside a ``src`` layout keep their full part chain, which is unique
    enough for resolution purposes.
    """
    parts = list(display_path.split("/"))
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def _is_lock_name(name: str) -> bool:
    return name == _LOCK_SUFFIX or name.endswith("_" + _LOCK_SUFFIX)


def _is_lock_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return _is_lock_name(node.attr)
    if isinstance(node, ast.Name):
        return _is_lock_name(node.id)
    if isinstance(node, ast.Call):
        # `async with contextlib.nullcontext(session.lock)`-style wrappers
        # are not lock acquisitions; don't guess.
        return False
    return False


def _annotation_class(node: ast.AST | None, aliases: dict[str, str],
                      local_classes: set[str], module: str) -> str | None:
    """Resolve an annotation to a dotted class name, or ``None``.

    Unwraps ``Optional[X]`` / ``X | None`` / string annotations down to a
    single named class; parametrized containers resolve to nothing (we do
    not track element types across modules).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        if not isinstance(node.value, str):
            return None
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return _annotation_class(side, aliases, local_classes, module)
        return None
    if isinstance(node, ast.Subscript):
        base = resolve(node.value, aliases)
        if base in ("typing.Optional", "Optional"):
            return _annotation_class(node.slice, aliases, local_classes,
                                     module)
        return None
    if isinstance(node, ast.Name):
        if node.id in local_classes:
            return f"{module}.{node.id}" if module else node.id
        return aliases.get(node.id)
    if isinstance(node, ast.Attribute):
        return resolve(node, aliases)
    return None


def _walk_skip_defs(root: ast.AST) -> Iterator[ast.AST]:
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        yield child
        yield from _walk_skip_defs(child)


class _FunctionExtractor:
    """Distill one function body into serializable call/access facts."""

    def __init__(self, source_text: str, aliases: dict[str, str],
                 local_classes: set[str], module: str,
                 cls_name: str | None) -> None:
        self.text_lines = source_text.splitlines()
        self.aliases = aliases
        self.local_classes = local_classes
        self.module = module
        self.cls_name = cls_name
        self.var_types: dict[str, str] = {}
        self.calls: list[dict[str, Any]] = []
        self.accesses: list[dict[str, Any]] = []
        self.blocking: list[dict[str, Any]] = []

    def run(self, function: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = function.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in ("self", "cls"):
                continue
            annotated = _annotation_class(arg.annotation, self.aliases,
                                          self.local_classes, self.module)
            if annotated is not None:
                self.var_types[arg.arg] = annotated
        self._block(function.body, under_lock=False)

    # -- descriptors -------------------------------------------------------

    def _call_desc(self, func: ast.AST) -> str:
        dotted = resolve(func, self.aliases)
        if dotted is not None:
            return f"dotted:{dotted}"
        if isinstance(func, ast.Name):
            if func.id in self.local_classes:
                return f"ctor:{self.module}.{func.id}"
            return f"name:{func.id}"
        if isinstance(func, ast.Attribute):
            method = func.attr
            recv = func.value
            if isinstance(recv, ast.Name):
                if recv.id == "self" and self.cls_name is not None:
                    return f"self:{method}"
                if recv.id in self.local_classes:
                    return f"cls:{self.module}.{recv.id}.{method}"
                rtype = self.var_types.get(recv.id)
                if rtype is not None:
                    return f"var:{recv.id}.{method}:{rtype}"
                return f"method:{method}"
            if (isinstance(recv, ast.Attribute)
                    and isinstance(recv.value, ast.Name)
                    and recv.value.id == "self"):
                return f"selfattr:{recv.attr}.{method}"
            return f"method:{method}"
        return "unknown"

    def _value_type(self, value: ast.AST) -> str | None:
        """Static type of an assigned expression, as class name or hop."""
        if isinstance(value, ast.Call):
            desc = self._call_desc(value.func)
            if desc.startswith("ctor:"):
                return desc.removeprefix("ctor:")
            dotted = desc.removeprefix("dotted:") if desc.startswith(
                "dotted:") else None
            if dotted is not None:
                # `StreamingTracker(...)` via import: constructor call.
                return dotted
            if desc.startswith(("self:", "selfattr:", "var:", "name:",
                                "cls:")):
                return f"ret:{desc}"
            return None
        if isinstance(value, ast.Name):
            return self.var_types.get(value.id)
        if isinstance(value, ast.Await):
            return None
        return None

    # -- body walk ---------------------------------------------------------

    def _block(self, body: list[ast.stmt], *, under_lock: bool) -> None:
        for stmt in body:
            self._statement(stmt, under_lock=under_lock)

    def _statement(self, stmt: ast.stmt, *, under_lock: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are their own execution context
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locked = under_lock or any(
                _is_lock_expr(item.context_expr) for item in stmt.items
            )
            for item in stmt.items:
                self._expressions(item.context_expr, under_lock=under_lock)
            self._block(stmt.body, under_lock=locked)
            return
        if isinstance(stmt, ast.Assign):
            value_type = self._value_type(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if value_type is not None:
                        self.var_types[target.id] = value_type
                    else:
                        self.var_types.pop(target.id, None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            annotated = _annotation_class(stmt.annotation, self.aliases,
                                          self.local_classes, self.module)
            if annotated is not None:
                self.var_types[stmt.target.id] = annotated
        for field, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                self._expressions(value, under_lock=under_lock)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        self._statement(item, under_lock=under_lock)
                    elif isinstance(item, ast.expr):
                        self._expressions(item, under_lock=under_lock)
                    elif isinstance(item, ast.excepthandler):
                        self._block(item.body, under_lock=under_lock)

    def _expressions(self, root: ast.expr, *,
                     under_lock: bool) -> None:
        awaited: set[int] = set()
        for node in [root, *_walk_skip_defs(root)]:
            if isinstance(node, ast.Await) and isinstance(
                node.value, ast.Call
            ):
                awaited.add(id(node.value))
        for node in [root, *_walk_skip_defs(root)]:
            if isinstance(node, ast.Call):
                self._record_call(node, under_lock=under_lock,
                                  awaited=id(node) in awaited)
            elif isinstance(node, ast.Attribute):
                self._record_access(node, under_lock=under_lock)

    def _record_call(self, node: ast.Call, *, under_lock: bool,
                     awaited: bool) -> None:
        desc = self._call_desc(node.func)
        dotted = (desc.removeprefix("dotted:")
                  if desc.startswith("dotted:") else None)
        if dotted in _BLOCKING_CALLS or (
            isinstance(node.func, ast.Name) and node.func.id == "open"
        ):
            self.blocking.append({
                "target": dotted or "open",
                "line": node.lineno, "col": node.col_offset + 1,
            })
        elif (isinstance(node.func, ast.Attribute)
              and node.func.attr in _BLOCKING_METHODS and dotted is None):
            self.blocking.append({
                "target": f".{node.func.attr}()",
                "line": node.lineno, "col": node.col_offset + 1,
            })
        self.calls.append({
            "desc": desc,
            "line": node.lineno,
            "col": node.col_offset + 1,
            "awaited": awaited,
            "under_lock": under_lock,
        })

    def _record_access(self, node: ast.Attribute, *,
                       under_lock: bool) -> None:
        if node.attr.startswith("__"):
            return
        recv = node.value
        if not isinstance(recv, ast.Name):
            return
        store = isinstance(node.ctx, (ast.Store, ast.Del))
        rtype: str | None
        if recv.id == "self":
            rtype = "self"
        elif recv.id in self.aliases or recv.id in self.local_classes:
            return  # module/class attribute, not an instance field access
        else:
            rtype = self.var_types.get(recv.id)
        self.accesses.append({
            "attr": node.attr,
            "line": node.lineno,
            "col": node.col_offset + 1,
            "store": store,
            "under_lock": under_lock,
            "recv": recv.id,
            "rtype": rtype,
        })


def _function_facts(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    source: "SourceFile",
    aliases: dict[str, str],
    local_classes: set[str],
    module: str,
    cls_name: str | None,
) -> dict[str, Any]:
    args = function.args
    named = [*args.posonlyargs, *args.args]
    params = [arg.arg for arg in named if arg.arg not in ("self", "cls")]
    n_defaults = len(args.defaults)
    required = max(len(named) - n_defaults, 0)
    if named and named[0].arg in ("self", "cls"):
        required = max(required - 1, 0)

    extractor = _FunctionExtractor(source.text, aliases, local_classes,
                                   module, cls_name)
    extractor.run(function)
    dtypes = analyze_dtypes(function, aliases)

    calls = extractor.calls
    for call in calls:
        tags = dtypes.call_args.get((call["line"], call["col"] - 1))
        if tags:
            call["tags"] = [list(pair) for pair in tags]

    param_tags = {
        arg.arg: tag
        for arg in [*named, *args.kwonlyargs]
        if (tag := tag_of_annotation(arg.annotation, aliases)) is not None
    }

    header_lines = range(function.lineno,
                         (function.body[0].lineno if function.body
                          else function.lineno) + 1)
    lines = source.text.splitlines()
    blocking_marker = any(
        BLOCKING_MARKER in lines[line - 1]
        for line in header_lines if 0 < line <= len(lines)
    )

    return {
        "name": function.name,
        "qual": (f"{cls_name}.{function.name}" if cls_name
                 else function.name),
        "cls": cls_name,
        "line": function.lineno,
        "is_async": isinstance(function, ast.AsyncFunctionDef),
        "params": params,
        "required": required,
        "has_varargs": args.vararg is not None,
        "param_tags": param_tags,
        "param_types": {
            name: rtype for name, rtype in extractor.var_types.items()
            if name in params
        },
        "returns": _annotation_class(function.returns, aliases,
                                     local_classes, module),
        "blocking_marker": blocking_marker,
        "blocking": extractor.blocking,
        "calls": calls,
        "accesses": extractor.accesses,
        "dtype_violations": [list(v) for v in dtypes.violations],
    }


def _registration_facts(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
    aliases: dict[str, str],
) -> dict[str, Any] | None:
    """A ``@KERNELS.register(Stage.X, "backend")`` decoration, if any."""
    for decorator in function.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        if not (isinstance(func, ast.Attribute) and func.attr == "register"):
            continue
        registry = func.value
        named_kernels = (
            isinstance(registry, ast.Name) and registry.id == "KERNELS"
        )
        resolved = resolve(registry, aliases)
        if not (named_kernels
                or resolved == "repro.radar.stages.KERNELS"):
            continue
        stage: str | None = None
        backend: str | None = None
        if decorator.args:
            stage_arg = decorator.args[0]
            if isinstance(stage_arg, ast.Attribute):
                stage = stage_arg.attr.lower()
            elif isinstance(stage_arg, ast.Constant) and isinstance(
                stage_arg.value, str
            ):
                stage = stage_arg.value.lower()
        if len(decorator.args) > 1:
            backend_arg = decorator.args[1]
            if isinstance(backend_arg, ast.Constant) and isinstance(
                backend_arg.value, str
            ):
                backend = backend_arg.value
        for keyword in decorator.keywords:
            if keyword.arg == "backend" and isinstance(
                keyword.value, ast.Constant
            ) and isinstance(keyword.value.value, str):
                backend = keyword.value.value
        args = function.args
        named = [*args.posonlyargs, *args.args]
        required = max(len(named) - len(args.defaults), 0)
        return {
            "stage": stage,
            "backend": backend,
            "func": function.name,
            "line": function.lineno,
            "col": function.col_offset + 1,
            "required": required,
            "has_varargs": args.vararg is not None,
        }
    return None


def _checkpoint_info(cls: ast.ClassDef) -> dict[str, Any] | None:
    methods = {
        stmt.name: stmt for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    has_checkpoint = "checkpoint" in methods
    has_restore = "from_checkpoint" in methods
    if not (has_checkpoint or has_restore):
        return None

    version_const = False
    fields_const: list[str] | None = None
    fields_line = cls.lineno
    for stmt in cls.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        names = {t.id for t in targets if isinstance(t, ast.Name)}
        if "CHECKPOINT_VERSION" in names:
            version_const = True
        if "CHECKPOINT_FIELDS" in names and isinstance(
            value, (ast.Tuple, ast.List)
        ):
            literal = [
                element.value for element in value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
            if len(literal) == len(value.elts):
                fields_const = literal
                fields_line = stmt.lineno

    write_keys: list[str] | None = None
    write_line = cls.lineno
    if has_checkpoint:
        write_line = methods["checkpoint"].lineno
        returned: list[str] = []
        exact = True
        for node in ast.walk(methods["checkpoint"]):
            if not isinstance(node, ast.Return) or not isinstance(
                node.value, ast.Dict
            ):
                continue
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    returned.append(key.value)
                else:
                    exact = False
        if returned and exact:
            write_keys = returned

    read_keys: list[str] = []
    read_line = cls.lineno
    reads_version = False
    if has_restore:
        restore = methods["from_checkpoint"]
        read_line = restore.lineno
        args = restore.args
        named = [arg.arg for arg in [*args.posonlyargs, *args.args]
                 if arg.arg not in ("self", "cls")]
        state_param = named[0] if named else None
        for node in ast.walk(restore):
            if (isinstance(node, ast.Attribute)
                    and node.attr == "CHECKPOINT_VERSION"):
                reads_version = True
            if state_param is None:
                continue
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == state_param
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)):
                read_keys.append(node.slice.value)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "get"
                  and isinstance(node.func.value, ast.Name)
                  and node.func.value.id == state_param
                  and node.args
                  and isinstance(node.args[0], ast.Constant)
                  and isinstance(node.args[0].value, str)):
                read_keys.append(node.args[0].value)

    return {
        "has_checkpoint": has_checkpoint,
        "has_from_checkpoint": has_restore,
        "version_const": version_const,
        "fields_const": fields_const,
        "fields_line": fields_line,
        "write_keys": write_keys,
        "write_line": write_line,
        "read_keys": sorted(set(read_keys)),
        "read_line": read_line,
        "reads_version": reads_version,
        "line": cls.lineno,
    }


def _class_facts(cls: ast.ClassDef, *, source: "SourceFile",
                 aliases: dict[str, str], local_classes: set[str],
                 module: str) -> dict[str, Any]:
    fields: list[str] = []
    attr_types: dict[str, str] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields.append(stmt.target.id)
            annotated = _annotation_class(stmt.annotation, aliases,
                                          local_classes, module)
            if annotated is not None:
                attr_types[stmt.target.id] = annotated
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(stmt):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if target.attr not in fields:
                fields.append(target.attr)
            if target.attr in attr_types:
                continue
            if isinstance(node, ast.AnnAssign):
                annotated = _annotation_class(node.annotation, aliases,
                                              local_classes, module)
                if annotated is not None:
                    attr_types[target.attr] = annotated
                    continue
            if isinstance(value, ast.Call):
                ctor = resolve(value.func, aliases)
                if ctor is None and isinstance(value.func, ast.Name) and (
                    value.func.id in local_classes
                ):
                    ctor = f"{module}.{value.func.id}"
                if ctor is not None:
                    attr_types[target.attr] = ctor

    return {
        "name": cls.name,
        "line": cls.lineno,
        "fields": fields,
        "has_lock": any(_is_lock_name(field) for field in fields),
        "attr_types": attr_types,
        "checkpoint": _checkpoint_info(cls),
    }


def extract_facts(source: "SourceFile") -> dict[str, Any]:
    """Distill one parsed file into the serializable project facts."""
    aliases = build_aliases(source.tree)
    module = module_name_for(source.display_path)
    local_classes = {
        stmt.name for stmt in source.tree.body
        if isinstance(stmt, ast.ClassDef)
    }

    classes: dict[str, dict[str, Any]] = {}
    functions: dict[str, dict[str, Any]] = {}
    registrations: list[dict[str, Any]] = []
    checkpoint_reads: list[dict[str, Any]] = []

    def visit_function(function: ast.FunctionDef | ast.AsyncFunctionDef,
                       cls_name: str | None) -> None:
        facts = _function_facts(
            function, source=source, aliases=aliases,
            local_classes=local_classes, module=module, cls_name=cls_name,
        )
        functions[facts["qual"]] = facts
        registration = _registration_facts(function, aliases)
        if registration is not None:
            registrations.append(registration)

    for stmt in source.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_function(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            classes[stmt.name] = _class_facts(
                stmt, source=source, aliases=aliases,
                local_classes=local_classes, module=module,
            )
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit_function(sub, stmt.name)

    for node in ast.walk(source.tree):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "checkpoint"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            checkpoint_reads.append({
                "key": node.slice.value,
                "line": node.lineno,
                "col": node.col_offset + 1,
            })

    return {
        "schema": FACTS_SCHEMA_VERSION,
        "path": source.display_path,
        "module": module,
        "aliases": aliases,
        "suppressions": {
            str(line): sorted(ids)
            for line, ids in source.suppressions.items()
        },
        "classes": classes,
        "functions": functions,
        "registrations": registrations,
        "checkpoint_reads": checkpoint_reads,
    }


FnKey = tuple[str, str]  # (display_path, qualname)


class ProjectGraph:
    """All modules' facts plus cross-module resolution."""

    def __init__(self, modules: dict[str, dict[str, Any]]) -> None:
        self.modules = modules
        self.by_module: dict[str, dict[str, Any]] = {}
        for facts in modules.values():
            name = facts.get("module", "")
            if name:
                self.by_module[name] = facts

    # -- lookups -----------------------------------------------------------

    def iter_functions(
        self,
    ) -> Iterator[tuple[dict[str, Any], dict[str, Any]]]:
        """Yield ``(module_facts, function_facts)`` over the project."""
        for facts in self.modules.values():
            for fn in facts["functions"].values():
                yield facts, fn

    def iter_classes(
        self,
    ) -> Iterator[tuple[dict[str, Any], dict[str, Any]]]:
        for facts in self.modules.values():
            for cls in facts["classes"].values():
                yield facts, cls

    def function_by_key(
        self, key: FnKey
    ) -> tuple[dict[str, Any], dict[str, Any]] | None:
        facts = self.modules.get(key[0])
        if facts is None:
            return None
        fn = facts["functions"].get(key[1])
        if fn is None:
            return None
        return facts, fn

    def class_by_dotted(
        self, dotted: str
    ) -> tuple[dict[str, Any], dict[str, Any]] | None:
        module, _, cls_name = dotted.rpartition(".")
        facts = self.by_module.get(module)
        if facts is None:
            return None
        cls = facts["classes"].get(cls_name)
        if cls is None:
            return None
        return facts, cls

    def method_key(self, dotted_cls: str, method: str) -> FnKey | None:
        resolved = self.class_by_dotted(dotted_cls)
        if resolved is None:
            return None
        facts, cls = resolved
        qual = f"{cls['name']}.{method}"
        if qual in facts["functions"]:
            return (facts["path"], qual)
        return None

    def is_suppressed(self, finding: "Finding") -> bool:
        facts = self.modules.get(finding.path)
        if facts is None:
            return False
        disabled = facts["suppressions"].get(str(finding.line))
        if not disabled:
            return False
        return finding.rule_id in disabled or "ALL" in disabled

    # -- call resolution ---------------------------------------------------

    def resolve_type(self, rtype: str | None, caller_module: dict[str, Any],
                     caller_fn: dict[str, Any] | None) -> str | None:
        """A receiver type annotation/hop down to a dotted class name."""
        if rtype is None or rtype == "self":
            return rtype
        if rtype.startswith("ret:"):
            key = self.resolve_call(rtype.removeprefix("ret:"),
                                    caller_module, caller_fn)
            if key is None:
                return None
            resolved = self.function_by_key(key)
            if resolved is None:
                return None
            returns = resolved[1].get("returns")
            return returns if isinstance(returns, str) else None
        return rtype

    def resolve_call(self, desc: str, caller_module: dict[str, Any],
                     caller_fn: dict[str, Any] | None) -> FnKey | None:
        """A call descriptor down to a concrete project function, if any."""
        kind, _, rest = desc.partition(":")
        if kind == "dotted":
            return self._resolve_dotted(rest)
        if kind == "ctor":
            return self.method_key(rest, "__init__")
        if kind == "name":
            if rest in caller_module["functions"]:
                return (caller_module["path"], rest)
            dotted = caller_module["aliases"].get(rest)
            if dotted is not None:
                return self._resolve_dotted(dotted)
            return None
        if kind == "self":
            if caller_fn is None or caller_fn.get("cls") is None:
                return None
            qual = f"{caller_fn['cls']}.{rest}"
            if qual in caller_module["functions"]:
                return (caller_module["path"], qual)
            return None
        if kind == "cls":
            dotted_cls, _, method = rest.rpartition(".")
            return self.method_key(dotted_cls, method)
        if kind == "selfattr":
            if caller_fn is None or caller_fn.get("cls") is None:
                return None
            attr, _, method = rest.partition(".")
            cls = caller_module["classes"].get(caller_fn["cls"])
            if cls is None:
                return None
            dotted_cls = cls["attr_types"].get(attr)
            if dotted_cls is None:
                return None
            return self.method_key(dotted_cls, method)
        if kind == "var":
            head, _, rtype = rest.partition(":")
            _, _, method = head.partition(".")
            resolved_cls = self.resolve_type(rtype, caller_module, caller_fn)
            if resolved_cls is None or resolved_cls == "self":
                return None
            return self.method_key(resolved_cls, method)
        return None

    def _resolve_dotted(self, dotted: str) -> FnKey | None:
        # Longest-prefix match: `a.b.C.m` may be module `a.b` + class `C`
        # method `m`, or module `a.b.C` + function `m`.
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            facts = self.by_module.get(module)
            if facts is None:
                continue
            qual = ".".join(parts[split:])
            if qual in facts["functions"]:
                return (facts["path"], qual)
            if qual in facts["classes"]:
                init = f"{qual}.__init__"
                if init in facts["functions"]:
                    return (facts["path"], init)
            return None
        return None
