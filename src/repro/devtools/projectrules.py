"""The cross-module rflint rules: RFP010–RFP014.

These run in the project pass over :class:`~repro.devtools.project.
ProjectGraph` — after every file's facts exist — and guard invariants no
single AST can see:

- **RFP010** async lock discipline: a field of a lock-owning class that
  is ever mutated under ``async with ...lock`` is lock-guarded *state*;
  touching it anywhere outside the lock (including from helpers only ever
  called with the lock held — those are exempted by call-graph closure)
  is a data race with the serving path.
- **RFP011** kernel-registry conformance: every ``@KERNELS.register``
  entry must satisfy the ``StageFn`` protocol — exactly one required
  ``ctx`` parameter — and each ``(stage, backend)`` slot may be
  registered once across the whole tree (a duplicate raises at import
  time in production; the linter catches it before that).
- **RFP012** checkpoint schema discipline: a class with
  ``checkpoint``/``from_checkpoint`` must declare ``CHECKPOINT_VERSION``
  and ``CHECKPOINT_FIELDS``; the payload keys written, the keys read
  back, and the declared tuple must agree, so any payload edit forces a
  visible schema diff (and with it the version-bump conversation).
  Cross-module subscripts into checkpoint blobs must use declared keys.
- **RFP013** dtype flow: tracks float64 values (via
  :mod:`repro.devtools.dataflow`) into float32 buffers locally and into
  float32-annotated parameters across module boundaries — the precision
  drop RFP004's per-call syntax check cannot see.
- **RFP014** transitive blocking calls: closes RFP008 over the call
  graph — a serve coroutine calling a *sync* helper that (transitively)
  reaches ``time.sleep``/file I/O/``subprocess`` or a function marked
  ``# rflint: blocking`` stalls the event loop just as surely as calling
  it inline. Reports one witness chain per call site.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.devtools.engine import Finding, ProjectRule, register
from repro.devtools.project import FnKey, ProjectGraph

__all__ = [
    "AsyncLockDiscipline",
    "CheckpointSchemaDiscipline",
    "DtypeFlow",
    "KernelRegistryConformance",
    "TransitiveBlockingCall",
]

_INIT_METHODS = frozenset({"__init__", "__post_init__"})


def _is_lockish(attr: str) -> bool:
    return attr == "lock" or attr.endswith("_lock")


@register
class AsyncLockDiscipline(ProjectRule):
    """RFP010 — fields mutated under a session lock never escape it."""

    rule_id = "RFP010"
    title = "lock-guarded field touched outside the lock"
    include = ("*repro/serve/*",)

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        # 1. Lock-owning classes and their instance fields.
        lock_classes: dict[str, dict[str, Any]] = {}
        for facts, cls in project.iter_classes():
            if cls["has_lock"]:
                dotted = f"{facts['module']}.{cls['name']}"
                lock_classes[dotted] = cls
        if not lock_classes:
            return
        lock_fields: dict[str, set[str]] = {
            dotted: {f for f in cls["fields"] if not _is_lockish(f)}
            for dotted, cls in lock_classes.items()
        }

        # 2. Call-graph closure of code that runs with a lock held.
        locked_fns = self._locked_closure(project)

        # 3. Which receiver class does each access hit, if determinable?
        def receiver_class(facts: dict[str, Any], fn: dict[str, Any],
                           access: dict[str, Any]) -> str | None:
            rtype = project.resolve_type(access["rtype"], facts, fn)
            if rtype == "self":
                cls_name = fn.get("cls")
                if cls_name is None:
                    return None
                return f"{facts['module']}.{cls_name}"
            if rtype is not None:
                return rtype if rtype in lock_classes else None
            # Untyped receiver: match by field name alone — scoped to the
            # serve tree, where these field names are unambiguous.
            candidates = [dotted for dotted, fields in lock_fields.items()
                          if access["attr"] in fields]
            return candidates[0] if len(candidates) == 1 else None

        # 4. Guarded fields: stored under the lock (directly or from the
        #    locked closure) anywhere in the project.
        guarded: dict[tuple[str, str], tuple[str, int]] = {}
        matched: list[tuple[dict[str, Any], dict[str, Any],
                            dict[str, Any], str]] = []
        for facts, fn in project.iter_functions():
            in_closure = (facts["path"], fn["qual"]) in locked_fns
            for access in fn["accesses"]:
                dotted = receiver_class(facts, fn, access)
                if dotted is None or dotted not in lock_classes:
                    continue
                if access["attr"] not in lock_fields[dotted]:
                    continue
                matched.append((facts, fn, access, dotted))
                if access["store"] and (access["under_lock"] or in_closure):
                    guarded.setdefault(
                        (dotted, access["attr"]),
                        (facts["path"], access["line"]),
                    )

        # 5. Violations: guarded fields touched lock-free outside the
        #    closure (constructors excepted — the object is not shared yet).
        for facts, fn, access, dotted in matched:
            key = (dotted, access["attr"])
            if key not in guarded:
                continue
            if access["under_lock"]:
                continue
            if (facts["path"], fn["qual"]) in locked_fns:
                continue
            if fn["name"] in _INIT_METHODS:
                continue
            guard_path, guard_line = guarded[key]
            action = "written" if access["store"] else "read"
            cls_short = dotted.rsplit(".", 1)[-1]
            yield self.finding_at(
                facts["path"], access["line"], access["col"],
                f"{cls_short}.{access['attr']} is lock-guarded state "
                f"(mutated under the session lock at "
                f"{guard_path}:{guard_line}) but is {action} here without "
                f"holding the lock",
            )

    @staticmethod
    def _locked_closure(project: ProjectGraph) -> set[FnKey]:
        """Sync functions only reachable with a lock held, plus lock
        bodies themselves, via BFS over under-lock call sites."""
        queue: list[FnKey] = []
        seen: set[FnKey] = set()
        for facts, fn in project.iter_functions():
            for call in fn["calls"]:
                if not call["under_lock"]:
                    continue
                key = project.resolve_call(call["desc"], facts, fn)
                if key is not None and key not in seen:
                    seen.add(key)
                    queue.append(key)
        while queue:
            key = queue.pop()
            resolved = project.function_by_key(key)
            if resolved is None:
                continue
            facts, fn = resolved
            if fn["is_async"]:
                continue  # a coroutine re-entered elsewhere isn't covered
            for call in fn["calls"]:
                callee = project.resolve_call(call["desc"], facts, fn)
                if callee is not None and callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return seen


@register
class KernelRegistryConformance(ProjectRule):
    """RFP011 — ``KERNELS`` entries match the StageFn protocol, once each."""

    rule_id = "RFP011"
    title = "kernel registration violates the stage protocol"
    include = ("*repro/radar/*", "*repro/serve/*", "*repro/signal/*")

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        slots: dict[tuple[str, str], list[tuple[str, dict[str, Any]]]] = {}
        for facts in project.modules.values():
            for reg in facts["registrations"]:
                if reg["required"] != 1 and not (
                    reg["required"] == 0 and reg["has_varargs"]
                ):
                    yield self.finding_at(
                        facts["path"], reg["line"], reg["col"],
                        f"kernel {reg['func']}() takes {reg['required']} "
                        f"required parameters; StageFn kernels take exactly "
                        f"one (the ExecutionContext)",
                    )
                if reg["stage"] is not None and reg["backend"] is not None:
                    slots.setdefault(
                        (reg["stage"], reg["backend"]), []
                    ).append((facts["path"], reg))
        for (stage, backend), entries in sorted(slots.items()):
            if len(entries) < 2:
                continue
            entries.sort(key=lambda item: (item[0], item[1]["line"]))
            first_path, first = entries[0]
            for path, reg in entries[1:]:
                yield self.finding_at(
                    path, reg["line"], reg["col"],
                    f"duplicate kernel registration for stage "
                    f"{stage!r} backend {backend!r}; first registered at "
                    f"{first_path}:{first['line']} "
                    f"({first['func']}) — this raises at import time",
                )


@register
class CheckpointSchemaDiscipline(ProjectRule):
    """RFP012 — checkpoint payload keys are declared, versioned state."""

    rule_id = "RFP012"
    title = "checkpoint schema drift"
    include = ("*repro/radar/*", "*repro/serve/*")

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        declared_keys: set[str] = set()
        schemas_exist = False
        for facts, cls in project.iter_classes():
            info = cls.get("checkpoint")
            if info is None:
                continue
            if not (info["has_checkpoint"] and info["has_from_checkpoint"]):
                continue
            schemas_exist = True
            path = facts["path"]
            name = cls["name"]
            if not info["version_const"]:
                yield self.finding_at(
                    path, info["line"], 1,
                    f"{name} defines checkpoint()/from_checkpoint() without "
                    f"a CHECKPOINT_VERSION class constant; restores cannot "
                    f"reject incompatible blobs",
                )
            if info["fields_const"] is None:
                yield self.finding_at(
                    path, info["line"], 1,
                    f"{name} does not declare CHECKPOINT_FIELDS; declare "
                    f"the payload keys as a class constant so schema edits "
                    f"are visible diffs that force a version bump",
                )
            else:
                declared = set(info["fields_const"])
                declared_keys |= declared
                if info["write_keys"] is not None:
                    written = set(info["write_keys"])
                    if written != declared:
                        added = sorted(written - declared)
                        removed = sorted(declared - written)
                        detail = "; ".join(
                            part for part in (
                                f"writes undeclared {added}" if added else "",
                                f"never writes declared {removed}"
                                if removed else "",
                            ) if part
                        )
                        yield self.finding_at(
                            path, info["write_line"], 1,
                            f"{name}.checkpoint() payload disagrees with "
                            f"CHECKPOINT_FIELDS ({detail}); update the "
                            f"constant and bump CHECKPOINT_VERSION",
                        )
                stray = sorted(set(info["read_keys"]) - declared)
                if stray:
                    yield self.finding_at(
                        path, info["read_line"], 1,
                        f"{name}.from_checkpoint() reads keys {stray} that "
                        f"CHECKPOINT_FIELDS does not declare; update the "
                        f"constant and bump CHECKPOINT_VERSION",
                    )
            if not info["reads_version"]:
                yield self.finding_at(
                    path, info["read_line"], 1,
                    f"{name}.from_checkpoint() never checks "
                    f"CHECKPOINT_VERSION; incompatible blobs would restore "
                    f"silently corrupted state",
                )
        if not schemas_exist:
            return
        for facts in project.modules.values():
            for read in facts["checkpoint_reads"]:
                if read["key"] not in declared_keys:
                    yield self.finding_at(
                        facts["path"], read["line"], read["col"],
                        f"subscript reads checkpoint key {read['key']!r} "
                        f"that no CHECKPOINT_FIELDS declares; the key would "
                        f"silently vanish on a schema change",
                    )


@register
class DtypeFlow(ProjectRule):
    """RFP013 — float64 values must not flow into float32 sinks."""

    rule_id = "RFP013"
    title = "float64 value flows into a float32 sink"
    include = ("*repro/radar/*", "*repro/signal/*", "*repro/nn/*",
               "*repro/gan/*")

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        for facts, fn in project.iter_functions():
            for line, col, message in fn["dtype_violations"]:
                yield self.finding_at(facts["path"], line, col, message)
            for call in fn["calls"]:
                tags = call.get("tags")
                if not tags:
                    continue
                key = project.resolve_call(call["desc"], facts, fn)
                if key is None:
                    continue
                resolved = project.function_by_key(key)
                if resolved is None:
                    continue
                callee_facts, callee = resolved
                param_tags = callee["param_tags"]
                if not param_tags:
                    continue
                params: list[str] = callee["params"]
                for slot, tag in tags:
                    if tag not in ("float64", "complex"):
                        continue
                    if slot.isdigit():
                        index = int(slot)
                        name = params[index] if index < len(params) else None
                    else:
                        name = slot if slot in param_tags else None
                    if name is None:
                        continue
                    if param_tags.get(name) == "float32":
                        yield self.finding_at(
                            facts["path"], call["line"], call["col"],
                            f"{tag} value passed for parameter {name!r} of "
                            f"{callee['qual']}() "
                            f"({callee_facts['path']}:{callee['line']}), "
                            f"which pins float32; the narrowing is silent",
                        )


@register
class TransitiveBlockingCall(ProjectRule):
    """RFP014 — serve coroutines must not reach blocking sync helpers."""

    rule_id = "RFP014"
    title = "coroutine transitively calls blocking code"
    include = ("*repro/serve/*",)

    _MAX_DEPTH = 24

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        memo: dict[FnKey, list[str] | None] = {}
        for facts, fn in project.iter_functions():
            if not fn["is_async"]:
                continue
            for call in fn["calls"]:
                if call["awaited"]:
                    continue
                key = project.resolve_call(call["desc"], facts, fn)
                if key is None:
                    continue
                resolved = project.function_by_key(key)
                if resolved is None or resolved[1]["is_async"]:
                    continue
                chain = self._blocking_chain(project, key, memo, set(), 0)
                if chain is None:
                    continue
                witness = " -> ".join(chain)
                yield self.finding_at(
                    facts["path"], call["line"], call["col"],
                    f"async {fn['name']}() calls into blocking sync code: "
                    f"{witness}; run it via loop.run_in_executor(...) or "
                    f"suppress with a justification",
                )

    def _blocking_chain(
        self,
        project: ProjectGraph,
        key: FnKey,
        memo: dict[FnKey, list[str] | None],
        visiting: set[FnKey],
        depth: int,
    ) -> list[str] | None:
        if key in memo:
            return memo[key]
        if key in visiting or depth > self._MAX_DEPTH:
            return None
        resolved = project.function_by_key(key)
        if resolved is None:
            return None
        facts, fn = resolved
        if fn["is_async"]:
            return None
        label = f"{facts['module']}.{fn['qual']}"
        if fn["blocking_marker"]:
            memo[key] = [f"{label} (marked # rflint: blocking)"]
            return memo[key]
        if fn["blocking"]:
            first = fn["blocking"][0]
            memo[key] = [f"{label} ({first['target']} at line "
                         f"{first['line']})"]
            return memo[key]
        visiting.add(key)
        chain: list[str] | None = None
        for call in fn["calls"]:
            callee = project.resolve_call(call["desc"], facts, fn)
            if callee is None or callee == key:
                continue
            sub = self._blocking_chain(project, callee, memo, visiting,
                                       depth + 1)
            if sub is not None:
                chain = [label, *sub]
                break
        visiting.discard(key)
        memo[key] = chain
        return chain
