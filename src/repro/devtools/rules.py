"""The rflint rule set: repo-specific invariants, machine-checked.

Each rule guards a property the reproduction's scientific validity rests
on — explicit RNG threading (bit-for-bit determinism under any worker
count), no wall-clock/uuid nondeterminism in result paths, centralized
``RF_PROTECT_*`` dispatch, dtype discipline in the beat-signal hot path,
and hygiene classics (mutable defaults, swallowed exceptions, unseeded
test RNGs).

Rule ids are stable: ``RFP001``–``RFP009``, ``RFP015``, and ``RFP016``
here; the cross-module rules ``RFP010``–``RFP014`` live in
:mod:`repro.devtools.projectrules`.
Suppress a deliberate violation with a trailing ``# rflint:
disable=RFP00x`` comment (it covers the statement's whole line span).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.engine import Finding, Rule, SourceFile, TextEdit, register

__all__ = [
    "GlobalRandomState",
    "NondeterminismHazard",
    "EnvRegistryOnly",
    "DtypeDiscipline",
    "MutableDefaultArgument",
    "SwallowedException",
    "TestHygiene",
    "AsyncBlockingCall",
    "BackendDispatchOutsideRegistry",
    "CanonicalSerializationDiscipline",
    "SceneConstructionOutsideBuilders",
]


def build_aliases(tree: ast.Module) -> dict[str, str]:
    """Map names bound by imports to the dotted path they denote.

    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from numpy import
    random as npr`` -> ``{"npr": "numpy.random"}``. Relative imports are
    skipped (their absolute target is unknowable statically).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def resolve(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """The full dotted path ``node`` refers to, or ``None``.

    Only resolves chains rooted at an imported name, so local variables
    that happen to share a module's name never match.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


_NUMPY_GLOBAL_RNG = frozenset(
    "numpy.random." + name
    for name in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "random_integers", "uniform", "normal",
        "standard_normal", "exponential", "poisson", "choice", "shuffle",
        "permutation", "bytes", "get_state", "set_state", "RandomState",
    )
)

_STDLIB_GLOBAL_RNG = frozenset(
    "random." + name
    for name in (
        "seed", "random", "randint", "randrange", "uniform", "choice",
        "choices", "shuffle", "sample", "gauss", "normalvariate",
        "betavariate", "expovariate", "triangular", "vonmisesvariate",
        "getrandbits", "getstate", "setstate",
    )
)


@register
class GlobalRandomState(Rule):
    """RFP001 — no global RNG state; thread explicit ``np.random.Generator``s.

    PR 1's worker-count-independent seeding only holds if every random
    draw flows from an explicitly passed ``Generator``. Legacy
    ``np.random.*`` module functions and stdlib ``random.*`` functions
    mutate hidden process-global state that differs across worker layouts.
    """

    rule_id = "RFP001"
    title = "global RNG state"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                target = resolve(node.func, aliases)
                if target in _NUMPY_GLOBAL_RNG or target in _STDLIB_GLOBAL_RNG:
                    yield self.finding(
                        source, node,
                        f"{target}() uses hidden global RNG state; pass an "
                        f"explicit np.random.Generator instead",
                    )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                for alias in node.names:
                    target = f"{node.module}.{alias.name}"
                    if target in _NUMPY_GLOBAL_RNG or target in _STDLIB_GLOBAL_RNG:
                        yield self.finding(
                            source, node,
                            f"importing {target} binds a global-state RNG "
                            f"function; use np.random.default_rng(seed)",
                        )


_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)


@register
class NondeterminismHazard(Rule):
    """RFP002 — wall-clock, uuid, and unordered-set nondeterminism.

    A result that embeds ``time.time()``/``uuid4()`` or depends on set
    iteration order cannot reproduce bit-for-bit. Monotonic timers
    (``time.perf_counter``) are fine: they measure, they don't leak into
    scientific outputs.
    """

    rule_id = "RFP002"
    title = "nondeterminism hazard"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                target = resolve(node.func, aliases)
                if target in _WALL_CLOCK_CALLS:
                    yield self.finding(
                        source, node,
                        f"{target}() is nondeterministic; derive run "
                        f"identity from seeds/options, time with "
                        f"time.perf_counter()",
                    )
            elif isinstance(node, ast.For):
                iterator = node.iter
                is_set = isinstance(iterator, (ast.Set, ast.SetComp)) or (
                    isinstance(iterator, ast.Call)
                    and isinstance(iterator.func, ast.Name)
                    and iterator.func.id in ("set", "frozenset")
                )
                if is_set:
                    yield self.finding(
                        source, node.iter,
                        "iterating an unordered set; wrap in sorted(...) so "
                        "downstream results are order-stable",
                    )


@register
class EnvRegistryOnly(Rule):
    """RFP003 — ``RF_PROTECT_*`` env vars only via ``repro.config``.

    Direct ``os.environ`` reads scatter defaults and validation across the
    tree; the typed registry in :mod:`repro.config` is the single point of
    truth (and the only file this rule exempts).
    """

    rule_id = "RFP003"
    title = "env var read outside repro.config"
    exclude = ("*repro/config.py",)

    _PREFIX = "RF_PROTECT"

    def _literal_key(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.startswith(self._PREFIX):
                return node.value
        return None

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        for node in ast.walk(source.tree):
            key: str | None = None
            if isinstance(node, ast.Call) and node.args:
                target = resolve(node.func, aliases)
                if target in ("os.getenv", "os.environ.get"):
                    key = self._literal_key(node.args[0])
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                if resolve(node.value, aliases) == "os.environ":
                    key = self._literal_key(node.slice)
            if key is not None:
                yield self.finding(
                    source, node,
                    f"read of {key} bypasses the typed registry; use the "
                    f"repro.config accessor (e.g. get_synth_backend())",
                )


_NUMPY_CONSTRUCTORS = {
    "numpy.zeros": 2,  # positional index (1-based arg count) where dtype sits
    "numpy.ones": 2,
    "numpy.empty": 2,
    "numpy.full": 3,
}

_COMPLEX_DTYPE_NAMES = frozenset(
    {"complex", "complex64", "complex128", "cdouble", "csingle"}
)


def _is_complex_dtype(node: ast.AST, aliases: dict[str, str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "complex"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _COMPLEX_DTYPE_NAMES
    if isinstance(node, ast.Attribute):
        target = resolve(node, aliases)
        return target is not None and (
            target.rsplit(".", 1)[-1] in _COMPLEX_DTYPE_NAMES
        )
    return False


@register
class DtypeDiscipline(Rule):
    """RFP004 — explicit dtypes in the radar/signal hot path.

    The beat-signal pipeline mixes complex tones, real windows, and power
    maps; an array constructor without ``dtype=`` inherits numpy's default
    and silently flips precision when a refactor moves it. Also flags
    storing ``np.abs(...)``/``.real`` slices into a complex-dtype buffer —
    the classic complex-vs-magnitude confusion.
    """

    rule_id = "RFP004"
    title = "dtype discipline"
    include = ("*repro/radar/*", "*repro/signal/*", "*repro/nn/*",
               "*repro/gan/*")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        yield from self._check_constructors(source, aliases)
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_complex_downcasts(source, node, aliases)

    def _check_constructors(
        self, source: SourceFile, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve(node.func, aliases)
            dtype_position = _NUMPY_CONSTRUCTORS.get(target or "")
            if dtype_position is None:
                continue
            has_kwarg = any(kw.arg == "dtype" for kw in node.keywords)
            has_positional = len(node.args) >= dtype_position
            if not (has_kwarg or has_positional):
                yield self.finding(
                    source, node,
                    f"{target}() without an explicit dtype=; the hot path "
                    f"must pin complex128/float64 precision",
                    fixes=self._dtype_fix(source, node, target or "",
                                          aliases),
                )

    @staticmethod
    def _dtype_fix(source: SourceFile, node: ast.Call, target: str,
                   aliases: dict[str, str]) -> tuple[TextEdit, ...]:
        """Insert ``dtype=<np>.float64`` before the closing paren.

        Only for zero/one/empty constructors, whose numpy default *is*
        float64 — the edit makes the existing dtype explicit, it never
        changes it. ``np.full`` infers its dtype from the fill value, so
        no mechanical fix is safe there.
        """
        if target == "numpy.full":
            return ()
        numpy_alias = next(
            (name for name, dotted in aliases.items() if dotted == "numpy"),
            None,
        )
        if numpy_alias is None or node.end_lineno is None or (
            node.end_col_offset is None
        ):
            return ()
        closing_line = source.text.splitlines()[node.end_lineno - 1]
        before_paren = closing_line[: node.end_col_offset - 1].rstrip()
        joiner = " " if before_paren.endswith(",") else ", "
        return (
            TextEdit(
                line=node.end_lineno,
                col=node.end_col_offset - 1,
                end_line=node.end_lineno,
                end_col=node.end_col_offset - 1,
                text=f"{joiner}dtype={numpy_alias}.float64",
            ),
        )

    def _check_complex_downcasts(
        self,
        source: SourceFile,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        complex_buffers: set[str] = set()
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and resolve(value.func, aliases) in _NUMPY_CONSTRUCTORS
                ):
                    for keyword in value.keywords:
                        if keyword.arg == "dtype" and _is_complex_dtype(
                            keyword.value, aliases
                        ):
                            complex_buffers.add(node.targets[0].id)
        if not complex_buffers:
            return
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in complex_buffers
                ):
                    continue
                value = node.value
                magnitude = (
                    isinstance(value, ast.Call)
                    and resolve(value.func, aliases)
                    in ("numpy.abs", "numpy.absolute")
                )
                real_part = isinstance(value, ast.Attribute) and value.attr in (
                    "real",
                    "imag",
                )
                if magnitude or real_part:
                    yield self.finding(
                        source, node,
                        f"storing a real magnitude into complex buffer "
                        f"{target.value.id!r}; use a real-dtype array or "
                        f"keep the complex samples",
                    )


_MUTABLE_CALLS = frozenset(
    {
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.deque",
        "collections.Counter",
        "numpy.array",
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
    }
)


@register
class MutableDefaultArgument(Rule):
    """RFP005 — mutable default arguments.

    A ``def f(x=[])`` default is created once and shared by every call —
    state leaks across experiments and across pytest runs.
    """

    rule_id = "RFP005"
    title = "mutable default argument"

    def _is_mutable(self, node: ast.AST, aliases: dict[str, str]) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
                   ast.DictComp)
        ):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "list", "dict", "set", "bytearray",
            ):
                return True
            return resolve(node.func, aliases) in _MUTABLE_CALLS
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for name, default in self._defaults_with_names(node):
                if self._is_mutable(default, aliases):
                    yield self.finding(
                        source, default,
                        f"mutable default argument in {node.name}(); default "
                        f"to None and construct inside the function",
                        fixes=self._none_fix(source, node, name, default),
                    )

    @staticmethod
    def _defaults_with_names(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[tuple[str, ast.expr]]:
        pairs: list[tuple[str, ast.expr]] = []
        positional = node.args.posonlyargs + node.args.args
        tail = positional[len(positional) - len(node.args.defaults):]
        pairs.extend(
            (arg.arg, default)
            for arg, default in zip(tail, node.args.defaults)
        )
        pairs.extend(
            (arg.arg, default)
            for arg, default in zip(node.args.kwonlyargs,
                                    node.args.kw_defaults)
            if default is not None
        )
        return pairs

    @staticmethod
    def _none_fix(source: SourceFile, node: ast.FunctionDef |
                  ast.AsyncFunctionDef, name: str,
                  default: ast.expr) -> tuple[TextEdit, ...]:
        """Swap the default for ``None`` and guard-construct in the body.

        Skipped for one-line defs (no body line to insert into) and when
        the original default expression cannot be recovered verbatim.
        """
        if not node.body or default.end_lineno is None or (
            default.end_col_offset is None
        ):
            return ()
        first = node.body[0]
        insert_before = first
        if (len(node.body) > 1 and isinstance(first, ast.Expr)
                and isinstance(first.value, ast.Constant)
                and isinstance(first.value.value, str)):
            insert_before = node.body[1]  # keep the docstring on top
        if insert_before.lineno <= node.lineno:
            return ()  # one-line def; nowhere safe to insert
        original = ast.get_source_segment(source.text, default)
        if original is None or "\n" in original:
            return ()
        indent = " " * insert_before.col_offset
        guard = (f"{indent}if {name} is None:\n"
                 f"{indent}    {name} = {original}\n")
        return (
            TextEdit(
                line=default.lineno, col=default.col_offset,
                end_line=default.end_lineno, end_col=default.end_col_offset,
                text="None",
            ),
            TextEdit(
                line=insert_before.lineno, col=0,
                end_line=insert_before.lineno, end_col=0,
                text=guard,
            ),
        )


@register
class SwallowedException(Rule):
    """RFP006 — silently swallowed exceptions.

    A bare ``except:`` or a handler whose whole body is ``pass`` hides the
    very failures (shape mismatches, bad configs) the error hierarchy in
    :mod:`repro.errors` exists to surface.
    """

    rule_id = "RFP006"
    title = "silently swallowed exception"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    source, node,
                    "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "catch a ReproError subclass (or at least Exception)",
                )
                continue
            if all(self._is_noop(stmt) for stmt in node.body):
                yield self.finding(
                    source, node,
                    "exception handler silently discards the error; handle "
                    "it, log it, or let it propagate",
                )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and stmt.value.value is Ellipsis


@register
class TestHygiene(Rule):
    """RFP007 — deterministic, isolated tests.

    Tests must construct RNGs from fixed seeds (an unseeded
    ``default_rng()`` makes failures unreproducible) and must not assign
    into imported modules/objects outside a fixture or ``monkeypatch`` —
    such state leaks across the suite and breaks ``pytest -p xdist``-style
    parallelism.
    """

    rule_id = "RFP007"
    title = "test hygiene"
    include = ("*tests/*", "test_*.py", "*conftest.py")

    _UNSEEDED = ("numpy.random.default_rng", "random.Random",
                 "random.SystemRandom")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        imported_names = set(aliases)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                target = resolve(node.func, aliases)
                if target in self._UNSEEDED and not node.args:
                    yield self.finding(
                        source, node,
                        f"{target}() without a seed makes the test "
                        f"unreproducible; pass a fixed seed",
                    )
        yield from self._check_state_mutation(source, imported_names)

    def _check_state_mutation(
        self, source: SourceFile, imported_names: set[str]
    ) -> Iterator[Finding]:
        exempt_functions: set[ast.AST] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = {
                    arg.arg
                    for arg in (node.args.posonlyargs + node.args.args
                                + node.args.kwonlyargs)
                }
                fixture = any(
                    self._is_fixture_decorator(decorator)
                    for decorator in node.decorator_list
                )
                if "monkeypatch" in params or fixture:
                    exempt_functions.add(node)

        def walk_skipping_exempt(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if child in exempt_functions:
                    continue
                yield child
                yield from walk_skipping_exempt(child)

        for node in walk_skipping_exempt(source.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in imported_names
                ):
                    yield self.finding(
                        source, node,
                        f"assignment into imported {target.value.id!r} "
                        f"mutates shared module state; use monkeypatch or a "
                        f"fixture that restores it",
                    )

    @staticmethod
    def _is_fixture_decorator(decorator: ast.AST) -> bool:
        node = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(node, ast.Attribute) and node.attr == "fixture":
            return True
        return isinstance(node, ast.Name) and node.id == "fixture"


_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "io.open",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
    }
)

_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


@register
class AsyncBlockingCall(Rule):
    """RFP008 — no blocking calls inside ``async def`` in the serving stack.

    One ``time.sleep`` or synchronous file read inside a coroutine stalls
    the whole event loop: every queued request's latency absorbs it, the
    flusher misses its batch windows, and deadlines fire for work that was
    never behind. Blocking work belongs on the executor
    (``loop.run_in_executor``); coroutines must use ``asyncio.sleep`` and
    keep I/O out of the loop thread. Nested synchronous ``def``s are
    exempt — they are precisely what gets shipped to the executor.
    """

    rule_id = "RFP008"
    title = "blocking call in async function"
    include = ("*repro/serve/*",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(source, node, aliases)

    def _check_coroutine(
        self, source: SourceFile, coroutine: ast.AsyncFunctionDef,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        def walk_coroutine_body(node: ast.AST) -> Iterator[ast.AST]:
            # Nested defs are separate execution contexts: a sync def is
            # executor-bound (allowed to block), a nested async def is
            # visited as its own AsyncFunctionDef by check().
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                yield child
                yield from walk_coroutine_body(child)

        for node in walk_coroutine_body(coroutine):
            if not isinstance(node, ast.Call):
                continue
            target = resolve(node.func, aliases)
            if target in _BLOCKING_CALLS:
                hint = ("await asyncio.sleep(...)" if target == "time.sleep"
                        else "loop.run_in_executor(...)")
                yield self.finding(
                    source, node,
                    f"{target}() blocks the event loop inside async "
                    f"{coroutine.name}(); use {hint}",
                )
            elif isinstance(node.func, ast.Name) and node.func.id == "open":
                yield self.finding(
                    source, node,
                    f"open() blocks the event loop inside async "
                    f"{coroutine.name}(); do file I/O via "
                    f"loop.run_in_executor(...)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
            ):
                yield self.finding(
                    source, node,
                    f".{node.func.attr}() is synchronous file I/O inside "
                    f"async {coroutine.name}(); do it via "
                    f"loop.run_in_executor(...)",
                )


_BACKEND_ACCESSORS = frozenset(
    {
        "repro.config.get_synth_backend",
        "repro.config.get_pipeline_backend",
    }
)


@register
class BackendDispatchOutsideRegistry(Rule):
    """RFP009 — backend selection only through the kernel registry.

    ``get_synth_backend()``/``get_pipeline_backend()`` answer "which kernel
    should run?" — a question only the stage-graph kernel registry
    (:mod:`repro.radar.stages`) may ask. Every other call site branching on
    those accessors re-grows the scattered ``if backend == "naive"``
    conditionals the registry exists to eliminate, and per-call overrides
    (``sense(..., pipeline="naive")``) silently stop reaching it. Register
    a kernel per backend and resolve via ``KERNELS.resolve(stage)`` (or a
    ``StageBinding`` override) instead.
    """

    rule_id = "RFP009"
    title = "backend dispatch outside the kernel registry"
    include = ("*repro/radar/*", "*repro/serve/*", "*repro/signal/*",
               "*repro/experiments/*")
    exclude = ("*repro/radar/stages.py",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                target = resolve(node.func, aliases)
                if target in _BACKEND_ACCESSORS:
                    yield self.finding(
                        source, node,
                        f"{target}() selects a backend outside the kernel "
                        f"registry; resolve kernels via "
                        f"repro.radar.stages.KERNELS instead",
                    )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                for alias in node.names:
                    target = f"{node.module}.{alias.name}"
                    if target in _BACKEND_ACCESSORS:
                        yield self.finding(
                            source, node,
                            f"importing {target} outside the kernel registry "
                            f"invites scattered backend conditionals; "
                            f"resolve kernels via repro.radar.stages.KERNELS",
                        )


_JSON_SERIALIZERS = frozenset({"json.dumps", "json.dump"})


@register
class CanonicalSerializationDiscipline(Rule):
    """RFP015 — audit-package JSON must serialize with sorted keys.

    Every hash and signature in :mod:`repro.audit` is computed over JSON
    bytes, so two serializations of the same record must be the same
    bytes. Python dicts preserve insertion order, which means a
    ``json.dumps`` without ``sort_keys=True`` bakes call-site history
    into the hash: reorder two assignments and every chain link and
    signature silently changes. Inside ``repro/audit/`` any
    ``json.dumps``/``json.dump`` call must pass a literal
    ``sort_keys=True`` (or go through
    :func:`repro.audit.canonical.canonical_json`, which does).
    """

    rule_id = "RFP015"
    title = "json serialization without sort_keys in the audit package"
    include = ("*repro/audit/*",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve(node.func, aliases)
            if target not in _JSON_SERIALIZERS:
                continue
            sort_keys = next(
                (kw.value for kw in node.keywords
                 if kw.arg == "sort_keys"),
                None,
            )
            if (isinstance(sort_keys, ast.Constant)
                    and sort_keys.value is True):
                continue
            if sort_keys is None:
                detail = "without sort_keys"
            elif isinstance(sort_keys, ast.Constant):
                detail = f"with sort_keys={sort_keys.value!r}"
            else:
                detail = "with a non-literal sort_keys"
            yield self.finding(
                source, node,
                f"{target}() {detail} in the audit package makes "
                f"hashes depend on dict insertion order; pass "
                f"sort_keys=True or use "
                f"repro.audit.canonical.canonical_json()",
            )


_SCENE_CONSTRUCTORS = frozenset(
    {
        "repro.radar.Scene",
        "repro.radar.scene.Scene",
        "repro.scenarios.Environment",
        "repro.scenarios.builders.Environment",
        "repro.experiments.environments.Environment",
    }
)


@register
class SceneConstructionOutsideBuilders(Rule):
    """RFP016 — scenes and environments only through ``repro.scenarios``.

    A hand-built ``Scene(...)``/``Environment(...)`` in experiment or
    serve code bypasses the scenario registry: its geometry never gets a
    golden digest, ``--scenario`` can't reach it, and the serve traffic
    mix can't draw it. The scenario builders
    (:mod:`repro.scenarios.builders`) are the single place specs become
    scenes — the same registry-only discipline RFP009 applies to backend
    dispatch. Construct through ``repro.scenarios.build(...)`` (or the
    ``Environment.make_scene`` helpers it returns) instead.
    """

    rule_id = "RFP016"
    title = "scene construction outside the scenario builders"
    include = ("*repro/experiments/*", "*repro/serve/*")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = build_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve(node.func, aliases)
            if target in _SCENE_CONSTRUCTORS:
                cls = target.rsplit(".", 1)[-1]
                yield self.finding(
                    source, node,
                    f"direct {cls}(...) construction bypasses the scenario "
                    f"registry; resolve deployments via "
                    f"repro.scenarios.build(...) so every scene is a "
                    f"registered, digest-covered spec",
                )
