"""SARIF 2.1.0 emission for rflint findings.

GitHub's code-scanning upload (``github/codeql-action/upload-sarif``)
turns this into inline PR annotations — each finding becomes a ``result``
pointing at its physical location, and every registered rule ships a
``reportingDescriptor`` so the annotation links back to the rule's
documentation string.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.devtools.engine import Finding, all_rules

__all__ = ["to_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptors() -> list[dict[str, Any]]:
    descriptors: list[dict[str, Any]] = []
    for rule_id, rule_cls in all_rules().items():
        doc = (rule_cls.__doc__ or rule_cls.title).strip()
        descriptors.append({
            "id": rule_id,
            "name": rule_cls.__name__,
            "shortDescription": {"text": rule_cls.title},
            "fullDescription": {"text": doc.splitlines()[0]},
            "help": {"text": doc},
            "defaultConfiguration": {"level": "error"},
        })
    return descriptors


def to_sarif(findings: Sequence[Finding]) -> dict[str, Any]:
    """The findings as a single-run SARIF 2.1.0 log object."""
    rule_index = {rule_id: index
                  for index, rule_id in enumerate(all_rules())}
    results: list[dict[str, Any]] = []
    for finding in findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        }
        index = rule_index.get(finding.rule_id)
        if index is not None:
            result["ruleIndex"] = index
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "rflint",
                    "informationUri":
                        "https://github.com/rf-protect/rf-protect-repro",
                    "rules": _rule_descriptors(),
                },
            },
            "columnKind": "unicodeCodePoints",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
