"""Eavesdropper-side algorithms and the legitimate-sensor counterpart.

The threat model (Sec. 2) grants the eavesdropper mobility models, machine
learning, and statistical filtering. This package implements that
adversary: occupancy/count/breathing inference from radar output
(`inference`), a learned real-vs-fake trajectory classifier — the "smart
eavesdropper" RF-Protect's GAN must defeat (`classifier`) — and the
legitimate sensor that uses the tag's side channel to remove ghosts
(`legitimate`, Sec. 11.3).
"""

from repro.eavesdropper.classifier import TrajectoryRealnessClassifier
from repro.eavesdropper.inference import (
    count_occupants,
    estimate_breathing_period,
    is_occupied,
)
from repro.eavesdropper.legitimate import GhostMatch, filter_ghost_trajectories
from repro.eavesdropper.multi_radar import (
    CrossViewReport,
    classify_by_consistency,
    cross_view_distance,
)
from repro.eavesdropper.periodicity import filter_periodic_tracks, periodicity_score

__all__ = [
    "CrossViewReport",
    "GhostMatch",
    "classify_by_consistency",
    "cross_view_distance",
    "TrajectoryRealnessClassifier",
    "count_occupants",
    "estimate_breathing_period",
    "filter_ghost_trajectories",
    "filter_periodic_tracks",
    "is_occupied",
    "periodicity_score",
]
