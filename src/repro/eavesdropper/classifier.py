"""The "smart eavesdropper": a learned real-vs-fake trajectory classifier.

Sec. 6 argues that as long as the spoofed distribution differs from the
human distribution, "there exists a classifier which can identify real vs
fake trajectories with high probability". This module builds that
classifier — logistic regression over the same kinematic features the FID
uses — so the claim is testable: it should beat naive baselines (circles,
random walks) easily and hover near chance against the cGAN.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.fid import trajectory_features
from repro.trajectories.dataset import TrajectoryDataset
from repro.types import Trajectory

__all__ = ["TrajectoryRealnessClassifier"]


class TrajectoryRealnessClassifier:
    """Logistic regression on kinematic features: real (1) vs fake (0)."""

    def __init__(self, *, learning_rate: float = 0.1, epochs: int = 300,
                 l2_penalty: float = 1e-3, seed: int = 0) -> None:
        if learning_rate <= 0 or epochs < 1 or l2_penalty < 0:
            raise ConfigurationError("invalid classifier hyper-parameters")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2_penalty = l2_penalty
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._bias = 0.0
        self._feature_mean: np.ndarray | None = None
        self._feature_std: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def _features(self, trajectories: TrajectoryDataset | list[Trajectory]) -> np.ndarray:
        return np.vstack([trajectory_features(t) for t in trajectories])

    def fit(self, real: TrajectoryDataset,
            fake: TrajectoryDataset) -> "TrajectoryRealnessClassifier":
        """Train on labelled real and fake trajectory sets."""
        if len(real) < 2 or len(fake) < 2:
            raise ConfigurationError("need >= 2 trajectories per class")
        features = np.vstack([self._features(real), self._features(fake)])
        labels = np.concatenate([np.ones(len(real)), np.zeros(len(fake))])

        self._feature_mean = features.mean(axis=0)
        self._feature_std = features.std(axis=0) + 1e-9
        x = (features - self._feature_mean) / self._feature_std

        rng = np.random.default_rng(self.seed)
        weights = np.zeros(x.shape[1])
        bias = 0.0
        n = x.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            logits = x[order] @ weights + bias
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            error = probabilities - labels[order]
            grad_w = x[order].T @ error / n + self.l2_penalty * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self._weights = weights
        self._bias = bias
        return self

    def predict_probability(self,
                            trajectories: TrajectoryDataset | list[Trajectory]
                            ) -> np.ndarray:
        """P(real) per trajectory."""
        if not self.is_fitted:
            raise ConfigurationError("classifier has not been fitted")
        x = (self._features(trajectories) - self._feature_mean) / self._feature_std
        logits = x @ self._weights + self._bias
        return 1.0 / (1.0 + np.exp(-logits))

    def predict(self, trajectories: TrajectoryDataset | list[Trajectory]) -> np.ndarray:
        """Hard labels: 1 = judged real, 0 = judged fake."""
        return (self.predict_probability(trajectories) >= 0.5).astype(int)

    def accuracy(self, real: TrajectoryDataset,
                 fake: TrajectoryDataset) -> float:
        """Balanced accuracy on held-out real/fake sets.

        0.5 means the classifier cannot separate the distributions — the
        outcome RF-Protect aims for; values near 1.0 mean the fake source
        is trivially detectable.
        """
        real_hits = float(self.predict(real).mean())
        fake_hits = float(1.0 - self.predict(fake).mean())
        return 0.5 * (real_hits + fake_hits)
