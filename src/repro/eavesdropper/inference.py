"""Inference the eavesdropper runs on radar output.

Occupancy, occupant counting, and breathing-rate extraction — the private
quantities Sec. 1 lists as at risk. All operate on
:class:`~repro.radar.radar.SensingResult`, i.e. on what the radar actually
measured, so RF-Protect's phantoms corrupt them exactly as they would a
real deployment.
"""

from __future__ import annotations

from repro.errors import TrackingError
from repro.radar.radar import SensingResult
from repro.radar.tracker import TrackerConfig
from repro.signal.phase import dominant_period, unwrap_phase

__all__ = ["count_occupants", "estimate_breathing_period", "is_occupied"]


def is_occupied(result: SensingResult,
                tracker_config: TrackerConfig | None = None) -> bool:
    """Occupancy detection: did anything human-like move during the session?"""
    return len(result.tracks(tracker_config)) > 0


def count_occupants(result: SensingResult,
                    tracker_config: TrackerConfig | None = None, *,
                    min_overlap_fraction: float = 0.3) -> int:
    """Count simultaneously-present movers.

    Tracks whose time spans overlap are distinct people; fragmented tracks
    of the same person do not overlap, so the count is the maximum number
    of tracks alive at any time, requiring each counted track to cover at
    least ``min_overlap_fraction`` of the session.
    """
    if not 0 < min_overlap_fraction <= 1:
        raise TrackingError("min_overlap_fraction must be in (0, 1]")
    tracks = result.tracks(tracker_config)
    session_span = float(result.times[-1] - result.times[0])
    if session_span <= 0:
        raise TrackingError("session too short to count occupants")
    long_tracks = [
        t for t in tracks
        if (t.times[-1] - t.times[0]) >= min_overlap_fraction * session_span
    ]
    if not long_tracks:
        return 0
    # Sweep over frame times counting alive tracks.
    best = 0
    for t in result.times:
        alive = sum(1 for track in long_tracks
                    if track.times[0] <= t <= track.times[-1])
        best = max(best, alive)
    return best


def estimate_breathing_period(result: SensingResult, distance: float, *,
                              antenna: int = 0,
                              min_period: float = 2.0,
                              max_period: float = 8.0) -> float:
    """Breathing period (seconds) of a static subject at ``distance``.

    Reads the beat-tone phase at the subject's range bin across frames,
    unwraps it, and reports the dominant oscillation period — the classic
    FMCW vital-sign pipeline the paper's Sec. 11.4 spoofs against.
    """
    phase = unwrap_phase(result.phase_series(distance, antenna=antenna))
    return dominant_period(phase, result.frame_dt,
                           min_period=min_period, max_period=max_period)
