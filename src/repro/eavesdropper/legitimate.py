"""Legitimate sensing: removing disclosed ghosts from tracking output.

Sec. 11.3: the tag communicates its injected trajectories to a
user-authorized sensor, which can then subtract them and recover real
tracking. The sensed ghost matches the disclosed one only up to rotation,
translation, and time offset (unknown radar pose), so matching is done by
rigid alignment residual — the same machinery the evaluation metrics use.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TrackingError
from repro.metrics.alignment import aligned_trajectory
from repro.reflector.tag import GhostReport
from repro.types import Trajectory

__all__ = ["GhostMatch", "filter_ghost_trajectories"]


@dataclasses.dataclass(frozen=True)
class GhostMatch:
    """One sensed trajectory identified as a disclosed ghost."""

    trajectory_index: int
    ghost_id: int
    residual: float


def _alignment_residual(sensed: Trajectory, disclosed: Trajectory) -> float:
    aligned, reference = aligned_trajectory(sensed, disclosed)
    return float(np.mean(np.linalg.norm(aligned.points - reference.points, axis=1)))


def filter_ghost_trajectories(trajectories: list[Trajectory],
                              reports: list[GhostReport], *,
                              match_threshold: float = 0.5
                              ) -> tuple[list[Trajectory], list[GhostMatch]]:
    """Split sensed trajectories into real ones and disclosed ghosts.

    Each disclosed ghost claims the sensed trajectory it aligns to with the
    smallest mean residual, provided the residual is below
    ``match_threshold`` (meters). Greedy best-first assignment: ghosts and
    trajectories are matched in increasing residual order, one-to-one.

    Returns:
        ``(real_trajectories, matches)`` — everything not claimed by a
        ghost is considered real motion.
    """
    if match_threshold <= 0:
        raise TrackingError("match_threshold must be positive")
    if not trajectories:
        return [], []

    candidates: list[tuple[float, int, int]] = []
    for gi, report in enumerate(reports):
        for ti, sensed in enumerate(trajectories):
            if len(sensed) < 2 or len(report.trajectory) < 2:
                continue
            residual = _alignment_residual(sensed, report.trajectory)
            if residual <= match_threshold:
                candidates.append((residual, ti, gi))
    candidates.sort(key=lambda item: item[0])

    matches: list[GhostMatch] = []
    claimed_trajectories: set[int] = set()
    claimed_ghosts: set[int] = set()
    for residual, ti, gi in candidates:
        if ti in claimed_trajectories or gi in claimed_ghosts:
            continue
        matches.append(GhostMatch(trajectory_index=ti, ghost_id=gi,
                                  residual=residual))
        claimed_trajectories.add(ti)
        claimed_ghosts.add(gi)

    real = [t for i, t in enumerate(trajectories)
            if i not in claimed_trajectories]
    return real, matches
