"""Multi-radar coordination: the extended threat model of Sec. 13.

The paper's closing discussion notes that an eavesdropper deploying radars
on several walls can unmask a single RF-Protect reflector: a *real* human
is localized at the same world position by every radar, but a ghost's
apparent position is constructed per-radar (distance offset along the ray
from *that* radar through the tag's physical antenna), so two radars see
the same ghost at *different* world positions.

This module implements that attack: cross-view track matching and a
consistency classifier. The companion experiment
(`repro.experiments.ext_multiradar`) demonstrates both the attack
succeeding against one reflector and the paper's proposed mitigation
direction (per-radar reflectors).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TrackingError
from repro.types import Trajectory

__all__ = ["CrossViewReport", "cross_view_distance", "classify_by_consistency"]


def cross_view_distance(track_a: Trajectory, track_b: Trajectory) -> float:
    """Mean world-coordinate distance between two radars' views of a track.

    Both tracks are in shared room coordinates and cover the same session,
    so after resampling to a common length, index ``i`` of both corresponds
    to (approximately) the same instant. No alignment is applied — absolute
    consistency is exactly what distinguishes real motion from ghosts.
    """
    if len(track_a) < 2 or len(track_b) < 2:
        raise TrackingError("cross-view comparison needs >= 2 points per track")
    n = min(len(track_a), len(track_b))
    a = track_a.resampled(n).points
    b = track_b.resampled(n).points
    return float(np.mean(np.linalg.norm(a - b, axis=1)))


@dataclasses.dataclass(frozen=True)
class CrossViewReport:
    """Outcome of the dual-radar consistency attack.

    Attributes:
        consistent_pairs: (index_a, index_b, distance) of tracks the two
            radars agree on — judged real humans.
        inconsistent_a: radar-A track indices with no consistent partner —
            judged ghosts (or targets radar B missed).
        inconsistent_b: same for radar B.
    """

    consistent_pairs: list[tuple[int, int, float]]
    inconsistent_a: list[int]
    inconsistent_b: list[int]

    @property
    def num_judged_real(self) -> int:
        return len(self.consistent_pairs)

    @property
    def num_judged_fake(self) -> int:
        return len(self.inconsistent_a) + len(self.inconsistent_b)


def classify_by_consistency(tracks_a: list[Trajectory],
                            tracks_b: list[Trajectory], *,
                            threshold: float = 0.8) -> CrossViewReport:
    """Greedy cross-view matching: pairs below ``threshold`` are "real".

    Args:
        tracks_a: trajectories extracted by radar A (room coordinates).
        tracks_b: trajectories extracted by radar B (room coordinates).
        threshold: max mean world distance (meters) for two views to count
            as the same physical mover.
    """
    if threshold <= 0:
        raise TrackingError("threshold must be positive")
    candidates: list[tuple[float, int, int]] = []
    for ia, track_a in enumerate(tracks_a):
        for ib, track_b in enumerate(tracks_b):
            if len(track_a) < 2 or len(track_b) < 2:
                continue
            distance = cross_view_distance(track_a, track_b)
            if distance <= threshold:
                candidates.append((distance, ia, ib))
    candidates.sort(key=lambda item: item[0])

    pairs: list[tuple[int, int, float]] = []
    used_a: set[int] = set()
    used_b: set[int] = set()
    for distance, ia, ib in candidates:
        if ia in used_a or ib in used_b:
            continue
        pairs.append((ia, ib, distance))
        used_a.add(ia)
        used_b.add(ib)

    return CrossViewReport(
        consistent_pairs=pairs,
        inconsistent_a=[i for i in range(len(tracks_a)) if i not in used_a],
        inconsistent_b=[i for i in range(len(tracks_b)) if i not in used_b],
    )
