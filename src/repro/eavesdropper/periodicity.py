"""Periodic-motion rejection: the eavesdropper's anti-decoy filter.

The threat model (Sec. 2) grants the eavesdropper "algorithms to isolate
human trajectories from random motion (e.g. fans)", and Sec. 6 argues this
is exactly why a *fixed repeated trajectory* is a poor spoof: "a smart
eavesdropper can easily filter this motion out by observing that such
repetitive motion is not realistic for a human."

This module implements that eavesdropper capability — a periodicity score
from the position series' autocorrelation, and a track filter built on it.
Ceiling fans and looping decoys score high and are rejected; human walks
(and the cGAN's ghosts) score low and survive, which closes the loop on the
paper's motivation for generative trajectories.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrackingError
from repro.types import Trajectory

__all__ = ["filter_periodic_tracks", "periodicity_score"]


def periodicity_score(trajectory: Trajectory, *,
                      min_lag_fraction: float = 0.15,
                      recurrence_fraction: float = 0.12) -> float:
    """How repetitive a trajectory is, in [0, 1].

    The score is the best *recurrence rate* over time lags: for each lag of
    at least ``min_lag_fraction`` of the track, the fraction of positions
    that return to within ``recurrence_fraction`` of the motion range of
    where they were one lag earlier. A fan or a looping decoy revisits its
    own path every period (score near 1); a goal-directed walk never
    returns (score near 0). Short lags are excluded — all smooth motion is
    trivially self-similar over a step or two.
    """
    if len(trajectory) < 8:
        raise TrackingError("periodicity needs at least 8 points")
    if not 0 < min_lag_fraction < 1:
        raise TrackingError("min_lag_fraction must be in (0, 1)")
    if not 0 < recurrence_fraction < 1:
        raise TrackingError("recurrence_fraction must be in (0, 1)")
    points = trajectory.points
    n = points.shape[0]
    extent = trajectory.motion_range()
    if extent < 1e-9:
        return 1.0  # a static blob is maximally "repetitive"
    epsilon = recurrence_fraction * extent
    step_arc = trajectory.path_length() / (n - 1)

    min_lag = max(int(round(min_lag_fraction * n)), 2)
    best = 0.0
    for lag in range(min_lag, n - 3):
        # Recurrence only means something if the mover traveled away first:
        # without this gate, slow motion trivially "recurs" at short lags.
        if step_arc * lag < 3.0 * epsilon:
            continue
        gaps = np.linalg.norm(points[lag:] - points[:-lag], axis=1)
        best = max(best, float(np.mean(gaps < epsilon)))
    return best


def filter_periodic_tracks(trajectories: list[Trajectory], *,
                           threshold: float = 0.6
                           ) -> tuple[list[Trajectory], list[Trajectory]]:
    """Split tracks into (human-like, rejected-as-periodic).

    ``threshold`` is the recurrence score above which a track is deemed a
    fan / looping decoy. Human walks typically score below ~0.4 (they
    rarely retrace themselves within a 10 s window); ideal loops score 1.0
    and radar-tracked fans ~0.7. A person genuinely pacing back and forth
    does get filtered — the false-positive the eavesdropper accepts.
    """
    if not 0 < threshold <= 1:
        raise TrackingError("threshold must be in (0, 1]")
    kept: list[Trajectory] = []
    rejected: list[Trajectory] = []
    for trajectory in trajectories:
        if len(trajectory) < 8:
            kept.append(trajectory)  # too short to judge; keep
            continue
        if periodicity_score(trajectory) >= threshold:
            rejected.append(trajectory)
        else:
            kept.append(trajectory)
    return kept, rejected
