"""Exception hierarchy for the RF-Protect reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class. Specific subclasses mark which subsystem rejected the
input, which keeps error handling explicit at call sites.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration object holds physically or logically invalid values."""


class SignalProcessingError(ReproError):
    """A DSP routine received input it cannot process (shape, emptiness...)."""


class SceneError(ReproError):
    """A radar scene is inconsistent (entity outside room, bad geometry...)."""


class ReflectorError(ReproError):
    """The RF-Protect tag cannot realize the requested spoofing schedule."""


class TrackingError(ReproError):
    """The tracking pipeline failed to produce a usable trajectory."""


class DatasetError(ReproError):
    """A trajectory dataset is malformed or empty."""


class GradientError(ReproError):
    """An autograd operation was used in an unsupported way."""


class TrainingError(ReproError):
    """GAN training was configured inconsistently or diverged."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown id or bad options."""


class ScenarioError(ReproError):
    """A scenario spec is invalid or names an unregistered scenario."""


class ServeError(ReproError):
    """Base class for failures raised by the sensing service (`repro.serve`)."""


class ServiceOverloadedError(ServeError):
    """Admission control rejected a request: the service queue is full."""


class DeadlineExceededError(ServeError):
    """A request's deadline expired before its batch started executing."""


class ServiceClosedError(ServeError):
    """A request was submitted to a service that is not running."""


class SessionNotFoundError(ServeError):
    """A tracked request named a session the store does not hold."""


class AuditError(ReproError):
    """Base class for failures raised by the audit subsystem (`repro.audit`)."""


class LedgerError(AuditError):
    """An artifact ledger is malformed, unreadable, or fails chain checks."""


class SignatureError(AuditError):
    """A key or signature is malformed, or a signature check failed."""
