"""Experiment harness: one module per paper figure/table, plus a registry.

Every module exposes a ``run(...)`` function returning a result object with
a ``format_table()`` method that prints the same rows/series the paper
reports. ``repro.experiments.runner`` maps experiment ids ("fig7" ...
"table1") to those functions; the ``rfprotect`` CLI and the benchmark suite
both go through it.
"""

from repro.experiments.environments import (
    Environment,
    home_environment,
    office_environment,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "Environment",
    "home_environment",
    "office_environment",
    "run_experiment",
]
