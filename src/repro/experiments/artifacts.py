"""Shared, memoized experiment artifacts: the motion dataset and trained GAN.

Several experiments (Figs. 10-13, Table 1) need human-motion data and a
trained trajectory generator. Training is deterministic given a seed, so
artifacts are memoized per (quality, seed) within a process — the figure
modules and the benchmark suite all share one trained model instead of
retraining per experiment.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ExperimentError
from repro.gan import GanConfig, GanTrainer, TrajectorySampler
from repro.reflector import ReflectorController, SpoofSchedule
from repro.trajectories import HumanMotionSimulator, TrajectoryDataset

if TYPE_CHECKING:
    from repro.experiments.environments import Environment

__all__ = ["GanArtifacts", "motion_dataset", "place_ghost_in_room", "trained_gan"]

_QUALITY_PRESETS = {
    # quality: (dataset size, GanConfig overrides)
    "tiny": (120, dict(hidden_size=16, feature_dim=8, noise_dim=8,
                       batch_size=32, epochs=2, dropout_probability=0.1)),
    "fast": (300, dict(hidden_size=32, feature_dim=16, noise_dim=16,
                       batch_size=64, epochs=16, dropout_probability=0.15)),
    "full": (2000, dict(hidden_size=64, feature_dim=32, noise_dim=32,
                        batch_size=128, epochs=30, dropout_probability=0.3)),
}

_DATASET_CACHE: dict[tuple[int, int], TrajectoryDataset] = {}
_GAN_CACHE: dict[tuple[str, int], "GanArtifacts"] = {}


def place_ghost_in_room(environment: Environment,
                        controller: ReflectorController,
                        sampler: TrajectorySampler,
                        rng: np.random.Generator, *,
                        max_attempts: int = 10) -> SpoofSchedule:
    """Sample a ghost shape and place it fully inside the room.

    Redraws when the placed trajectory spills outside the footprint (large
    GAN shapes near a shallow wall can); if every draw spills, the last
    shape is shrunk until it fits. Returns the compiled schedule.
    """
    shape = None
    for _ in range(max_attempts):
        shape = sampler.sample(1, rng=rng)[0]
        placed = controller.place_trajectory(shape)
        if environment.room.contains_all(placed.points):
            return controller.plan_trajectory(placed)
    for _ in range(8):
        shape = shape.scaled(0.7)
        placed = controller.place_trajectory(shape)
        if environment.room.contains_all(placed.points):
            return controller.plan_trajectory(placed)
    raise ExperimentError(
        f"could not place a ghost inside the {environment.name} room"
    )


@dataclasses.dataclass
class GanArtifacts:
    """A trained generator with everything needed to use it."""

    trainer: GanTrainer
    sampler: TrajectorySampler
    dataset: TrajectoryDataset
    quality: str
    seed: int


def motion_dataset(num_traces: int, seed: int = 0) -> TrajectoryDataset:
    """Memoized simulated human-motion dataset."""
    key = (num_traces, seed)
    if key not in _DATASET_CACHE:
        simulator = HumanMotionSimulator(rng=np.random.default_rng(seed))
        _DATASET_CACHE[key] = simulator.build_dataset(num_traces)
    return _DATASET_CACHE[key]


def trained_gan(quality: str = "fast", seed: int = 0) -> GanArtifacts:
    """Memoized trained cGAN at the requested quality preset.

    Qualities: ``tiny`` (seconds — unit tests), ``fast`` (tens of seconds —
    benches), ``full`` (minutes — closest to the paper's training budget).
    """
    if quality not in _QUALITY_PRESETS:
        known = ", ".join(sorted(_QUALITY_PRESETS))
        raise ExperimentError(f"unknown GAN quality {quality!r}; choose from {known}")
    key = (quality, seed)
    if key not in _GAN_CACHE:
        num_traces, overrides = _QUALITY_PRESETS[quality]
        dataset = motion_dataset(num_traces, seed)
        config = GanConfig(seed=seed, **overrides)
        trainer = GanTrainer(dataset, config)
        trainer.train()
        sampler = TrajectorySampler(trainer.generator,
                                    step_scale=trainer.step_scale,
                                    dt=dataset.dt)
        _GAN_CACHE[key] = GanArtifacts(trainer=trainer, sampler=sampler,
                                       dataset=dataset, quality=quality,
                                       seed=seed)
    return _GAN_CACHE[key]
