"""The two evaluation environments of Fig. 8, resolved from the registry.

Office: 10.0 x 6.6 m with metallic cabinets — heavier dynamic multipath,
which is what the paper blames for its larger errors (Sec. 11.1). Home:
15.24 x 7.62 m with milder clutter. In both, the eavesdropper radar sits
at the bottom wall and the RF-Protect panel is deployed ~1.2 m in front of
it on the same vulnerable wall, per Sec. 9.3.

Both deployments are registered :class:`~repro.scenarios.ScenarioSpec`
entries (``office`` / ``home`` in :mod:`repro.scenarios.catalog`); this
module is a compatibility shim that resolves them through the scenario
registry. :class:`Environment` itself lives in
:mod:`repro.scenarios.builders` and is re-exported here unchanged.
"""

from __future__ import annotations

from repro.scenarios import Environment, build

__all__ = ["Environment", "home_environment", "office_environment"]


def office_environment() -> Environment:
    """The 10.0 x 6.6 m office of Fig. 8b (metallic cabinets, cubicles)."""
    return build("office").environment


def home_environment() -> Environment:
    """The 15.24 x 7.62 m home of Fig. 8c (soft furnishing, lighter echo)."""
    return build("home").environment
