"""The two evaluation environments of Fig. 8.

Office: 10.0 x 6.6 m with metallic cabinets — heavier dynamic multipath,
which is what the paper blames for its larger errors (Sec. 11.1). Home:
15.24 x 7.62 m with milder clutter. In both, the eavesdropper radar sits
at the bottom wall and the RF-Protect panel is deployed ~1.2 m in front of
it on the same vulnerable wall, per Sec. 9.3.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro import constants
from repro.errors import ConfigurationError
from repro.geometry import Rectangle
from repro.radar import ChannelModel, FmcwRadar, RadarConfig, Scene
from repro.radar.channel import MultipathSpec
from repro.reflector import ReflectorController, ReflectorPanel, RfProtectTag

__all__ = ["Environment", "home_environment", "office_environment"]


@dataclasses.dataclass(frozen=True)
class Environment:
    """One evaluation deployment: room, radar pose, panel pose, clutter."""

    name: str
    room: Rectangle
    radar_config: RadarConfig
    panel: ReflectorPanel
    multipath: MultipathSpec
    static_clutter: tuple[tuple[float, float, float], ...]
    """Static reflectors as ``(x, y, rcs)`` triples."""

    def make_channel(self) -> ChannelModel:
        """Channel with this environment's multipath statistics."""
        return ChannelModel(multipath=self.multipath)

    def make_scene(self, *, include_clutter: bool = True) -> Scene:
        """Fresh scene with the environment's static clutter."""
        scene = Scene(self.room, channel=self.make_channel())
        if include_clutter:
            for x, y, rcs in self.static_clutter:
                scene.add_static((x, y), rcs=rcs)
        return scene

    def make_radar(self) -> FmcwRadar:
        """The eavesdropper (or legitimate) radar for this deployment."""
        return FmcwRadar(self.radar_config)

    def make_tag(self, **tag_kwargs: Any) -> RfProtectTag:
        """A fresh RF-Protect tag on this environment's panel."""
        return RfProtectTag(self.panel, **tag_kwargs)

    def make_controller(self, *, frame_coherent: bool = False,
                        **controller_kwargs: Any) -> ReflectorController:
        """Controller calibrated for this environment's chirp.

        The controller uses the panel's *nominal* radar assumption, not the
        true radar position — the tag never learns the latter (Sec. 5.2).
        """
        frame_rate = (self.radar_config.frame_rate if frame_coherent else None)
        return ReflectorController(
            self.panel, self.radar_config.chirp,
            frame_coherent_rate=frame_rate,
            **controller_kwargs,
        )

    @property
    def radar_position(self) -> np.ndarray:
        return np.asarray(self.radar_config.position, dtype=float)


def _build_environment(name: str, size: tuple[float, float],
                       multipath: MultipathSpec,
                       clutter: tuple[tuple[float, float, float], ...]
                       ) -> Environment:
    width, depth = size
    if width <= 0 or depth <= 0:
        raise ConfigurationError("environment size must be positive")
    room = Rectangle.from_size(width, depth)
    radar_position = (width / 2.0, 0.1)
    radar_config = RadarConfig(position=radar_position, axis_angle=0.0,
                               facing_angle=np.pi / 2.0)
    panel = ReflectorPanel(
        (width / 2.0, 0.1 + constants.RADAR_TO_REFLECTOR_DISTANCE_M),
        wall_angle=0.0, normal_angle=np.pi / 2.0,
    )
    return Environment(name=name, room=room, radar_config=radar_config,
                       panel=panel, multipath=multipath,
                       static_clutter=clutter)


def office_environment() -> Environment:
    """The 10.0 x 6.6 m office of Fig. 8b (metallic cabinets, cubicles)."""
    multipath = MultipathSpec(mean_paths=2.2, excess_distance_mean=0.6,
                              excess_distance_std=0.4,
                              relative_amplitude=0.38, angle_spread=0.22)
    clutter = (
        (1.0, 5.8, 6.0),   # metal cabinet row
        (9.0, 5.8, 6.0),   # metal cabinet row
        (2.5, 3.0, 2.0),   # desk cluster
        (7.5, 3.0, 2.0),   # desk cluster
        (5.0, 6.0, 3.0),   # whiteboard wall
    )
    return _build_environment("office", constants.OFFICE_SIZE_M,
                              multipath, clutter)


def home_environment() -> Environment:
    """The 15.24 x 7.62 m home of Fig. 8c (soft furnishing, lighter echo)."""
    multipath = MultipathSpec(mean_paths=0.6, excess_distance_mean=0.5,
                              excess_distance_std=0.3,
                              relative_amplitude=0.15, angle_spread=0.10)
    clutter = (
        (3.0, 6.5, 3.0),    # refrigerator
        (12.0, 6.8, 2.0),   # TV wall
        (6.0, 4.0, 1.0),    # sofa
        (10.0, 2.5, 1.0),   # dining table
    )
    return _build_environment("home", constants.HOME_SIZE_M,
                              multipath, clutter)
