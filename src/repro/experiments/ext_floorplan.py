"""Extension experiment: floor-plan-aware ghost trajectories (Sec. 8).

The paper's acknowledged limitation: cGAN ghosts may "walk through walls"
if the eavesdropper knows the floor plan, and the proposed fix is to
constrain generation with floor-plan knowledge. This experiment quantifies
both halves:

1. how often unconstrained GAN ghosts cross walls of a two-room apartment
   floor plan (the giveaway rate);
2. that the :class:`~repro.trajectories.floorplan.FloorPlanConstraint`
   eliminates the crossings while preserving the trajectory shapes (step
   statistics barely change).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.artifacts import trained_gan
from repro.geometry import Rectangle
from repro.trajectories import FloorPlan, FloorPlanConstraint, Wall, count_wall_crossings
from repro.types import Trajectory

__all__ = ["ExtFloorplanResult", "apartment_floor_plan", "run"]


def apartment_floor_plan() -> FloorPlan:
    """A 10 x 6.6 m two-room apartment: one dividing wall with a doorway."""
    footprint = Rectangle.from_size(10.0, 6.6)
    return FloorPlan(footprint, walls=[
        Wall((5.0, 0.0), (5.0, 2.6)),   # dividing wall, lower section
        Wall((5.0, 3.8), (5.0, 6.6)),   # dividing wall, upper section
        # (the 1.2 m gap between them is the doorway)
        Wall((7.5, 3.3), (10.0, 3.3)),  # bedroom partition
    ])


@dataclasses.dataclass(frozen=True)
class ExtFloorplanResult:
    """Wall-crossing statistics before and after constraining."""

    num_ghosts: int
    unconstrained_crossing_rate: float
    unconstrained_crossings_total: int
    constrained_crossings_total: int
    num_rejected: int
    shape_change_fraction: float

    def format_table(self) -> str:
        return "\n".join([
            "Extension — floor-plan-aware ghosts (Sec. 8)",
            f"ghosts sampled: {self.num_ghosts}",
            f"unconstrained: {self.unconstrained_crossing_rate:.0%} of "
            f"ghosts cross a wall "
            f"({self.unconstrained_crossings_total} crossing steps total)",
            f"constrained:   {self.constrained_crossings_total} crossing "
            f"steps, {self.num_rejected} unrepairable ghost(s) dropped",
            f"mean step-length change on repaired ghosts: "
            f"{self.shape_change_fraction:.1%}",
        ])


def run(*, num_ghosts: int = 40, gan_quality: str = "fast",
        seed: int = 0) -> ExtFloorplanResult:
    """Sample ghosts, place them in the apartment, constrain, and count."""
    if num_ghosts < 1:
        raise ExperimentError("num_ghosts must be >= 1")
    rng = np.random.default_rng(seed)
    artifacts = trained_gan(gan_quality, seed)
    plan = apartment_floor_plan()
    constraint = FloorPlanConstraint(plan, margin=0.1)

    # Place each ghost at a random interior anchor (as a deployment with
    # several reflectors could) so the dividing wall is actually in play.
    placed: list[Trajectory] = []
    while len(placed) < num_ghosts:
        shape = artifacts.sampler.sample(1, rng=rng)[0]
        anchor = plan.footprint.sample_interior(rng, margin=1.0)
        candidate = shape.translated(anchor)
        if plan.footprint.contains_all(candidate.points, margin=0.05):
            placed.append(candidate)

    crossings = [count_wall_crossings(t, plan) for t in placed]
    crossing_rate = float(np.mean([c > 0 for c in crossings]))

    # Repair per trajectory (keeping the before/after pairing) so shape
    # preservation can be measured on exactly the trajectories that were
    # actually modified.
    constrained: list[Trajectory] = []
    rejected = 0
    changes: list[float] = []
    for before in placed:
        if plan.is_admissible(before, margin=constraint.margin):
            constrained.append(before)
            continue
        after = constraint.repair(before)
        if after is None:
            rejected += 1
            continue
        constrained.append(after)
        before_mean = max(float(before.step_lengths().mean()), 1e-9)
        after_mean = float(after.step_lengths().mean())
        changes.append(abs(after_mean - before_mean) / before_mean)
    constrained_crossings = sum(count_wall_crossings(t, plan)
                                for t in constrained)
    shape_change = float(np.mean(changes)) if changes else 0.0

    return ExtFloorplanResult(
        num_ghosts=num_ghosts,
        unconstrained_crossing_rate=crossing_rate,
        unconstrained_crossings_total=int(np.sum(crossings)),
        constrained_crossings_total=int(constrained_crossings),
        num_rejected=rejected,
        shape_change_fraction=shape_change,
    )
