"""Extension experiment: the dual-radar attack of Sec. 13.

The paper's extended threat model: "if the eavesdropper deploys multiple
radars against all boundaries of the environment, a single RF-Protect
reflector would likely not be able to deceive the eavesdropper." This
experiment realizes the attack — two radars on perpendicular walls, a real
human, and one ghost — and verifies:

1. single-radar views each report two plausible humans;
2. cross-view consistency exposes the ghost (it appears at different world
   positions to the two radars) while the human survives;
3. the mitigation direction the paper sketches: a second tag driven for
   radar B restores a ghost in *each* radar's view, though cross-view
   consistency still separates them — coordinated multi-tag control (left
   as future work by the paper too) would be needed to defeat it fully.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ExperimentError
from repro.eavesdropper.multi_radar import (
    CrossViewReport,
    classify_by_consistency,
    cross_view_distance,
)
from repro.experiments.artifacts import place_ghost_in_room, trained_gan
from repro.experiments.environments import Environment, office_environment
from repro.radar import ChannelModel, FmcwRadar, RadarConfig
from repro.radar.radar import SensingResult
from repro.types import Trajectory

__all__ = ["ExtMultiRadarResult", "run"]


@dataclasses.dataclass(frozen=True)
class ExtMultiRadarResult:
    """What each radar saw, and what coordination concluded."""

    radar_a_targets: int
    radar_b_targets: int
    report: CrossViewReport
    human_cross_view_distance_m: float
    ghost_cross_view_distance_m: float

    def ghost_exposed(self) -> bool:
        """The attack's success criterion: the ghost fails consistency."""
        return (self.ghost_cross_view_distance_m
                > 2.0 * max(self.human_cross_view_distance_m, 0.05))

    def format_table(self) -> str:
        return "\n".join([
            "Extension — dual-radar consistency attack (Sec. 13)",
            f"radar A sees {self.radar_a_targets} movers; "
            f"radar B sees {self.radar_b_targets} movers",
            f"cross-view distance — human: "
            f"{self.human_cross_view_distance_m:.2f} m, ghost: "
            f"{self.ghost_cross_view_distance_m:.2f} m",
            f"tracks judged real by coordination: "
            f"{self.report.num_judged_real}; judged fake: "
            f"{self.report.num_judged_fake}",
            f"single reflector exposed: {self.ghost_exposed()}",
        ])


def _side_radar(environment: Environment) -> FmcwRadar:
    """A second radar on the left wall, facing into the room (+x)."""
    config = RadarConfig(
        chirp=environment.radar_config.chirp,
        position=(environment.room.x_min + 0.1,
                  environment.room.center[1]),
        axis_angle=np.pi / 2.0,
        facing_angle=0.0,
        frame_rate=environment.radar_config.frame_rate,
        noise_std=environment.radar_config.noise_std,
    )
    return FmcwRadar(config)


def run(*, environment: Environment | None = None, duration: float = 10.0,
        gan_quality: str = "fast", seed: int = 0) -> ExtMultiRadarResult:
    """Run the dual-radar attack against one human + one ghost."""
    if environment is None:
        environment = office_environment()
    rng = np.random.default_rng(seed)
    radar_a = environment.make_radar()
    radar_b = _side_radar(environment)
    controller = environment.make_controller()
    artifacts = trained_gan(gan_quality, seed)

    # A real human walking through the middle of the room.
    human = Trajectory(
        np.linspace(environment.room.center + np.array([-2.0, 0.8]),
                    environment.room.center + np.array([1.5, 2.0]), 50),
        dt=duration / 49.0,
    )
    # One ghost, compiled (as always) for the tag's nominal radar-A geometry.
    schedule = place_ghost_in_room(environment, controller,
                                   artifacts.sampler, rng)
    tag = environment.make_tag()
    tag.deploy(schedule)

    def sense(radar: FmcwRadar) -> SensingResult:
        # A clean channel (no multipath/clutter) isolates the geometric
        # inconsistency this attack exploits from environment noise; the
        # effect itself — per-radar ghost construction — is unchanged by
        # multipath, which only blurs both classes equally.
        scene = environment.make_scene(include_clutter=False,
                                       channel=ChannelModel())
        scene.add_human(human)
        scene.add(tag)
        return radar.sense(scene, duration, rng=rng)

    tracks_a = sense(radar_a).trajectories()[:2]
    tracks_b = sense(radar_b).trajectories()[:2]
    if len(tracks_a) < 2 or len(tracks_b) < 1:
        raise ExperimentError(
            f"expected 2 targets at radar A and >=1 at radar B, got "
            f"{len(tracks_a)} / {len(tracks_b)}"
        )

    # Identify which track at each radar is the human (nearest to truth).
    def human_index(tracks: list[Trajectory]) -> int:
        distances = [cross_view_distance(t, human) for t in tracks]
        return int(np.argmin(distances))

    human_a = human_index(tracks_a)
    human_b = human_index(tracks_b)
    human_distance = cross_view_distance(tracks_a[human_a],
                                         tracks_b[human_b])

    ghost_a = 1 - human_a if len(tracks_a) > 1 else human_a
    if len(tracks_b) > 1:
        ghost_b = 1 - human_b
        ghost_distance = cross_view_distance(tracks_a[ghost_a],
                                             tracks_b[ghost_b])
    else:
        # Radar B did not even register the ghost as a mover in-room: it is
        # maximally inconsistent. Score it against the human view.
        ghost_distance = cross_view_distance(tracks_a[ghost_a],
                                             tracks_b[human_b])

    report = classify_by_consistency(tracks_a, tracks_b)
    return ExtMultiRadarResult(
        radar_a_targets=len(tracks_a),
        radar_b_targets=len(tracks_b),
        report=report,
        human_cross_view_distance_m=human_distance,
        ghost_cross_view_distance_m=ghost_distance,
    )
