"""Extension experiment: pulsed radars and delay-line spoofing (Sec. 13).

Three claims from the paper's "New Sensor Types" discussion, demonstrated
end-to-end:

1. a pulsed radar is an equally capable tracker (localization sanity);
2. the FMCW tag's kHz switching does NOT move a pulsed radar's echoes —
   distance spoofing needs "other mechanisms";
3. the proposed mechanism — switched delay lines — spoofs ghosts against
   the pulsed radar, with accuracy limited by the line spacing.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.environments import Environment, office_environment
from repro.radar.pulsed import PulsedRadar, PulsedRadarConfig
from repro.reflector.delay_tag import DelayLineTag
from repro.types import Trajectory

__all__ = ["ExtPulsedResult", "run"]


@dataclasses.dataclass(frozen=True)
class ExtPulsedResult:
    """What the pulsed radar sees under each defense variant."""

    human_tracking_error_m: float
    fmcw_tag_tracks: int
    delay_tag_tracks: int
    delay_tag_replay_error_m: float
    line_spacing_m: float

    def format_table(self) -> str:
        return "\n".join([
            "Extension — pulsed radar & delay-line spoofing (Sec. 13)",
            f"pulsed radar tracks a human with "
            f"{self.human_tracking_error_m:.3f} m median error",
            f"FMCW switching tag: {self.fmcw_tag_tracks} moving ghost(s) "
            f"(expected 0 — kHz switching only flickers the echo at the "
            f"tag's physical position)",
            f"delay-line tag: {self.delay_tag_tracks} moving ghost(s); "
            f"replay error {self.delay_tag_replay_error_m:.3f} m "
            f"(line spacing {self.line_spacing_m:.2f} m)",
        ])


def run(*, environment: Environment | None = None, duration: float = 8.0,
        seed: int = 0) -> ExtPulsedResult:
    """Run all three pulsed-radar demonstrations."""
    if environment is None:
        environment = office_environment()
    rng = np.random.default_rng(seed)
    radar = PulsedRadar(PulsedRadarConfig(
        position=environment.radar_config.position,
        axis_angle=environment.radar_config.axis_angle,
        facing_angle=environment.radar_config.facing_angle,
    ))

    # 1) Human localization sanity.
    walk = Trajectory(
        np.linspace(environment.room.center + np.array([-1.5, -1.0]),
                    environment.room.center + np.array([1.5, 1.5]), 50),
        dt=duration / 49.0,
    )
    scene = environment.make_scene(include_clutter=False)
    scene.add_human(walk)
    human_result = radar.sense(scene, duration, rng=rng)
    tracks = human_result.tracks()
    if not tracks:
        raise ExperimentError("pulsed radar failed to track the human")
    errors = [np.linalg.norm(p - walk.position_at(t))
              for t, p in zip(tracks[0].times, tracks[0].raw_positions)]
    human_error = float(np.median(errors))

    ghost_shape = Trajectory(
        np.linspace(environment.panel.center + np.array([-1.0, 2.5]),
                    environment.panel.center + np.array([1.0, 4.0]), 40),
        dt=duration / 39.0,
    )

    def ghost_like_tracks(trajectories: list[Trajectory],
                          intended: Trajectory) -> list[tuple[Trajectory, float]]:
        """Tracks that reproduce the intended ghost.

        The FMCW tag's on/off gating still flickers the echo at the tag's
        physical position (a short, wandering blip along the panel), so
        mere track existence is not the test: a match must follow the
        commanded path in *absolute* coordinates (we, the experimenters,
        know exactly where the ghost was commanded to walk) with a
        comparable amount of motion.
        """
        matches = []
        for trajectory in trajectories:
            if len(trajectory) < 5:
                continue
            path_ratio = trajectory.path_length() / max(
                intended.path_length(), 1e-9
            )
            if not 0.5 <= path_ratio <= 2.0:
                continue  # wrong amount of motion — not the commanded ghost
            n = min(len(trajectory), len(intended))
            error = float(np.median(np.linalg.norm(
                trajectory.resampled(n).points - intended.resampled(n).points,
                axis=1,
            )))
            if error < 0.4:
                matches.append((trajectory, error))
        return matches

    # 2) The FMCW switching tag against the pulsed radar: inert.
    controller = environment.make_controller()
    fmcw_tag = environment.make_tag()
    fmcw_schedule = controller.plan_trajectory(ghost_shape)
    fmcw_tag.deploy(fmcw_schedule)
    scene = environment.make_scene(include_clutter=False)
    scene.add(fmcw_tag)
    fmcw_result = radar.sense(scene, duration, rng=rng)
    fmcw_tracks = len(ghost_like_tracks(
        fmcw_result.trajectories(), fmcw_schedule.intended_trajectory()
    ))

    # 3) The delay-line tag: real pulsed-domain spoofing.
    delay_tag = DelayLineTag(environment.panel)
    schedule = delay_tag.plan_trajectory(ghost_shape)
    delay_tag.deploy(schedule)
    scene = environment.make_scene(include_clutter=False)
    scene.add(delay_tag)
    delay_result = radar.sense(scene, duration, rng=rng)
    matches = ghost_like_tracks(delay_result.trajectories(),
                                schedule.intended_trajectory())
    if not matches:
        raise ExperimentError("delay-line ghost was not tracked")
    replay_error = matches[0][1]
    delay_trajectories = [m[0] for m in matches]

    return ExtPulsedResult(
        human_tracking_error_m=human_error,
        fmcw_tag_tracks=fmcw_tracks,
        delay_tag_tracks=len(delay_trajectories),
        delay_tag_replay_error_m=replay_error,
        line_spacing_m=delay_tag.line_spacing_m,
    )
