"""Fig. 10: microbenchmarks of the reflector design.

(a)/(b): a range-angle profile of a real moving human vs one of an
RF-Protect phantom, both after background subtraction — the paper's point
is that they are indistinguishable (comparable peak power, a single
dominant mover, multipath speckle around it).

(c): one cGAN trajectory replayed through the tag; the radar-detected
track follows the generated trajectory over a long (~20 ft) walk.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.artifacts import place_ghost_in_room, trained_gan
from repro.experiments.environments import Environment, office_environment
from repro.metrics.alignment import aligned_trajectory
from repro.radar.processing import RangeAngleProfile
from repro.types import Trajectory

__all__ = ["Fig10Result", "run"]


@dataclasses.dataclass(frozen=True)
class Fig10Result:
    """Profile comparison (a/b) and trajectory replay accuracy (c)."""

    human_profile: RangeAngleProfile
    ghost_profile: RangeAngleProfile
    human_peak_power: float
    ghost_peak_power: float
    generated_trajectory: Trajectory
    spoofed_trajectory: Trajectory
    replay_median_error_m: float
    replay_path_length_m: float

    @property
    def peak_power_ratio_db(self) -> float:
        """Ghost peak power relative to the human peak, in dB.

        Near 0 dB = the phantom is as bright as a person (Fig. 10's claim).
        """
        return float(10.0 * np.log10(self.ghost_peak_power
                                     / self.human_peak_power))

    def format_table(self) -> str:
        return "\n".join([
            "Fig. 10 — reflector microbenchmarks (office)",
            f"(a) human peak power:  {self.human_peak_power:.3e}",
            f"(b) ghost peak power:  {self.ghost_peak_power:.3e}"
            f"  (ratio {self.peak_power_ratio_db:+.1f} dB)",
            f"(c) replayed GAN trajectory: path "
            f"{self.replay_path_length_m:.1f} m, median aligned error "
            f"{self.replay_median_error_m:.3f} m",
        ])


def _strongest_profile(profiles: list[RangeAngleProfile]) -> RangeAngleProfile:
    if len(profiles) < 2:
        raise ExperimentError("need at least 2 frames for a subtracted profile")
    return max(profiles[1:], key=lambda p: p.power.max())


def run(*, environment: Environment | None = None, duration: float = 10.0,
        gan_quality: str = "fast", seed: int = 0) -> Fig10Result:
    """Compare human vs phantom profiles and replay one GAN trajectory."""
    if environment is None:
        environment = office_environment()
    rng = np.random.default_rng(seed)
    radar = environment.make_radar()

    # (a) A real human walking.
    walk = Trajectory(
        np.linspace(environment.room.center + np.array([-1.5, -0.5]),
                    environment.room.center + np.array([1.5, 1.0]), 50),
        dt=duration / 49.0,
    )
    human_scene = environment.make_scene()
    human_scene.add_human(walk)
    human_result = radar.sense(human_scene, duration, rng=rng)
    human_profile = _strongest_profile(human_result.profiles)

    # (b) A phantom following the same path via the tag.
    artifacts = trained_gan(gan_quality, seed)
    controller = environment.make_controller()
    schedule = place_ghost_in_room(environment, controller,
                                   artifacts.sampler, rng)
    tag = environment.make_tag()
    tag.deploy(schedule)
    ghost_scene = environment.make_scene()
    ghost_scene.add(tag)
    ghost_result = radar.sense(ghost_scene, duration, rng=rng)
    ghost_profile = _strongest_profile(ghost_result.profiles)

    # (c) Replay accuracy of the spoofed trajectory.
    spoofed = ghost_result.best_trajectory()
    intended = schedule.intended_trajectory()
    aligned, reference = aligned_trajectory(spoofed, intended)
    errors = np.linalg.norm(aligned.points - reference.points, axis=1)

    return Fig10Result(
        human_profile=human_profile,
        ghost_profile=ghost_profile,
        human_peak_power=float(human_profile.power.max()),
        ghost_peak_power=float(ghost_profile.power.max()),
        generated_trajectory=intended,
        spoofed_trajectory=spoofed,
        replay_median_error_m=float(np.median(errors)),
        replay_path_length_m=intended.path_length(),
    )
