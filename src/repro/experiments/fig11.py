"""Fig. 11: end-to-end 2-D spoofing accuracy in both environments.

The paper spoofs 45 cGAN trajectories per environment and reports CDFs of
(a) distance error, (b) angle error, and (c) 2-D location error between
the intended and radar-measured trajectories, modulo translation/rotation.
Paper medians: distance 5.56 / 10.19 cm, angle 2.05 / 4.94 deg, location
12.70 / 24.49 cm (home / office) — office worse because of multipath.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.artifacts import place_ghost_in_room, trained_gan
from repro.experiments.environments import (
    Environment,
    home_environment,
    office_environment,
)
from repro.metrics.alignment import spoofing_errors
from repro.metrics.errors import empirical_cdf

__all__ = ["EnvironmentSweep", "Fig11Result", "run", "run_environment"]


@dataclasses.dataclass(frozen=True)
class EnvironmentSweep:
    """Aggregated spoofing errors of one environment's sweep."""

    name: str
    num_trajectories: int
    distance_errors: np.ndarray
    angle_errors: np.ndarray
    location_errors: np.ndarray

    def medians(self) -> dict[str, float]:
        return {
            "distance_m": float(np.median(self.distance_errors)),
            "angle_deg": float(np.degrees(np.median(self.angle_errors))),
            "location_m": float(np.median(self.location_errors)),
        }

    def cdf(self, which: str) -> tuple[np.ndarray, np.ndarray]:
        """The (values, levels) CDF series for a Fig. 11 panel."""
        data = {
            "distance": self.distance_errors,
            "angle": self.angle_errors,
            "location": self.location_errors,
        }
        if which not in data:
            raise ExperimentError(f"unknown error family {which!r}")
        return empirical_cdf(data[which])


@dataclasses.dataclass(frozen=True)
class Fig11Result:
    """Both environments' sweeps (the paper's home + office)."""

    sweeps: dict[str, EnvironmentSweep]

    def format_table(self) -> str:
        lines = ["Fig. 11 — spoofing accuracy (modulo translation+rotation)",
                 f"{'env':<8} {'n traj':>6} {'median dist (cm)':>17} "
                 f"{'median angle (deg)':>19} {'median loc (cm)':>16}"]
        for name, sweep in self.sweeps.items():
            m = sweep.medians()
            lines.append(
                f"{name:<8} {sweep.num_trajectories:>6d} "
                f"{m['distance_m'] * 100:>17.2f} {m['angle_deg']:>19.2f} "
                f"{m['location_m'] * 100:>16.2f}"
            )
        lines.append("paper:   home 5.56 cm / 2.05 deg / 12.70 cm; "
                     "office 10.19 cm / 4.94 deg / 24.49 cm")
        return "\n".join(lines)


def run_environment(environment: Environment, *, num_trajectories: int,
                    duration: float = 10.0, gan_quality: str = "fast",
                    seed: int = 0, gan_seed: int | None = None) -> EnvironmentSweep:
    """Spoof ``num_trajectories`` GAN trajectories and measure the errors.

    ``gan_seed`` controls which trained generator is used (defaults to
    ``seed``); ``seed`` drives the environment randomness, so two
    environments can share one trained GAN while seeing independent noise.
    """
    if num_trajectories < 1:
        raise ExperimentError("num_trajectories must be >= 1")
    rng = np.random.default_rng(seed)
    artifacts = trained_gan(gan_quality, seed if gan_seed is None else gan_seed)
    radar = environment.make_radar()
    controller = environment.make_controller()

    distance_all, angle_all, location_all = [], [], []
    produced = 0
    attempts = 0
    while produced < num_trajectories and attempts < 3 * num_trajectories:
        attempts += 1
        schedule = place_ghost_in_room(environment, controller,
                                       artifacts.sampler, rng)
        tag = environment.make_tag()
        tag.deploy(schedule)
        scene = environment.make_scene()
        scene.add(tag)
        result = radar.sense(scene, duration, rng=rng)
        trajectories = result.trajectories()
        if not trajectories:
            continue  # tracker lost the phantom entirely; redraw
        errors = spoofing_errors(trajectories[0], schedule.intended_trajectory(),
                                 environment.radar_position)
        distance_all.append(errors.distance_errors)
        angle_all.append(errors.angle_errors)
        location_all.append(errors.location_errors)
        produced += 1

    if produced == 0:
        raise ExperimentError(
            f"no spoofed trajectory was trackable in {environment.name}"
        )
    return EnvironmentSweep(
        name=environment.name,
        num_trajectories=produced,
        distance_errors=np.concatenate(distance_all),
        angle_errors=np.concatenate(angle_all),
        location_errors=np.concatenate(location_all),
    )


def run(*, num_trajectories: int = 45, duration: float = 10.0,
        gan_quality: str = "fast", seed: int = 0) -> Fig11Result:
    """The full Fig. 11 sweep over both environments.

    The paper's scale is 45 trajectories per environment; pass a smaller
    ``num_trajectories`` for quick runs.
    """
    sweeps = {}
    for index, environment in enumerate((home_environment(),
                                         office_environment())):
        sweeps[environment.name] = run_environment(
            environment, num_trajectories=num_trajectories,
            duration=duration, gan_quality=gan_quality,
            seed=seed + 1000 * index, gan_seed=seed,
        )
    return Fig11Result(sweeps=sweeps)
