"""Fig. 12: how realistic are the cGAN's trajectories?

Normalized FID of the cGAN against the three baselines of the paper —
single repeated trajectory, uniform linear motion, random motion — all
scored against held-out real (simulated-human) trajectories. Paper values:
Real 1.0, GAN 1.229, SingleTraj 1.867, ULM 2.022, Random 3.440; the shape
to reproduce is the ordering Real < GAN < SingleTraj ~ ULM < Random.

A second readout uses the smart-eavesdropper classifier: balanced accuracy
near 0.5 means the source is indistinguishable from real motion.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.eavesdropper import TrajectoryRealnessClassifier
from repro.errors import ExperimentError
from repro.experiments.artifacts import trained_gan
from repro.gan import (
    random_motion_baseline,
    single_trajectory_baseline,
    uniform_linear_motion_baseline,
)
from repro.metrics.fid import normalized_fid_scores
from repro.trajectories import TrajectoryDataset

__all__ = ["Fig12Result", "run"]

PAPER_SCORES = {"Real": 1.0, "GAN": 1.229, "SingleTraj": 1.867,
                "ULM": 2.022, "Random": 3.440}


@dataclasses.dataclass(frozen=True)
class Fig12Result:
    """Normalized FID and classifier detectability per source."""

    normalized_fid: dict[str, float]
    classifier_accuracy: dict[str, float]
    num_samples: int

    def ordering_holds(self) -> bool:
        """The paper's headline: GAN beats every baseline."""
        gan = self.normalized_fid["GAN"]
        return all(gan < self.normalized_fid[name]
                   for name in ("SingleTraj", "ULM", "Random"))

    def format_table(self) -> str:
        lines = ["Fig. 12 — normalized FID (lower = closer to real motion)",
                 f"{'source':<12} {'FID (ours)':>11} {'FID (paper)':>12} "
                 f"{'classifier acc':>15}"]
        for name in ("Real", "GAN", "SingleTraj", "ULM", "Random"):
            ours = self.normalized_fid.get(name, float("nan"))
            paper = PAPER_SCORES[name]
            acc = self.classifier_accuracy.get(name, float("nan"))
            lines.append(f"{name:<12} {ours:>11.3f} {paper:>12.3f} {acc:>15.3f}")
        return "\n".join(lines)


def run(*, num_samples: int = 150, gan_quality: str = "fast",
        seed: int = 0) -> Fig12Result:
    """Generate all sources and score them."""
    if num_samples < 8:
        raise ExperimentError("num_samples must be >= 8")
    rng = np.random.default_rng(seed)
    artifacts = trained_gan(gan_quality, seed)
    real = artifacts.dataset
    dt = real.dt
    num_points = real.num_points

    gan_samples = TrajectoryDataset(artifacts.sampler.sample(num_samples, rng=rng))
    reference_walk = real[int(rng.integers(len(real)))]
    candidates = {
        "GAN": gan_samples,
        "SingleTraj": single_trajectory_baseline(reference_walk, num_samples, rng),
        "ULM": uniform_linear_motion_baseline(num_samples, rng,
                                              num_points=num_points, dt=dt),
        "Random": random_motion_baseline(num_samples, rng,
                                         num_points=num_points, dt=dt,
                                         step_scale=real.step_scale()),
    }
    fid = normalized_fid_scores(candidates, real, rng)

    # Smart-eavesdropper detectability: train on half, evaluate on half.
    accuracies: dict[str, float] = {}
    real_train, real_test = real.split(0.5, rng)
    for name, dataset in candidates.items():
        half = len(dataset) // 2
        fake_train = dataset.subset(range(half))
        fake_test = dataset.subset(range(half, len(dataset)))
        classifier = TrajectoryRealnessClassifier(seed=seed)
        classifier.fit(real_train, fake_train)
        accuracies[name] = classifier.accuracy(real_test, fake_test)

    return Fig12Result(normalized_fid=fid, classifier_accuracy=accuracies,
                       num_samples=num_samples)
