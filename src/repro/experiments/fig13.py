"""Fig. 13: legitimate sensing despite the deployed defense.

A real human walks while the tag injects one ghost. The eavesdropper sees
two plausible trajectories and cannot tell which is real. The legitimate
sensor receives the tag's side-channel report, filters the matching
trajectory out, and recovers the human's track alone (Sec. 11.3).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ExperimentError
from repro.eavesdropper import filter_ghost_trajectories
from repro.experiments.artifacts import place_ghost_in_room, trained_gan
from repro.experiments.environments import Environment, home_environment
from repro.metrics.alignment import aligned_trajectory
from repro.types import Trajectory

__all__ = ["Fig13Result", "run"]


@dataclasses.dataclass(frozen=True)
class Fig13Result:
    """What each class of sensor concludes."""

    eavesdropper_count: int
    legitimate_count: int
    ghost_matched: bool
    human_recovery_error_m: float
    human_trajectory: Trajectory
    ghost_trajectory: Trajectory
    recovered_trajectories: list[Trajectory]

    def format_table(self) -> str:
        return "\n".join([
            "Fig. 13 — legitimate sensing via the tag side channel",
            f"eavesdropper sees: {self.eavesdropper_count} moving targets",
            f"legitimate sensor (after ghost filtering): "
            f"{self.legitimate_count} moving targets",
            f"ghost correctly identified: {self.ghost_matched}",
            f"recovered human trajectory error: "
            f"{self.human_recovery_error_m:.3f} m (median, aligned)",
        ])


def run(*, environment: Environment | None = None, duration: float = 10.0,
        gan_quality: str = "fast", seed: int = 0) -> Fig13Result:
    """One human + one ghost; compare eavesdropper vs legitimate views."""
    if environment is None:
        environment = home_environment()
    rng = np.random.default_rng(seed)
    radar = environment.make_radar()
    controller = environment.make_controller()
    artifacts = trained_gan(gan_quality, seed)

    # Human walking on one side of the room.
    start = environment.room.center + np.array([-4.0, 0.5])
    stop = environment.room.center + np.array([-1.0, 2.0])
    human = Trajectory(np.linspace(start, stop, 50), dt=duration / 49.0)

    # Ghost placed by the controller in front of the panel (other side).
    schedule = place_ghost_in_room(environment, controller,
                                   artifacts.sampler, rng)
    tag = environment.make_tag()
    tag.deploy(schedule)

    scene = environment.make_scene()
    scene.add_human(human)
    scene.add(tag)
    result = radar.sense(scene, duration, rng=rng)

    trajectories = result.trajectories()
    if len(trajectories) < 2:
        raise ExperimentError(
            f"expected >= 2 tracked targets (human + ghost), "
            f"got {len(trajectories)}"
        )
    # Keep the two dominant tracks: the human and the ghost.
    trajectories = trajectories[:2]

    real, matches = filter_ghost_trajectories(trajectories,
                                              tag.ghost_reports())
    if not real:
        raise ExperimentError("ghost filtering removed every trajectory")

    recovered = real[0]
    aligned, reference = aligned_trajectory(recovered, human)
    recovery_error = float(np.median(
        np.linalg.norm(aligned.points - reference.points, axis=1)
    ))
    return Fig13Result(
        eavesdropper_count=len(trajectories),
        legitimate_count=len(real),
        ghost_matched=len(matches) == 1,
        human_recovery_error_m=recovery_error,
        human_trajectory=human,
        ghost_trajectory=schedule.intended_trajectory(),
        recovered_trajectories=real,
    )
