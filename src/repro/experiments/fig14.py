"""Fig. 14: breathing-rate spoofing.

A static human breathes; separately, a static ghost "breathes" through the
tag's phase shifter. The radar extracts the beat-tone phase at each range
bin across frames; the two phase traces should carry the same oscillation
structure, and the estimated breathing periods should match the commanded
ones within the vital-sign pipeline's resolution.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.eavesdropper import estimate_breathing_period
from repro.experiments.environments import Environment, home_environment
from repro.radar.scene import BreathingSpec
from repro.reflector import BreathingWaveform
from repro.types import Trajectory

__all__ = ["Fig14Result", "run"]


@dataclasses.dataclass(frozen=True)
class Fig14Result:
    """Estimated vs commanded breathing periods, plus the raw phase traces."""

    human_true_period_s: float
    human_estimated_period_s: float
    ghost_true_period_s: float
    ghost_estimated_period_s: float
    human_phase: np.ndarray
    ghost_phase: np.ndarray
    frame_dt: float

    def format_table(self) -> str:
        return "\n".join([
            "Fig. 14 — breathing spoofing (phase of the subject's range bin)",
            f"{'subject':<8} {'true period (s)':>16} {'estimated (s)':>14}",
            f"{'human':<8} {self.human_true_period_s:>16.2f} "
            f"{self.human_estimated_period_s:>14.2f}",
            f"{'ghost':<8} {self.ghost_true_period_s:>16.2f} "
            f"{self.ghost_estimated_period_s:>14.2f}",
        ])


def run(*, environment: Environment | None = None, duration: float = 30.0,
        human_breathing_hz: float = 0.25, ghost_breathing_hz: float = 0.30,
        seed: int = 0) -> Fig14Result:
    """Measure a breathing human and a breathing ghost with the same radar."""
    if environment is None:
        environment = home_environment()
    rng = np.random.default_rng(seed)
    radar = environment.make_radar()

    # --- Real breathing human, static in the room. -----------------------
    subject_position = environment.room.center + np.array([1.0, 0.0])
    static_points = np.vstack([subject_position, subject_position])
    human_scene = environment.make_scene(include_clutter=False)
    human_scene.add_human(
        Trajectory(static_points, dt=duration),
        breathing=BreathingSpec(frequency=human_breathing_hz),
        rcs_fluctuation=0.0,
    )
    human_result = radar.sense(human_scene, duration, rng=rng)
    human_distance = radar.array.range_to(subject_position)
    human_phase = human_result.phase_series(human_distance)
    human_period = estimate_breathing_period(human_result, human_distance)

    # --- Breathing ghost through the tag's phase shifter. ----------------
    # Frame-coherent switching keeps the ghost's bin phase readable.
    controller = environment.make_controller(frame_coherent=True)
    ghost_position = environment.panel.center + np.array([0.5, 3.0])
    waveform = BreathingWaveform(frequency=ghost_breathing_hz,
                                 wavelength=radar.config.chirp.wavelength)
    schedule = controller.plan_static_ghost(ghost_position, duration,
                                            breathing=waveform, rng=rng)
    tag = environment.make_tag()
    tag.deploy(schedule)
    ghost_scene = environment.make_scene(include_clutter=False)
    ghost_scene.add(tag)
    ghost_result = radar.sense(ghost_scene, duration, rng=rng)
    # The eavesdropper reads the phase at the ghost's *apparent* distance.
    command = schedule.commands[0]
    antenna = environment.panel.antenna_position(command.antenna_index)
    apparent = (radar.array.range_to(antenna)
                + radar.config.chirp.offset_for_switch_frequency(
                    command.switch_frequency))
    ghost_phase = ghost_result.phase_series(float(apparent))
    ghost_period = estimate_breathing_period(ghost_result, float(apparent))

    return Fig14Result(
        human_true_period_s=1.0 / human_breathing_hz,
        human_estimated_period_s=human_period,
        ghost_true_period_s=1.0 / ghost_breathing_hz,
        ghost_estimated_period_s=ghost_period,
        human_phase=human_phase,
        ghost_phase=ghost_phase,
        frame_dt=human_result.frame_dt,
    )
