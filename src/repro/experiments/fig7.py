"""Fig. 7: mutual information I(X; Z) vs phantom count M and activation q.

Paper setting: a home with N = 4 occupants, per-human moving probability
p = 0.2. The figure shows I(X; Z) high at q = 0 and q = 1, minimized near
q = 0.5, and decreasing as M grows.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.privacy import mutual_information_curve
from repro.privacy.mutual_information import OccupancyModel

__all__ = ["Fig7Result", "run"]

PAPER_NUM_HUMANS = 4
PAPER_MOVING_PROBABILITY = 0.2


@dataclasses.dataclass(frozen=True)
class Fig7Result:
    """The I(X; Z) surface over (M, q)."""

    phantom_counts: np.ndarray
    phantom_probabilities: np.ndarray
    mutual_information_bits: np.ndarray  # (len(M), len(q))
    baseline_entropy_bits: float

    def minimum_q(self, m_index: int) -> float:
        """The q that minimizes leakage for the given M row."""
        row = self.mutual_information_bits[m_index]
        return float(self.phantom_probabilities[np.argmin(row)])

    def format_table(self) -> str:
        header = "M \\ q | " + " ".join(
            f"{q:5.2f}" for q in self.phantom_probabilities
        )
        lines = [f"Fig. 7 — I(X;Z) bits (N={PAPER_NUM_HUMANS}, "
                 f"p={PAPER_MOVING_PROBABILITY}); H(X)="
                 f"{self.baseline_entropy_bits:.3f}", header,
                 "-" * len(header)]
        for m, row in zip(self.phantom_counts, self.mutual_information_bits):
            lines.append(f"M={m:<4d} | " + " ".join(f"{v:5.3f}" for v in row))
        return "\n".join(lines)


def run(*, num_humans: int = PAPER_NUM_HUMANS,
        moving_probability: float = PAPER_MOVING_PROBABILITY,
        phantom_counts: tuple[int, ...] = (1, 2, 4, 8),
        q_points: int = 21) -> Fig7Result:
    """Compute the Fig. 7 curves exactly (no sampling)."""
    counts = np.asarray(phantom_counts, dtype=int)
    probabilities = np.linspace(0.0, 1.0, q_points)
    surface = mutual_information_curve(num_humans, moving_probability,
                                       counts, probabilities)
    baseline = OccupancyModel(num_humans, moving_probability, 0, 0.0)
    return Fig7Result(
        phantom_counts=counts,
        phantom_probabilities=probabilities,
        mutual_information_bits=surface,
        baseline_entropy_bits=baseline.entropy_x(),
    )
