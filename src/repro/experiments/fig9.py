"""Fig. 9: FMCW radar localization of a walking human.

The paper has a subject walk shaped paths in the office and overlays the
radar-detected trajectory on ground-truth points; the detected track hugs
the ground truth, validating the radar before any spoofing is evaluated.
This experiment walks a simulated human along two shaped paths (a
rectangle and an S-curve) and reports per-path localization error against
the radar's ~15 cm range resolution.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.experiments.environments import Environment, office_environment
from repro.trajectories.synthesis import rectangle_path, s_curve_path
from repro.types import Trajectory

# rectangle_path / s_curve_path moved to repro.trajectories.synthesis (they
# are path primitives, not experiment code); re-exported for compatibility.
__all__ = ["Fig9Result", "run", "rectangle_path", "s_curve_path"]


@dataclasses.dataclass(frozen=True)
class Fig9Result:
    """Localization accuracy per shaped path."""

    path_names: list[str]
    ground_truths: list[Trajectory]
    detected: list[Trajectory]
    median_errors_m: list[float]
    p90_errors_m: list[float]
    range_resolution_m: float

    def format_table(self) -> str:
        lines = ["Fig. 9 — FMCW radar localization (office)",
                 f"{'path':<12} {'median err (m)':>15} {'p90 err (m)':>12}"]
        for name, med, p90 in zip(self.path_names, self.median_errors_m,
                                  self.p90_errors_m):
            lines.append(f"{name:<12} {med:>15.3f} {p90:>12.3f}")
        lines.append(f"(range resolution: {self.range_resolution_m:.3f} m)")
        return "\n".join(lines)


def run(*, environment: Environment | None = None, duration: float = 10.0,
        seed: int = 0) -> Fig9Result:
    """Walk two shaped paths and track them with the radar."""
    if environment is None:
        environment = office_environment()
    rng = np.random.default_rng(seed)
    radar = environment.make_radar()
    num_points = max(int(duration * 5), 10)
    dt = duration / (num_points - 1)
    center = environment.room.center + np.array([0.0, 0.5])

    # Scale the paths with the session length so the subject walks at a
    # human ~1 m/s regardless of the requested duration.
    scale = duration / 10.0
    paths = {
        "rectangle": rectangle_path(center, 3.0 * scale, 2.0 * scale,
                                    num_points, dt),
        "s-curve": s_curve_path(center, 4.0 * scale, 2.0 * scale,
                                num_points, dt),
    }

    names, truths, detections, medians, p90s = [], [], [], [], []
    for name, truth in paths.items():
        scene = environment.make_scene()
        scene.add_human(truth)
        result = radar.sense(scene, duration, rng=rng)
        detected = result.best_trajectory()
        track = result.tracks()[0]
        errors = np.array([
            np.linalg.norm(position - truth.position_at(t))
            for t, position in zip(track.times, track.raw_positions)
        ])
        names.append(name)
        truths.append(truth)
        detections.append(detected)
        medians.append(float(np.median(errors)))
        p90s.append(float(np.percentile(errors, 90)))

    return Fig9Result(
        path_names=names,
        ground_truths=truths,
        detected=detections,
        median_errors_m=medians,
        p90_errors_m=p90s,
        range_resolution_m=radar.config.chirp.range_resolution,
    )
