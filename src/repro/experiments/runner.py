"""Experiment registry: map paper figure/table ids to their run functions.

Besides the single-experiment entry point (:func:`run_experiment`), this
module provides :func:`run_experiments`, a process-parallel fan-out over
several experiment ids. Seeding is worker-count independent: when a base
seed is given, each experiment's seed is spawned from one
``np.random.SeedSequence`` by *position in the id list*, so ``workers=1``
and ``workers=8`` produce bit-identical results.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import inspect
import json
import math
import os
import time
from collections.abc import Callable, Sequence
from typing import Any, cast

import numpy as np

from repro.errors import ExperimentError
from repro.experiments import (
    ext_floorplan,
    ext_multiradar,
    ext_pulsed,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentRun",
    "ExperimentSpec",
    "experiment_seeds",
    "run_experiment",
    "run_experiments",
]


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    experiment_id: str
    description: str
    run: Callable[..., Any]
    fast_options: dict[str, Any]
    """Keyword overrides that make the experiment finish in seconds."""


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig7",
            "Mutual information I(X;Z) vs phantom count M and activation q",
            fig7.run, {},
        ),
        ExperimentSpec(
            "fig9",
            "FMCW radar localization of shaped human walks",
            fig9.run, {"duration": 6.0},
        ),
        ExperimentSpec(
            "fig10",
            "Human vs phantom range-angle profiles; GAN trajectory replay",
            fig10.run, {"gan_quality": "tiny", "duration": 6.0},
        ),
        ExperimentSpec(
            "fig11",
            "2-D spoofing accuracy CDFs in home and office",
            fig11.run, {"num_trajectories": 4, "gan_quality": "tiny",
                        "duration": 6.0},
        ),
        ExperimentSpec(
            "fig12",
            "Normalized FID of GAN vs baselines, plus classifier detectability",
            fig12.run, {"num_samples": 40, "gan_quality": "tiny"},
        ),
        ExperimentSpec(
            "fig13",
            "Legitimate sensing: ghost filtering via the tag side channel",
            fig13.run, {"gan_quality": "tiny", "duration": 6.0},
        ),
        ExperimentSpec(
            "fig14",
            "Breathing-rate spoofing via the phase shifter",
            fig14.run, {"duration": 20.0},
        ),
        ExperimentSpec(
            "table1",
            "Simulated user study: perceived realness vs trueness",
            table1.run, {"gan_quality": "tiny", "num_raters": 8},
        ),
        ExperimentSpec(
            "ext-multiradar",
            "Extension (Sec. 13): dual-radar consistency attack on one tag",
            ext_multiradar.run, {"gan_quality": "tiny", "duration": 8.0},
        ),
        ExperimentSpec(
            "ext-pulsed",
            "Extension (Sec. 13): pulsed radar and delay-line spoofing",
            ext_pulsed.run, {"duration": 6.0},
        ),
        ExperimentSpec(
            "ext-floorplan",
            "Extension (Sec. 8): floor-plan-aware ghost trajectories",
            ext_floorplan.run, {"gan_quality": "tiny", "num_ghosts": 15},
        ),
    )
}


def _accepts_option(run: Callable[..., Any], name: str, *,
                    allow_var_keyword: bool = True) -> bool:
    """Whether ``run`` can receive a keyword option called ``name``."""
    parameters = inspect.signature(run).parameters.values()
    return any(
        (allow_var_keyword
         and parameter.kind is inspect.Parameter.VAR_KEYWORD)
        or parameter.name == name
        for parameter in parameters
    )


def run_experiment(experiment_id: str, *, fast: bool = False,
                   **options: Any) -> Any:
    """Run one experiment by id; ``fast=True`` applies quick-run options.

    Explicit keyword ``options`` override the fast presets. Two options
    are broadcast-friendly so ``rfprotect run all`` can pass them across
    the whole registry:

    - ``seed``: experiments whose run function takes no ``seed`` (fig7's
      mutual-information sweep is fully deterministic) simply ignore it.
    - ``scenario``: a registered scenario name (:mod:`repro.scenarios`).
      It is resolved through the scenario registry (unknown names raise)
      and becomes an ``environment=`` keyword for run functions that
      declare one; experiments without an ``environment`` parameter run
      unchanged.
    """
    spec = EXPERIMENTS.get(experiment_id)
    if spec is None:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    kwargs = dict(spec.fast_options) if fast else {}
    kwargs.update(options)
    if "seed" in kwargs and not _accepts_option(spec.run, "seed"):
        del kwargs["seed"]
    scenario_name = kwargs.pop("scenario", None)
    if scenario_name:
        from repro.scenarios import build, get_scenario

        get_scenario(scenario_name)  # validate even for runs that ignore it
        if _accepts_option(spec.run, "environment",
                           allow_var_keyword=False):
            kwargs.setdefault("environment",
                              build(scenario_name).environment)
    return spec.run(**kwargs)


@dataclasses.dataclass(frozen=True)
class ExperimentRun:
    """Timing/result record for one executed experiment.

    Attributes:
        experiment_id: the registry id that was run.
        result: the experiment's result object (``Fig9Result`` etc.).
        elapsed_s: wall-clock runtime of the run function.
        options: the exact keyword overrides the run function received on
            top of any fast presets (including a spawned ``seed``, if any).
        stage_timings: per-stage wall-time deltas this run contributed to
            the stage-graph histograms (:func:`repro.radar.stages.
            stage_metrics`): ``{"stages.<stage>.wall_s": {"count": n,
            "wall_s": seconds}}``. Empty when the run never entered the
            sensing graph (fig7's closed-form sweep, say).
    """

    experiment_id: str
    result: Any
    elapsed_s: float
    options: dict[str, Any]
    stage_timings: dict[str, Any] = dataclasses.field(default_factory=dict)

    def record(self) -> dict[str, Any]:
        """A self-describing JSON record of this run.

        Besides the timing/option summary, the record carries provenance
        (package version, resolved ``RF_PROTECT_*`` knobs and their
        canonical hash — :mod:`repro.audit.provenance`) and a scalar
        summary of the result object, so a ledger entry holding it is
        auditable without re-running the experiment.
        """
        from repro.audit.provenance import provenance

        return {
            "experiment_id": self.experiment_id,
            "elapsed_s": self.elapsed_s,
            "options": {key: _jsonable(value)
                        for key, value in sorted(self.options.items())},
            "result_type": type(self.result).__name__,
            "result_summary": _result_summary(self.result),
            "stage_timings": self.stage_timings,
            "provenance": provenance(),
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def _summary_scalar(value: Any) -> Any | None:
    """``value`` as a canonical-JSON-safe scalar, or ``None`` to skip."""
    if isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value) if math.isfinite(float(value)) else None
    return None


def _result_summary(result: Any, *, max_list_items: int = 32) -> dict[str, Any]:
    """Scalar fields (and short scalar lists) of a dataclass result.

    Trajectories, power cubes, and other arrays stay out — the summary
    is what a privacy-SLO record rule can reference by dotted path.
    """
    if not dataclasses.is_dataclass(result) or isinstance(result, type):
        return {}
    summary: dict[str, Any] = {}
    for field in dataclasses.fields(result):
        value = getattr(result, field.name)
        scalar = _summary_scalar(value)
        if scalar is not None:
            summary[field.name] = scalar
            continue
        if isinstance(value, (list, tuple)) and len(value) <= max_list_items:
            items = [_summary_scalar(item) for item in value]
            if items and all(item is not None for item in items):
                summary[field.name] = items
    return summary


def experiment_seeds(num_experiments: int, base_seed: int) -> list[int]:
    """Per-experiment seeds spawned from one ``SeedSequence``.

    Seeds depend only on the base seed and the experiment's *position*,
    never on which worker process picks the job up, so a parallel run is
    bit-reproducible regardless of worker count.
    """
    children = np.random.SeedSequence(base_seed).spawn(num_experiments)
    return [int(child.generate_state(1, dtype=np.uint32)[0])
            for child in children]


def _stage_counts() -> dict[str, tuple[int, float]]:
    """Current ``(count, wall_s)`` per stage-graph timing histogram."""
    from repro.radar.stages import stage_metrics

    histograms = cast("dict[str, dict[str, Any]]",
                      stage_metrics().snapshot()["histograms"])
    return {name: (int(data["count"]), float(data["sum"]))
            for name, data in histograms.items()}


def _stage_timing_deltas(before: dict[str, tuple[int, float]],
                         after: dict[str, tuple[int, float]],
                         ) -> dict[str, Any]:
    """Per-stage observation/wall-time growth between two snapshots."""
    deltas: dict[str, Any] = {}
    for name, (count, total) in sorted(after.items()):
        prev_count, prev_total = before.get(name, (0, 0.0))
        if count > prev_count:
            deltas[name] = {"count": count - prev_count,
                            "wall_s": total - prev_total}
    return deltas


def _timed_run(experiment_id: str, fast: bool,
               options: dict[str, Any]) -> ExperimentRun:
    """Worker entry point (module-level so it pickles into a process pool)."""
    stages_before = _stage_counts()
    started = time.perf_counter()
    result = run_experiment(experiment_id, fast=fast, **options)
    elapsed_s = time.perf_counter() - started
    return ExperimentRun(experiment_id=experiment_id, result=result,
                         elapsed_s=elapsed_s,
                         options=dict(options),
                         stage_timings=_stage_timing_deltas(stages_before,
                                                            _stage_counts()))


def run_experiments(experiment_ids: Sequence[str], *, fast: bool = False,
                    workers: int = 1, base_seed: int | None = None,
                    record_dir: str | None = None,
                    **options: Any) -> list[ExperimentRun]:
    """Run several experiments, optionally fanned out over processes.

    Args:
        experiment_ids: registry ids to run, all validated up front.
        fast: apply each experiment's quick-run presets (as in
            :func:`run_experiment`; explicit ``options`` still win).
        workers: number of worker processes; ``1`` runs in-process.
        base_seed: when given, spawn a per-experiment ``seed`` option via
            :func:`experiment_seeds` (an explicit ``seed`` in ``options``
            takes precedence, matching the fast-preset precedence rule).
        record_dir: when given, write ``<id>.json`` timing/result records
            into this directory (created if missing).
        **options: keyword overrides forwarded to every experiment.

    Returns:
        One :class:`ExperimentRun` per id, in input order.
    """
    experiment_ids = list(experiment_ids)
    unknown = [eid for eid in experiment_ids if eid not in EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            f"known: {known}"
        )
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")

    per_run_options: list[dict[str, Any]] = []
    seeds = (experiment_seeds(len(experiment_ids), base_seed)
             if base_seed is not None else None)
    for index in range(len(experiment_ids)):
        run_options = dict(options)
        if seeds is not None:
            run_options.setdefault("seed", seeds[index])
        per_run_options.append(run_options)

    if workers == 1:
        runs = [_timed_run(eid, fast, opts)
                for eid, opts in zip(experiment_ids, per_run_options)]
    else:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(experiment_ids) or 1)) as pool:
            futures = [pool.submit(_timed_run, eid, fast, opts)
                       for eid, opts in zip(experiment_ids, per_run_options)]
            runs = [future.result() for future in futures]

    if record_dir is not None:
        _write_records(record_dir, runs)
    return runs


def _write_records(record_dir: str, runs: Sequence[ExperimentRun]) -> None:
    """Per-experiment JSON records plus chained ledger entries.

    Each run record is written both as ``<id>.json`` (human-greppable)
    and appended as an ``experiment_run`` record to the directory's
    hash-chained ledger (:mod:`repro.audit.ledger`), which ``rfprotect
    audit sign``/``verify``/``report`` operate on. Appends re-anchor on
    the ledger's current tail, so repeated runs into one directory keep
    one continuous chain.
    """
    from repro.audit.ledger import Ledger
    from repro.config import get_audit_ledger_name

    os.makedirs(record_dir, exist_ok=True)
    ledger = Ledger(os.path.join(record_dir, get_audit_ledger_name()))
    for run in runs:
        record = run.record()
        path = os.path.join(record_dir, f"{run.experiment_id}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        ledger.append("experiment_run", record)
