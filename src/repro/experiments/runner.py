"""Experiment registry: map paper figure/table ids to their run functions."""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    ext_floorplan,
    ext_multiradar,
    ext_pulsed,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
)

__all__ = ["EXPERIMENTS", "ExperimentSpec", "run_experiment"]


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    experiment_id: str
    description: str
    run: Callable
    fast_options: dict
    """Keyword overrides that make the experiment finish in seconds."""


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig7",
            "Mutual information I(X;Z) vs phantom count M and activation q",
            fig7.run, {},
        ),
        ExperimentSpec(
            "fig9",
            "FMCW radar localization of shaped human walks",
            fig9.run, {"duration": 6.0},
        ),
        ExperimentSpec(
            "fig10",
            "Human vs phantom range-angle profiles; GAN trajectory replay",
            fig10.run, {"gan_quality": "tiny", "duration": 6.0},
        ),
        ExperimentSpec(
            "fig11",
            "2-D spoofing accuracy CDFs in home and office",
            fig11.run, {"num_trajectories": 4, "gan_quality": "tiny",
                        "duration": 6.0},
        ),
        ExperimentSpec(
            "fig12",
            "Normalized FID of GAN vs baselines, plus classifier detectability",
            fig12.run, {"num_samples": 40, "gan_quality": "tiny"},
        ),
        ExperimentSpec(
            "fig13",
            "Legitimate sensing: ghost filtering via the tag side channel",
            fig13.run, {"gan_quality": "tiny", "duration": 6.0},
        ),
        ExperimentSpec(
            "fig14",
            "Breathing-rate spoofing via the phase shifter",
            fig14.run, {"duration": 20.0},
        ),
        ExperimentSpec(
            "table1",
            "Simulated user study: perceived realness vs trueness",
            table1.run, {"gan_quality": "tiny", "num_raters": 8},
        ),
        ExperimentSpec(
            "ext-multiradar",
            "Extension (Sec. 13): dual-radar consistency attack on one tag",
            ext_multiradar.run, {"gan_quality": "tiny", "duration": 8.0},
        ),
        ExperimentSpec(
            "ext-pulsed",
            "Extension (Sec. 13): pulsed radar and delay-line spoofing",
            ext_pulsed.run, {"duration": 6.0},
        ),
        ExperimentSpec(
            "ext-floorplan",
            "Extension (Sec. 8): floor-plan-aware ghost trajectories",
            ext_floorplan.run, {"gan_quality": "tiny", "num_ghosts": 15},
        ),
    )
}


def run_experiment(experiment_id: str, *, fast: bool = False, **options):
    """Run one experiment by id; ``fast=True`` applies quick-run options.

    Explicit keyword ``options`` override the fast presets.
    """
    spec = EXPERIMENTS.get(experiment_id)
    if spec is None:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    kwargs = dict(spec.fast_options) if fast else {}
    kwargs.update(options)
    return spec.run(**kwargs)
