"""Table 1: the human study — can people tell real from fake?

The paper shows 32 participants 5 real and 5 GAN trajectories each; a
Pearson chi-square test on the resulting 2x2 table (chi2 ~ 0.2, p ~ 0.65)
finds no significant association between trueness and perceived trueness.

No human panel is available here, so this experiment substitutes a *rater
model*: each simulated participant judges a trajectory by the visually
salient kinematic cues a person plotting it would see (jaggedness,
teleports, unnatural regularity), with heavy judgement noise and a
personal leniency bias. The model is calibrated on real-trajectory
statistics only — it has no access to ground-truth labels — so the test
measures exactly what the paper's does: whether the GAN's output triggers
those cues more often than real motion does.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.artifacts import trained_gan
from repro.metrics.fid import trajectory_features
from repro.metrics.stats import TestResult, chi_square_independence
from repro.trajectories import TrajectoryDataset
from repro.types import Trajectory

__all__ = ["RaterModel", "Table1Result", "run"]

# Feature indices (see metrics.fid.trajectory_features) a human plot-reader
# plausibly reacts to: step std, max step, |turning| mean, straightness,
# stationary fraction.
_SALIENT_FEATURES = (1, 2, 4, 8, 11)


class RaterModel:
    """A noisy human judge of trajectory realness.

    Calibrated on a reference set of real trajectories: a candidate whose
    salient features sit far outside the real population looks fake; heavy
    observation noise and a per-rater leniency bias make individual
    judgements unreliable. The default noise level is tuned to the paper's
    *observed* human performance — Table 1's panel was right only 164/320
    times (51%), barely above chance, with ~58% of everything called real.
    """

    def __init__(self, reference: TrajectoryDataset, *,
                 judgement_noise: float = 3.0,
                 rng: np.random.Generator | None = None) -> None:
        if judgement_noise < 0:
            raise ExperimentError("judgement_noise must be >= 0")
        if rng is None:
            rng = np.random.default_rng(0)
        features = np.vstack([trajectory_features(t) for t in reference])
        salient = features[:, _SALIENT_FEATURES]
        self._mean = salient.mean(axis=0)
        self._std = salient.std(axis=0) + 1e-9
        self._rng = rng
        self.judgement_noise = judgement_noise
        # Personal leniency: how implausible a trajectory must look before
        # this rater calls it fake. Calibrated on *noisy* judgements of the
        # real population, so real trajectories land at ~55-60% "perceived
        # real" — matching the human base rate of Table 1.
        reference_scores = np.array([
            self._implausibility(t) + rng.normal(0.0, judgement_noise)
            for t in reference
        ])
        self._threshold = float(np.quantile(reference_scores, 0.58)
                                + rng.normal(0.0, 0.2))

    def _implausibility(self, trajectory: Trajectory) -> float:
        salient = trajectory_features(trajectory)[list(_SALIENT_FEATURES)]
        z = np.abs(salient - self._mean) / self._std
        return float(z.mean())

    def perceive_real(self, trajectory: Trajectory) -> bool:
        """One noisy judgement: does this trajectory look real?"""
        score = (self._implausibility(trajectory)
                 + self._rng.normal(0.0, self.judgement_noise))
        return score <= self._threshold


@dataclasses.dataclass(frozen=True)
class Table1Result:
    """The 2x2 contingency table and its chi-square test."""

    table: np.ndarray  # rows: perceived real/fake; cols: truly real/fake
    test: TestResult
    num_raters: int

    def perceived_real_rate(self, truly_real: bool) -> float:
        column = 0 if truly_real else 1
        return float(self.table[0, column] / self.table[:, column].sum())

    def format_table(self) -> str:
        return "\n".join([
            "Table 1 — simulated human study",
            f"{'':<20} {'Real':>6} {'Fake':>6}",
            f"{'Perceived as real':<20} {int(self.table[0, 0]):>6} "
            f"{int(self.table[0, 1]):>6}",
            f"{'Perceived as fake':<20} {int(self.table[1, 0]):>6} "
            f"{int(self.table[1, 1]):>6}",
            f"chi2 = {self.test.statistic:.3f}, p = {self.test.p_value:.3f} "
            f"(paper: chi2 = 0.2, p = 0.65)",
            f"significant association: {self.test.significant()}",
        ])


def run(*, num_raters: int = 32, per_class: int = 5,
        gan_quality: str = "fast", seed: int = 0) -> Table1Result:
    """Run the simulated study with the paper's panel dimensions."""
    if num_raters < 2 or per_class < 1:
        raise ExperimentError("need >= 2 raters and >= 1 trajectory per class")
    rng = np.random.default_rng(seed)
    artifacts = trained_gan(gan_quality, seed)
    real = artifacts.dataset
    fake = artifacts.sampler.sample(num_raters * per_class, rng=rng)

    table = np.zeros((2, 2))
    fake_cursor = 0
    for _ in range(num_raters):
        rater = RaterModel(real, rng=rng)
        real_indices = rng.choice(len(real), size=per_class, replace=False)
        shown: list[tuple[Trajectory, bool]] = [
            (real[int(i)], True) for i in real_indices
        ]
        shown += [(fake[fake_cursor + j], False) for j in range(per_class)]
        fake_cursor += per_class
        rng.shuffle(shown)
        for trajectory, truly_real in shown:
            perceived = rater.perceive_real(trajectory)
            row = 0 if perceived else 1
            column = 0 if truly_real else 1
            table[row, column] += 1

    return Table1Result(table=table, test=chi_square_independence(table),
                        num_raters=num_raters)
