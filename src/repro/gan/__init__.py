"""Conditional trajectory GAN (Sec. 6, Fig. 6) and its baselines.

The generator maps (noise, range-class label) to a trajectory; the
discriminator scores (trajectory, label) pairs as real/fake; the trainer
runs the standard cGAN minimax loss (Eq. 4) with the paper's optimizer
settings. Baselines reproduce the three alternatives of Fig. 12: a single
repeated trajectory, uniform linear motion, and random motion.
"""

from repro.gan.baselines import (
    random_motion_baseline,
    single_trajectory_baseline,
    uniform_linear_motion_baseline,
)
from repro.gan.discriminator import TrajectoryDiscriminator
from repro.gan.generator import TrajectoryGenerator
from repro.gan.sampling import TrajectorySampler
from repro.gan.trainer import GanConfig, GanTrainer, TrainingHistory

__all__ = [
    "GanConfig",
    "GanTrainer",
    "TrainingHistory",
    "TrajectoryDiscriminator",
    "TrajectoryGenerator",
    "TrajectorySampler",
    "random_motion_baseline",
    "single_trajectory_baseline",
    "uniform_linear_motion_baseline",
]
