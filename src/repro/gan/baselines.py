"""The three non-GAN trajectory sources compared in Fig. 12.

- *SingleTraj*: one trajectory performed repeatedly (a user replaying the
  same walk, with execution jitter).
- *ULM*: uniform linear motion between random endpoints.
- *Random*: uncorrelated random steps (white-noise motion).

All are plausible-at-a-glance spoofing strategies that fail distributionally
— the paper's point is that their FID against real motion is far worse than
the cGAN's.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.errors import ConfigurationError
from repro.trajectories.dataset import TrajectoryDataset
from repro.trajectories.labels import range_class_of_trajectory
from repro.types import Trajectory

__all__ = [
    "random_motion_baseline",
    "single_trajectory_baseline",
    "uniform_linear_motion_baseline",
]


def _check_count(count: int) -> None:
    if count < 1:
        raise ConfigurationError("count must be >= 1")


def single_trajectory_baseline(reference: Trajectory, count: int,
                               rng: np.random.Generator, *,
                               jitter: float = 0.02) -> TrajectoryDataset:
    """``count`` noisy repetitions of one reference trajectory.

    ``jitter`` is the per-point Gaussian execution noise in meters — a
    human repeating a path never retraces it exactly.
    """
    _check_count(count)
    if jitter < 0:
        raise ConfigurationError("jitter must be >= 0")
    trajectories = []
    for _ in range(count):
        noisy = reference.points + rng.normal(0.0, jitter, reference.points.shape)
        trajectory = Trajectory(noisy, dt=reference.dt).centered()
        trajectories.append(
            trajectory.replace(label=range_class_of_trajectory(trajectory))
        )
    return TrajectoryDataset(trajectories)


def uniform_linear_motion_baseline(count: int, rng: np.random.Generator, *,
                                   num_points: int = constants.TRACE_NUM_POINTS,
                                   dt: float | None = None,
                                   speed_range: tuple[float, float] = (0.2, 1.4)
                                   ) -> TrajectoryDataset:
    """Straight-line constant-speed walks in random directions."""
    _check_count(count)
    low, high = speed_range
    if low <= 0 or high <= low:
        raise ConfigurationError("speed_range must satisfy 0 < low < high")
    if dt is None:
        dt = constants.TRACE_DURATION_S / (num_points - 1)
    trajectories = []
    for _ in range(count):
        speed = rng.uniform(low, high)
        heading = rng.uniform(0.0, 2.0 * np.pi)
        direction = np.array([np.cos(heading), np.sin(heading)])
        times = np.arange(num_points)[:, None] * dt
        points = times * speed * direction
        trajectory = Trajectory(points, dt=dt).centered()
        trajectories.append(
            trajectory.replace(label=range_class_of_trajectory(trajectory))
        )
    return TrajectoryDataset(trajectories)


def random_motion_baseline(count: int, rng: np.random.Generator, *,
                           num_points: int = constants.TRACE_NUM_POINTS,
                           dt: float | None = None,
                           step_scale: float = 0.15) -> TrajectoryDataset:
    """White-noise random walks: every step independent of the last."""
    _check_count(count)
    if step_scale <= 0:
        raise ConfigurationError("step_scale must be positive")
    if dt is None:
        dt = constants.TRACE_DURATION_S / (num_points - 1)
    trajectories = []
    for _ in range(count):
        steps = rng.normal(0.0, step_scale, (num_points - 1, 2))
        points = np.vstack([np.zeros((1, 2), dtype=np.float64), np.cumsum(steps, axis=0)])
        trajectory = Trajectory(points, dt=dt).centered()
        trajectories.append(
            trajectory.replace(label=range_class_of_trajectory(trajectory))
        )
    return TrajectoryDataset(trajectories)
