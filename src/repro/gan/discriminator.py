"""The conditional trajectory discriminator (Fig. 6, right).

Per Sec. 6: each timestep's input (a 2-D step concatenated with the
embedded range label) passes through a fully connected layer, a
bidirectional LSTM reads the sequence, and a final fully connected layer
produces the realness score. The forward pass returns *logits*; training
uses the numerically-stable BCE-with-logits, and :meth:`score` applies the
paper's sigmoid for probability readouts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.functional import concat
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.recurrent import BiLSTM
from repro.nn.tensor import Tensor, as_tensor

__all__ = ["TrajectoryDiscriminator"]


class TrajectoryDiscriminator(Module):
    """cGAN discriminator: ``(steps, label) -> (B, 1)`` realness logits."""

    def __init__(self, *, hidden_size: int = 64, embed_dim: int = 8,
                 feature_dim: int = 32, num_classes: int = 5,
                 dropout_probability: float = 0.5,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if hidden_size < 1 or feature_dim < 1:
            raise ConfigurationError("hidden_size and feature_dim must be >= 1")
        if rng is None:
            rng = np.random.default_rng(1)
        self.num_classes = num_classes
        self.embedding = Embedding(num_classes, embed_dim, rng)
        self.input_layer = Linear(2 + embed_dim, feature_dim, rng)
        self.bilstm = BiLSTM(feature_dim, hidden_size, rng,
                             dropout_probability=dropout_probability)
        self.output_layer = Linear(2 * hidden_size, 1, rng)

    def features(self, steps: Tensor | np.ndarray, labels: np.ndarray) -> Tensor:
        """The ``(B, 2H)`` BiLSTM summary before the scoring layer.

        Exposed for feature-matching generator training: matching the mean
        of these features between real and generated batches keeps the
        generator learning even when the adversarial loss saturates.
        """
        steps = as_tensor(steps)
        if steps.ndim != 3 or steps.shape[2] != 2:
            raise ConfigurationError(
                f"steps must be (B, T, 2), got {steps.shape}"
            )
        labels = np.asarray(labels)
        if labels.shape != (steps.shape[0],):
            raise ConfigurationError(
                f"labels must be ({steps.shape[0]},), got {labels.shape}"
            )
        batch_size, num_steps = steps.shape[0], steps.shape[1]
        # Time-distributed input layer applied in one shot: (B*T, 2+e).
        flat_steps = steps.reshape(batch_size * num_steps, 2)
        repeated_labels = np.repeat(labels, num_steps)
        flat_features = self.input_layer(
            concat([flat_steps, self.embedding(repeated_labels)], axis=1)
        ).tanh()
        features = flat_features.reshape(
            batch_size, num_steps, flat_features.shape[1]
        )
        # Hand the BiLSTM the stacked (T, B, F) form directly so both
        # directions run through the sequence kernels.
        return self.bilstm.final_summary(features.transpose((1, 0, 2)))

    def forward(self, steps: Tensor | np.ndarray, labels: np.ndarray) -> Tensor:
        """Score a batch of step sequences.

        Args:
            steps: ``(B, T, 2)`` normalized steps (tensor or array).
            labels: integer class labels ``(B,)``.

        Returns:
            ``(B, 1)`` logits — positive means "looks real".
        """
        return self.output_layer(self.features(steps, labels))

    def score(self, steps: Tensor | np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Probability-of-real per trajectory (sigmoid of the logits)."""
        was_training = self.training
        self.eval()
        try:
            logits = self.forward(steps, labels)
        finally:
            if was_training:
                self.train()
        return logits.sigmoid().numpy().reshape(-1)
