"""The conditional trajectory generator (Fig. 6, left).

Architecture as described in Sec. 6: a Gaussian noise vector ``z`` is
concatenated with the embedded range label, passed through a fully connected
layer, unrolled through a two-layer LSTM (dropout 0.5 in the paper's
configuration), and reshaped by a final fully connected layer into a
sequence of 2-D *steps*. Integrating the steps yields the trajectory (see
``repro.gan.sampling``); generating in step space is what makes smoothness
a local property the LSTM can learn.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.functional import concat, embedding, repeat_sequence
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.recurrent import LSTM
from repro.nn.tensor import Tensor, default_dtype

__all__ = ["TrajectoryGenerator"]


class TrajectoryGenerator(Module):
    """cGAN generator: ``(z, label) -> (B, num_steps, 2)`` normalized steps."""

    def __init__(self, *, noise_dim: int = 16, hidden_size: int = 64,
                 embed_dim: int = 8, num_steps: int = 49,
                 num_classes: int = 5, num_layers: int = 2,
                 dropout_probability: float = 0.5,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if noise_dim < 1 or num_steps < 1:
            raise ConfigurationError("noise_dim and num_steps must be >= 1")
        if num_classes < 1:
            raise ConfigurationError("num_classes must be >= 1")
        if rng is None:
            rng = np.random.default_rng(0)
        self.noise_dim = noise_dim
        self.num_steps = num_steps
        self.num_classes = num_classes
        self.embedding = Embedding(num_classes, embed_dim, rng)
        self.input_layer = Linear(noise_dim + embed_dim, hidden_size, rng)
        self.lstm = LSTM(hidden_size, hidden_size, rng, num_layers=num_layers,
                         dropout_probability=dropout_probability)
        self.output_layer = Linear(hidden_size, 2, rng)
        # Trainable per-class step-magnitude gain. The range label's primary
        # physical meaning is "how far this person moves", i.e. step
        # magnitude; giving the condition a direct multiplicative path makes
        # class control learnable at CPU model sizes (the paper's 512-unit
        # GPU model learns it through the embedding alone). The trainer
        # initializes it from the dataset's per-class step statistics.
        self.class_gain = Tensor(np.ones(num_classes, dtype=default_dtype()),
                                 requires_grad=True)

    def forward(self, z: Tensor, labels: np.ndarray) -> Tensor:
        """Generate normalized steps.

        Args:
            z: noise tensor ``(B, noise_dim)``.
            labels: integer class labels ``(B,)``.

        Returns:
            ``(B, num_steps, 2)`` tensor of normalized displacement steps.
        """
        labels = np.asarray(labels)
        if z.ndim != 2 or z.shape[1] != self.noise_dim:
            raise ConfigurationError(
                f"z must be (B, {self.noise_dim}), got {z.shape}"
            )
        if labels.shape != (z.shape[0],):
            raise ConfigurationError(
                f"labels must be ({z.shape[0]},), got {labels.shape}"
            )
        condition = concat([z, self.embedding(labels)], axis=1)
        seed = self.input_layer(condition).tanh()
        # The conditioning vector drives every timestep; the LSTM's internal
        # state provides the step-to-step variation. The whole scan stays in
        # stacked (T, B, H) form so the fused sequence kernel applies.
        stacked = self.lstm.forward_sequence(
            repeat_sequence(seed, self.num_steps)
        )
        batch_size = z.shape[0]
        hidden_size = stacked.shape[2]
        flat = stacked.reshape(self.num_steps * batch_size, hidden_size)
        # Bound each normalized step to ±3 RMS units via tanh: real human
        # steps essentially never exceed that, and an unbounded output lets
        # early training produce physically absurd strides that destabilize
        # the adversarial game.
        raw = self.output_layer(flat).reshape(self.num_steps, batch_size, 2)
        steps = raw.tanh() * 3.0
        steps = steps.transpose((1, 0, 2))
        gain = embedding(self.class_gain.reshape(self.num_classes, 1), labels)
        return steps * gain.reshape(batch_size, 1, 1)

    def sample_noise(self, batch_size: int,
                     rng: np.random.Generator) -> Tensor:
        """Draw the standard-normal noise input ``z ~ N(0, I)``."""
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        return Tensor(rng.standard_normal((batch_size, self.noise_dim)))

    def generate_steps(self, batch_size: int, labels: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
        """Inference helper: normalized steps as a plain numpy array."""
        was_training = self.training
        self.eval()
        try:
            output = self.forward(self.sample_noise(batch_size, rng), labels)
        finally:
            if was_training:
                self.train()
        return output.numpy()
