"""Turning generated step sequences into trajectories.

The generator works in normalized step space; the sampler rescales by the
training dataset's RMS step, integrates to positions, and centers the
result — producing the shape-only trajectories the reflector controller
places into its coverage.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gan.generator import TrajectoryGenerator
from repro.types import Trajectory

__all__ = ["TrajectorySampler", "steps_to_trajectory"]


def steps_to_trajectory(steps: np.ndarray, *, scale: float, dt: float,
                        label: int | None = None) -> Trajectory:
    """Integrate a ``(T, 2)`` step sequence into a centered trajectory."""
    steps = np.asarray(steps, dtype=float)
    if steps.ndim != 2 or steps.shape[1] != 2:
        raise ConfigurationError(f"steps must be (T, 2), got {steps.shape}")
    if scale <= 0 or dt <= 0:
        raise ConfigurationError("scale and dt must be positive")
    positions = np.vstack([np.zeros((1, 2), dtype=np.float64), np.cumsum(steps * scale, axis=0)])
    trajectory = Trajectory(positions, dt=dt, label=label)
    return trajectory.centered()


class TrajectorySampler:
    """Draws trajectories from a trained generator.

    Args:
        generator: a (trained) :class:`TrajectoryGenerator`.
        step_scale: the training dataset's RMS step (un-normalization).
        dt: sampling interval of the produced trajectories.
    """

    def __init__(self, generator: TrajectoryGenerator, *, step_scale: float,
                 dt: float) -> None:
        if step_scale <= 0 or dt <= 0:
            raise ConfigurationError("step_scale and dt must be positive")
        self.generator = generator
        self.step_scale = step_scale
        self.dt = dt

    def sample(self, count: int, *, label: int | None = None,
               rng: np.random.Generator | None = None) -> list[Trajectory]:
        """Sample ``count`` trajectories.

        Args:
            count: trajectories to draw.
            label: fixed range class; random classes when ``None`` —
                the conditional knob of the cGAN (Sec. 6).
            rng: noise source (fixed default seed when omitted).
        """
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        if rng is None:
            rng = np.random.default_rng(0)
        if label is None:
            labels = rng.integers(0, self.generator.num_classes, count)
        else:
            if not 0 <= label < self.generator.num_classes:
                raise ConfigurationError(
                    f"label {label} outside [0, {self.generator.num_classes})"
                )
            labels = np.full(count, label, dtype=np.int64)
        steps = self.generator.generate_steps(count, labels, rng)
        return [
            steps_to_trajectory(steps[i], scale=self.step_scale, dt=self.dt,
                                label=int(labels[i]))
            for i in range(count)
        ]
