"""cGAN training loop implementing the minimax loss of Eq. 4.

Per Sec. 9.2: Adam, generator learning rate 1e-4, discriminator 2e-4,
mini-batches of 128. The defaults here are scaled for CPU training on the
numpy engine (smaller hidden size and batch); `GanConfig.paper_scale()`
returns the paper's full configuration for completeness.

Stability aids, all standard: one-sided label smoothing on real targets,
gradient-norm clipping, and fresh noise for the generator step.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.errors import TrainingError
from repro.gan.discriminator import TrajectoryDiscriminator
from repro.gan.generator import TrajectoryGenerator
from repro.nn.functional import bce_with_logits
from repro.nn.metrics import observe_op
from repro.nn.optim import Adam
from repro.nn.recurrent import active_sequence_backend
from repro.trajectories.dataset import TrajectoryDataset

__all__ = ["GanConfig", "GanTrainer", "TrainingHistory"]


@dataclasses.dataclass(frozen=True)
class GanConfig:
    """Hyper-parameters for cGAN training.

    Defaults are CPU-sized; ``paper_scale()`` gives the paper's settings.
    """

    noise_dim: int = 16
    hidden_size: int = 64
    embed_dim: int = 8
    feature_dim: int = 32
    num_classes: int = 5
    num_layers: int = 2
    dropout_probability: float = 0.2
    generator_lr: float = 1e-4
    discriminator_lr: float = 2e-4
    batch_size: int = 64
    epochs: int = 10
    label_smoothing: float = 0.9
    clip_norm: float = 5.0
    feature_matching_weight: float = 1.0
    mismatched_label_weight: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise TrainingError("epochs must be >= 1")
        if self.batch_size < 2:
            raise TrainingError("batch_size must be >= 2")
        if not 0.5 < self.label_smoothing <= 1.0:
            raise TrainingError("label_smoothing must be in (0.5, 1]")
        if self.clip_norm <= 0:
            raise TrainingError("clip_norm must be positive")
        if self.feature_matching_weight < 0:
            raise TrainingError("feature_matching_weight must be >= 0")
        if self.mismatched_label_weight < 0:
            raise TrainingError("mismatched_label_weight must be >= 0")

    @staticmethod
    def paper_scale() -> "GanConfig":
        """The configuration reported in Sec. 6/9.2 of the paper.

        Hidden size 512, dropout 0.5, batch 128, lr 1e-4/2e-4. Training this
        on the numpy engine takes hours (the paper used a GPU for 5 hours);
        it exists for fidelity, not for routine runs.
        """
        return GanConfig(noise_dim=64, hidden_size=512, embed_dim=16,
                         feature_dim=64, dropout_probability=0.5,
                         batch_size=128, epochs=100)


@dataclasses.dataclass
class TrainingHistory:
    """Per-step diagnostics collected during training."""

    discriminator_losses: list[float] = dataclasses.field(default_factory=list)
    generator_losses: list[float] = dataclasses.field(default_factory=list)
    real_scores: list[float] = dataclasses.field(default_factory=list)
    fake_scores: list[float] = dataclasses.field(default_factory=list)

    def summary(self) -> dict[str, float]:
        """Means over the last quarter of training (the settled regime)."""
        if not self.discriminator_losses:
            raise TrainingError("no training steps recorded")
        tail = max(len(self.discriminator_losses) // 4, 1)
        return {
            "discriminator_loss": float(np.mean(self.discriminator_losses[-tail:])),
            "generator_loss": float(np.mean(self.generator_losses[-tail:])),
            "real_score": float(np.mean(self.real_scores[-tail:])),
            "fake_score": float(np.mean(self.fake_scores[-tail:])),
        }


class GanTrainer:
    """Owns the generator/discriminator pair and runs adversarial training."""

    def __init__(self, dataset: TrajectoryDataset,
                 config: GanConfig | None = None) -> None:
        self.config = config if config is not None else GanConfig()
        self.dataset = dataset
        self.step_scale = dataset.step_scale()
        num_steps = dataset.num_points - 1
        rng = np.random.default_rng(self.config.seed)
        self.rng = rng
        self.generator = TrajectoryGenerator(
            noise_dim=self.config.noise_dim,
            hidden_size=self.config.hidden_size,
            embed_dim=self.config.embed_dim,
            num_steps=num_steps,
            num_classes=self.config.num_classes,
            num_layers=self.config.num_layers,
            dropout_probability=self.config.dropout_probability,
            rng=rng,
        )
        self.discriminator = TrajectoryDiscriminator(
            hidden_size=self.config.hidden_size,
            embed_dim=self.config.embed_dim,
            feature_dim=self.config.feature_dim,
            num_classes=self.config.num_classes,
            dropout_probability=self.config.dropout_probability,
            rng=rng,
        )
        self._initialize_class_gains()
        self.generator_optimizer = Adam(self.generator.parameters(),
                                        self.config.generator_lr)
        self.discriminator_optimizer = Adam(self.discriminator.parameters(),
                                            self.config.discriminator_lr)
        self.history = TrainingHistory()

    def _initialize_class_gains(self) -> None:
        """Seed the generator's per-class gain from dataset statistics.

        The gain for class ``c`` starts at the RMS step of class-``c``
        trajectories relative to the dataset-wide RMS step, so conditional
        sampling produces the right motion-range regime from step one;
        training refines the values from there.
        """
        labels = self.dataset.labels()
        steps = self.dataset.steps_array()
        gains = np.ones(self.config.num_classes, dtype=np.float64)
        for label in range(self.config.num_classes):
            mask = labels == label
            if not np.any(mask):
                continue
            class_rms = float(np.sqrt(np.mean(steps[mask] ** 2)))
            gains[label] = max(class_rms / self.step_scale, 1e-3)
        # Cast into the parameter's dtype: assigning the float64 statistics
        # directly would silently re-widen a float32-policy parameter.
        self.generator.class_gain.data = gains.astype(
            self.generator.class_gain.data.dtype
        )

    def _discriminator_step(self, real_steps: np.ndarray,
                            labels: np.ndarray) -> tuple[float, float, float]:
        started = time.perf_counter()
        batch_size = real_steps.shape[0]
        fake_labels = self.rng.integers(0, self.config.num_classes, batch_size)
        noise = self.generator.sample_noise(batch_size, self.rng)
        fake_steps = self.generator(noise, fake_labels).detach()

        self.discriminator_optimizer.zero_grad()
        real_logits = self.discriminator(real_steps, labels)
        fake_logits = self.discriminator(fake_steps, fake_labels)
        real_targets = np.full(real_logits.shape, self.config.label_smoothing,
                               dtype=real_logits.data.dtype)
        fake_targets = np.zeros(fake_logits.shape,
                                dtype=fake_logits.data.dtype)
        loss = (bce_with_logits(real_logits, real_targets)
                + bce_with_logits(fake_logits, fake_targets))
        if self.config.mismatched_label_weight > 0:
            # Real trajectories with WRONG labels are negatives too: this
            # is what forces the discriminator to check label/range
            # consistency, and hence the generator to honor the condition.
            wrong_labels = (labels + self.rng.integers(
                1, self.config.num_classes, batch_size)) % self.config.num_classes
            mismatched_logits = self.discriminator(real_steps, wrong_labels)
            loss = loss + self.config.mismatched_label_weight * bce_with_logits(
                mismatched_logits,
                np.zeros(mismatched_logits.shape,
                         dtype=mismatched_logits.data.dtype))
        loss.backward()
        self.discriminator_optimizer.clip_gradients(self.config.clip_norm)
        self.discriminator_optimizer.step()

        real_score = float(1.0 / (1.0 + np.exp(-real_logits.data)).mean())
        fake_score = float(1.0 / (1.0 + np.exp(-fake_logits.data)).mean())
        observe_op("gan.discriminator_step", active_sequence_backend(),
                   time.perf_counter() - started)
        return float(loss.data), real_score, fake_score

    def _generator_step(self, real_steps: np.ndarray,
                        real_labels: np.ndarray) -> float:
        started = time.perf_counter()
        batch_size = real_steps.shape[0]
        # Condition the fake batch on the real batch's labels so the
        # feature-matching targets compare like with like.
        labels = real_labels
        noise = self.generator.sample_noise(batch_size, self.rng)

        self.generator_optimizer.zero_grad()
        self.discriminator.zero_grad()
        fake_steps = self.generator(noise, labels)
        logits = self.discriminator(fake_steps, labels)
        # Non-saturating generator loss: maximize log D(G(z)).
        loss = bce_with_logits(
            logits, np.ones(logits.shape, dtype=logits.data.dtype))
        if self.config.feature_matching_weight > 0:
            # Feature matching (Salimans et al. 2016): align the mean
            # discriminator features of fake and real batches. Keeps the
            # generator improving after the adversarial signal saturates.
            fake_features = self.discriminator.features(fake_steps, labels)
            real_features = self.discriminator.features(real_steps, labels)
            matching = (fake_features.mean(axis=0)
                        - real_features.detach().mean(axis=0)).pow(2.0).sum()
            loss = loss + self.config.feature_matching_weight * matching
        loss.backward()
        self.generator_optimizer.clip_gradients(self.config.clip_norm)
        self.generator_optimizer.step()
        observe_op("gan.generator_step", active_sequence_backend(),
                   time.perf_counter() - started)
        return float(loss.data)

    def train(self, *, epochs: int | None = None,
              progress: bool = False) -> TrainingHistory:
        """Run adversarial training; returns the accumulated history."""
        if epochs is None:
            epochs = self.config.epochs
        if epochs < 1:
            raise TrainingError("epochs must be >= 1")
        self.generator.train()
        self.discriminator.train()
        for epoch in range(epochs):
            for real_steps, labels in self.dataset.batches(
                    self.config.batch_size, self.rng, scale=self.step_scale):
                d_loss, real_score, fake_score = self._discriminator_step(
                    real_steps, labels)
                g_loss = self._generator_step(real_steps, labels)
                self.history.discriminator_losses.append(d_loss)
                self.history.generator_losses.append(g_loss)
                self.history.real_scores.append(real_score)
                self.history.fake_scores.append(fake_score)
                if not np.isfinite(d_loss) or not np.isfinite(g_loss):
                    raise TrainingError(
                        f"training diverged at epoch {epoch}: "
                        f"d_loss={d_loss}, g_loss={g_loss}"
                    )
            if progress:
                summary = self.history.summary()
                print(f"epoch {epoch + 1}/{epochs}: "
                      f"D={summary['discriminator_loss']:.3f} "
                      f"G={summary['generator_loss']:.3f} "
                      f"D(real)={summary['real_score']:.2f} "
                      f"D(fake)={summary['fake_score']:.2f}")
        return self.history
