"""Planar geometry helpers: angles, rigid alignment, and room containment.

The paper evaluates spoofing accuracy *modulo translation and rotation* of
the whole trajectory (Sec. 11.1), so the rigid (Kabsch) alignment here is a
load-bearing piece of the metrics pipeline, not a convenience.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "wrap_angle",
    "angle_difference",
    "unit_vector",
    "rigid_align",
    "RigidTransform",
    "Rectangle",
]


def wrap_angle(angle: float | np.ndarray) -> float | np.ndarray:
    """Wrap an angle (radians) into [-pi, pi)."""
    return (np.asarray(angle) + np.pi) % (2.0 * np.pi) - np.pi


def angle_difference(a: float | np.ndarray, b: float | np.ndarray) -> float | np.ndarray:
    """Smallest signed difference a - b, wrapped into [-pi, pi)."""
    return wrap_angle(np.asarray(a) - np.asarray(b))


def unit_vector(angle: float) -> np.ndarray:
    """Unit vector at ``angle`` radians from the +x axis."""
    return np.array([math.cos(angle), math.sin(angle)])


class RigidTransform:
    """A 2-D rotation + translation: ``y = R @ x + t``."""

    def __init__(self, rotation: np.ndarray, translation: np.ndarray) -> None:
        rotation = np.asarray(rotation, dtype=float)
        translation = np.asarray(translation, dtype=float)
        if rotation.shape != (2, 2):
            raise ConfigurationError("rotation must be a 2x2 matrix")
        if translation.shape != (2,):
            raise ConfigurationError("translation must be a length-2 vector")
        self.rotation = rotation
        self.translation = translation

    @property
    def angle(self) -> float:
        """Rotation angle in radians."""
        return math.atan2(self.rotation[1, 0], self.rotation[0, 0])

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Apply the transform to an ``(N, 2)`` array of points."""
        pts = np.asarray(points, dtype=float)
        return pts @ self.rotation.T + self.translation

    def inverse(self) -> "RigidTransform":
        """Return the inverse transform."""
        rot_inv = self.rotation.T
        return RigidTransform(rot_inv, -rot_inv @ self.translation)

    @staticmethod
    def identity() -> "RigidTransform":
        """Return the identity transform."""
        return RigidTransform(np.eye(2), np.zeros(2))


def rigid_align(source: np.ndarray, target: np.ndarray) -> RigidTransform:
    """Find the rigid transform mapping ``source`` onto ``target``.

    This is the Kabsch algorithm restricted to proper rotations (no
    reflection, no scaling): it minimizes ``sum ||R @ s_i + t - t_i||^2``.
    Both inputs must be ``(N, 2)`` arrays with matching N >= 2.
    """
    src = np.asarray(source, dtype=float)
    tgt = np.asarray(target, dtype=float)
    if src.shape != tgt.shape or src.ndim != 2 or src.shape[1] != 2:
        raise ConfigurationError(
            f"rigid_align needs matching (N, 2) arrays, got {src.shape} and {tgt.shape}"
        )
    if src.shape[0] < 2:
        raise ConfigurationError("rigid_align needs at least 2 points")

    src_mean = src.mean(axis=0)
    tgt_mean = tgt.mean(axis=0)
    cov = (tgt - tgt_mean).T @ (src - src_mean)
    u, _, vt = np.linalg.svd(cov)
    det = np.linalg.det(u @ vt)
    correction = np.diag([1.0, math.copysign(1.0, det)])
    rotation = u @ correction @ vt
    translation = tgt_mean - rotation @ src_mean
    return RigidTransform(rotation, translation)


class Rectangle:
    """An axis-aligned rectangle, used for room footprints (Fig. 8)."""

    def __init__(self, x_min: float, y_min: float, x_max: float, y_max: float) -> None:
        if x_max <= x_min or y_max <= y_min:
            raise ConfigurationError(
                f"degenerate rectangle ({x_min}, {y_min}, {x_max}, {y_max})"
            )
        self.x_min = float(x_min)
        self.y_min = float(y_min)
        self.x_max = float(x_max)
        self.y_max = float(y_max)

    @staticmethod
    def from_size(width: float, depth: float,
                  origin: Sequence[float] = (0.0, 0.0)) -> "Rectangle":
        """Rectangle of the given size with its lower-left corner at ``origin``."""
        ox, oy = (float(v) for v in origin)
        return Rectangle(ox, oy, ox + width, oy + depth)

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def depth(self) -> float:
        return self.y_max - self.y_min

    @property
    def center(self) -> np.ndarray:
        return np.array([(self.x_min + self.x_max) / 2.0,
                         (self.y_min + self.y_max) / 2.0])

    @property
    def area(self) -> float:
        return self.width * self.depth

    def contains(self, point: Sequence[float], margin: float = 0.0) -> bool:
        """Whether ``point`` lies inside, shrunk by ``margin`` on each side."""
        x, y = (float(v) for v in point)
        return (self.x_min + margin <= x <= self.x_max - margin
                and self.y_min + margin <= y <= self.y_max - margin)

    def contains_all(self, points: np.ndarray, margin: float = 0.0) -> bool:
        """Whether every row of an ``(N, 2)`` array lies inside."""
        pts = np.asarray(points, dtype=float)
        return bool(
            np.all(pts[:, 0] >= self.x_min + margin)
            and np.all(pts[:, 0] <= self.x_max - margin)
            and np.all(pts[:, 1] >= self.y_min + margin)
            and np.all(pts[:, 1] <= self.y_max - margin)
        )

    def clamp(self, point: Sequence[float], margin: float = 0.0) -> np.ndarray:
        """Project ``point`` onto the rectangle shrunk by ``margin``."""
        x, y = (float(v) for v in point)
        x = min(max(x, self.x_min + margin), self.x_max - margin)
        y = min(max(y, self.y_min + margin), self.y_max - margin)
        return np.array([x, y])

    def clamp_all(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Project every row of an ``(N, 2)`` array into the rectangle."""
        pts = np.array(points, dtype=float)
        pts[:, 0] = np.clip(pts[:, 0], self.x_min + margin, self.x_max - margin)
        pts[:, 1] = np.clip(pts[:, 1], self.y_min + margin, self.y_max - margin)
        return pts

    def sample_interior(self, rng: np.random.Generator,
                        margin: float = 0.0) -> np.ndarray:
        """Draw a uniform random point from the shrunk interior."""
        x = rng.uniform(self.x_min + margin, self.x_max - margin)
        y = rng.uniform(self.y_min + margin, self.y_max - margin)
        return np.array([x, y])
