"""Evaluation metrics: FID, alignment errors, CDFs, and statistics."""

from repro.metrics.alignment import SpoofingErrors, aligned_trajectory, spoofing_errors
from repro.metrics.errors import empirical_cdf, median_and_percentiles
from repro.metrics.fid import (
    fid_score,
    frechet_distance,
    normalized_fid_scores,
    trajectory_features,
)
from repro.metrics.stats import chi_square_independence, ks_two_sample

__all__ = [
    "SpoofingErrors",
    "aligned_trajectory",
    "chi_square_independence",
    "empirical_cdf",
    "fid_score",
    "frechet_distance",
    "ks_two_sample",
    "median_and_percentiles",
    "normalized_fid_scores",
    "spoofing_errors",
    "trajectory_features",
]
