"""Spoofing-error metrics, evaluated modulo translation and rotation.

Sec. 11.1: "the goal of RF-Protect is to spoof the relative trajectory
produced by the cGAN rather than the absolute location ... we measure the
metrics below modulo translation and rotation of the entire trajectory."
The rigid alignment is solved with the Kabsch algorithm; the distance and
angle errors are then measured in the radar's polar frame, which is what
Figs. 11a/11b plot.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry import rigid_align, wrap_angle
from repro.types import Trajectory

__all__ = ["SpoofingErrors", "aligned_trajectory", "spoofing_errors"]


def _common_length(measured: Trajectory, intended: Trajectory) -> int:
    return min(len(measured), len(intended))


def aligned_trajectory(measured: Trajectory,
                       intended: Trajectory) -> tuple[Trajectory, Trajectory]:
    """Resample both trajectories to a common length and rigidly align.

    Returns ``(aligned_measured, resampled_intended)``; the measured
    trajectory is mapped onto the intended one's frame by the best
    rotation + translation (no scaling — a scale error is a real spoofing
    error and must remain visible).
    """
    n = _common_length(measured, intended)
    if n < 2:
        raise ConfigurationError("alignment needs trajectories with >= 2 points")
    measured_r = measured.resampled(n)
    intended_r = intended.resampled(n)
    transform = rigid_align(measured_r.points, intended_r.points)
    aligned = measured_r.replace(points=transform.apply(measured_r.points))
    return aligned, intended_r


@dataclasses.dataclass(frozen=True)
class SpoofingErrors:
    """Per-point spoofing errors of one trajectory (Fig. 11 inputs).

    Attributes:
        distance_errors: |polar radius difference| from the radar, meters.
        angle_errors: |bearing difference| from the radar, radians.
        location_errors: 2-D point distance after alignment, meters.
    """

    distance_errors: np.ndarray
    angle_errors: np.ndarray
    location_errors: np.ndarray

    def medians(self) -> dict[str, float]:
        """Median of each error, with the angle converted to degrees."""
        return {
            "distance_m": float(np.median(self.distance_errors)),
            "angle_deg": float(np.degrees(np.median(self.angle_errors))),
            "location_m": float(np.median(self.location_errors)),
        }


def spoofing_errors(measured: Trajectory, intended: Trajectory,
                    radar_position: np.ndarray) -> SpoofingErrors:
    """Compute Fig. 11's three error families for one spoofed trajectory.

    The measured trajectory is first rigidly aligned to the intended one
    (the paper's "modulo translation and rotation"); remaining differences
    are decomposed into polar radius and bearing relative to the radar,
    plus the raw 2-D distance.
    """
    radar = np.asarray(radar_position, dtype=float)
    if radar.shape != (2,):
        raise ConfigurationError("radar_position must be (x, y)")
    aligned, reference = aligned_trajectory(measured, intended)

    rel_measured = aligned.points - radar
    rel_intended = reference.points - radar
    radius_measured = np.linalg.norm(rel_measured, axis=1)
    radius_intended = np.linalg.norm(rel_intended, axis=1)
    bearing_measured = np.arctan2(rel_measured[:, 1], rel_measured[:, 0])
    bearing_intended = np.arctan2(rel_intended[:, 1], rel_intended[:, 0])

    return SpoofingErrors(
        distance_errors=np.abs(radius_measured - radius_intended),
        angle_errors=np.abs(wrap_angle(bearing_measured - bearing_intended)),
        location_errors=np.linalg.norm(aligned.points - reference.points, axis=1),
    )
