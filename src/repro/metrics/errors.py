"""Empirical CDF helpers for the error plots (Fig. 11)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["empirical_cdf", "median_and_percentiles"]


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted values and their empirical CDF levels in (0, 1].

    The i-th level is ``(i + 1) / n`` so the largest value maps to 1.0 —
    the convention the paper's CDF plots use.
    """
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size == 0:
        raise ConfigurationError("empirical_cdf needs at least one value")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError("empirical_cdf values must be finite")
    ordered = np.sort(arr)
    levels = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, levels


def median_and_percentiles(values: np.ndarray,
                           percentiles: tuple[float, ...] = (50.0, 90.0, 99.0)
                           ) -> dict[str, float]:
    """Named percentile summary of an error sample."""
    arr = np.asarray(values, dtype=float).reshape(-1)
    if arr.size == 0:
        raise ConfigurationError("need at least one value")
    if any(not 0 <= p <= 100 for p in percentiles):
        raise ConfigurationError("percentiles must lie in [0, 100]")
    return {f"p{p:g}": float(np.percentile(arr, p)) for p in percentiles}
