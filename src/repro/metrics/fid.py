"""Fréchet distance between trajectory distributions (Fig. 12).

The paper evaluates its cGAN with the Fréchet Inception Distance. Image FID
embeds samples with an Inception network; trajectories have no canonical
pretrained embedding, so this implementation uses a fixed *kinematic
feature* embedding — step-length, turning, straightness, and velocity
autocorrelation statistics that capture exactly the "walks like a human"
properties the discriminator judges. The Fréchet (2-Wasserstein between
Gaussian fits) computation on top is the standard one.

Scores are reported *normalized* exactly as in the paper: divided by the
FID between two disjoint halves of the real dataset, so "Real" scores 1.0
by construction.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.errors import ConfigurationError
from repro.trajectories.dataset import TrajectoryDataset
from repro.types import Trajectory

__all__ = ["fid_score", "frechet_distance", "normalized_fid_scores",
           "trajectory_features"]

NUM_FEATURES = 12


def trajectory_features(trajectory: Trajectory) -> np.ndarray:
    """A 12-dim kinematic embedding of one trajectory.

    Features: step-length mean/std/max, speed std, turning-angle
    mean-absolute/std, motion range, path length, straightness (net
    displacement over path length), step autocorrelations at lags 1 and 3,
    and the fraction of near-stationary steps.
    """
    steps = trajectory.displacements()
    if steps.shape[0] < 4:
        raise ConfigurationError("feature extraction needs >= 5 points")
    lengths = np.linalg.norm(steps, axis=1)
    speeds = lengths / trajectory.dt
    turning = trajectory.turning_angles()
    path = float(lengths.sum())
    net = float(np.linalg.norm(trajectory.points[-1] - trajectory.points[0]))
    straightness = net / path if path > 1e-9 else 0.0

    def step_autocorrelation(lag: int) -> float:
        a = steps[:-lag].reshape(-1)
        b = steps[lag:].reshape(-1)
        denom = float(np.linalg.norm(a) * np.linalg.norm(b))
        if denom < 1e-12:
            return 0.0
        return float(a @ b / denom)

    stationary_fraction = float(np.mean(lengths < 0.02))
    return np.array([
        float(lengths.mean()),
        float(lengths.std()),
        float(lengths.max()),
        float(speeds.std()),
        float(np.abs(turning).mean()),
        float(turning.std()),
        trajectory.motion_range(),
        path,
        straightness,
        step_autocorrelation(1),
        step_autocorrelation(3),
        stationary_fraction,
    ])


def _feature_matrix(dataset: TrajectoryDataset) -> np.ndarray:
    return np.vstack([trajectory_features(t) for t in dataset])


def frechet_distance(mean_a: np.ndarray, cov_a: np.ndarray,
                     mean_b: np.ndarray, cov_b: np.ndarray) -> float:
    """Fréchet distance between two Gaussians.

    ``||mu_a - mu_b||^2 + Tr(C_a + C_b - 2 (C_a C_b)^{1/2})`` with a small
    diagonal regularizer for numerical stability (standard FID practice).
    """
    mean_a = np.asarray(mean_a, dtype=float)
    mean_b = np.asarray(mean_b, dtype=float)
    cov_a = np.atleast_2d(np.asarray(cov_a, dtype=float))
    cov_b = np.atleast_2d(np.asarray(cov_b, dtype=float))
    if mean_a.shape != mean_b.shape or cov_a.shape != cov_b.shape:
        raise ConfigurationError("Gaussian parameter shapes must match")

    epsilon = 1e-8 * np.eye(cov_a.shape[0])
    covmean = scipy.linalg.sqrtm((cov_a + epsilon) @ (cov_b + epsilon))
    if np.iscomplexobj(covmean):
        covmean = covmean.real
    diff = mean_a - mean_b
    value = float(diff @ diff + np.trace(cov_a + cov_b - 2.0 * covmean))
    return max(value, 0.0)


def fid_score(candidate: TrajectoryDataset,
              reference: TrajectoryDataset) -> float:
    """FID between a candidate trajectory set and a reference set."""
    if len(candidate) < 2 or len(reference) < 2:
        raise ConfigurationError("FID needs at least 2 trajectories per set")
    features_a = _feature_matrix(candidate)
    features_b = _feature_matrix(reference)
    # Normalize by the reference feature scales so no single unit dominates.
    scale = features_b.std(axis=0) + 1e-6
    features_a = features_a / scale
    features_b = features_b / scale
    return frechet_distance(
        features_a.mean(axis=0), np.cov(features_a, rowvar=False),
        features_b.mean(axis=0), np.cov(features_b, rowvar=False),
    )


def normalized_fid_scores(candidates: dict[str, TrajectoryDataset],
                          real: TrajectoryDataset,
                          rng: np.random.Generator) -> dict[str, float]:
    """Fig. 12 scores: each candidate's FID over the real-vs-real FID.

    ``real`` is split in half; one half is the scoring reference, and the
    FID between the halves is the normalizer, so a hypothetical perfect
    generator scores ~1.0 and the entry ``"Real"`` is exactly 1.0.
    """
    if len(real) < 8:
        raise ConfigurationError("need >= 8 real trajectories to normalize FID")
    half_a, half_b = real.split(0.5, rng)
    baseline = fid_score(half_a, half_b)
    if baseline <= 0:
        raise ConfigurationError(
            "degenerate real split: zero self-FID (identical halves?)"
        )
    scores = {"Real": 1.0}
    for name, dataset in candidates.items():
        scores[name] = fid_score(dataset, half_b) / baseline
    return scores
