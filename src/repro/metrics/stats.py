"""Statistical tests used by the evaluation.

The user-study analysis (Table 1) runs a Pearson chi-square test of
independence between a trajectory's trueness and its perceived trueness;
a two-sample Kolmogorov-Smirnov test is provided for distribution-level
comparisons elsewhere in the benches.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.stats

from repro.errors import ConfigurationError

__all__ = ["TestResult", "chi_square_independence", "ks_two_sample"]


@dataclasses.dataclass(frozen=True)
class TestResult:
    """Outcome of a hypothesis test."""

    statistic: float
    p_value: float
    degrees_of_freedom: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the null hypothesis is rejected at level ``alpha``."""
        if not 0 < alpha < 1:
            raise ConfigurationError("alpha must be in (0, 1)")
        return self.p_value < alpha


def chi_square_independence(table: np.ndarray) -> TestResult:
    """Pearson chi-square test of independence on a contingency table.

    Args:
        table: ``(rows, cols)`` array of observed counts (e.g. Table 1's
            2x2 of trueness x perceived-trueness).

    Returns:
        Test statistic, p-value, and degrees of freedom. A *high* p-value
        on Table 1 is the paper's desired outcome: perception carries no
        information about trueness.
    """
    observed = np.asarray(table, dtype=float)
    if observed.ndim != 2 or observed.shape[0] < 2 or observed.shape[1] < 2:
        raise ConfigurationError("contingency table must be at least 2x2")
    if np.any(observed < 0):
        raise ConfigurationError("counts must be non-negative")
    total = observed.sum()
    if total == 0:
        raise ConfigurationError("contingency table is empty")

    row_sums = observed.sum(axis=1, keepdims=True)
    col_sums = observed.sum(axis=0, keepdims=True)
    expected = row_sums @ col_sums / total
    if np.any(expected == 0):
        raise ConfigurationError("a row or column of the table is all zeros")

    statistic = float(((observed - expected) ** 2 / expected).sum())
    dof = (observed.shape[0] - 1) * (observed.shape[1] - 1)
    p_value = float(scipy.stats.chi2.sf(statistic, dof))
    return TestResult(statistic=statistic, p_value=p_value,
                      degrees_of_freedom=dof)


def ks_two_sample(sample_a: np.ndarray, sample_b: np.ndarray) -> TestResult:
    """Two-sample Kolmogorov-Smirnov test (two-sided)."""
    a = np.asarray(sample_a, dtype=float).reshape(-1)
    b = np.asarray(sample_b, dtype=float).reshape(-1)
    if a.size < 2 or b.size < 2:
        raise ConfigurationError("KS test needs >= 2 samples per side")
    result = scipy.stats.ks_2samp(a, b)
    return TestResult(statistic=float(result.statistic),
                      p_value=float(result.pvalue),
                      degrees_of_freedom=0)
