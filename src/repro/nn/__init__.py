"""A from-scratch numpy autograd engine and neural-network toolkit.

The paper trains its trajectory cGAN in PyTorch; this environment has no
deep-learning framework, so the substrate is built here: a reverse-mode
autodiff :class:`~repro.nn.tensor.Tensor`, differentiable ops
(`functional`), layers including LSTM and bidirectional LSTM (`layers`,
`recurrent`), optimizers (`optim`), initializers (`init`) and state
(de)serialization (`serialization`). Everything is plain numpy and is
validated against numerical gradients in the test suite.
"""

from repro.nn import functional
from repro.nn.layers import Dropout, Embedding, Linear, Module, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.recurrent import BiLSTM, LSTM, LSTMCell
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor

__all__ = [
    "Adam",
    "BiLSTM",
    "Dropout",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "Linear",
    "Module",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "functional",
    "load_state",
    "save_state",
]
