"""A from-scratch numpy autograd engine and neural-network toolkit.

The paper trains its trajectory cGAN in PyTorch; this environment has no
deep-learning framework, so the substrate is built here: a reverse-mode
autodiff :class:`~repro.nn.tensor.Tensor`, differentiable ops
(`functional`), layers including LSTM and bidirectional LSTM (`layers`,
`recurrent`), optimizers (`optim`), initializers (`init`) and state
(de)serialization (`serialization`). Everything is plain numpy and is
validated against numerical gradients in the test suite.

Two runtime policies govern execution, both env-configurable through
:mod:`repro.config`: the recurrent sequence backend
(``RF_PROTECT_NN_BACKEND=naive|fused``, see
:data:`~repro.nn.recurrent.SEQUENCE_KERNELS`) and the leaf/parameter dtype
(``RF_PROTECT_NN_DTYPE=float32|float64``, see
:func:`~repro.nn.tensor.dtype_scope`). Per-op wall-time instrumentation
lives in :mod:`repro.nn.metrics`.
"""

from repro.nn import functional
from repro.nn.layers import Dropout, Embedding, Linear, Module, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.metrics import nn_metrics
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.recurrent import (
    SEQUENCE_KERNELS,
    BiLSTM,
    LSTM,
    LSTMCell,
    active_sequence_backend,
    sequence_backend_scope,
    set_sequence_backend,
)
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import (
    Tensor,
    default_dtype,
    dtype_scope,
    resolve_dtype,
    set_default_dtype,
)

__all__ = [
    "Adam",
    "BiLSTM",
    "Dropout",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "Linear",
    "Module",
    "Optimizer",
    "ReLU",
    "SEQUENCE_KERNELS",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "active_sequence_backend",
    "default_dtype",
    "dtype_scope",
    "functional",
    "load_state",
    "nn_metrics",
    "resolve_dtype",
    "save_state",
    "sequence_backend_scope",
    "set_default_dtype",
    "set_sequence_backend",
]
