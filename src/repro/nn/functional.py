"""Structural and neural-network operations on :class:`Tensor`.

Everything here builds autograd graph nodes: concatenation/stacking,
embedding lookup, dropout, the fused recurrent ops, and the loss functions
used by the cGAN (binary cross-entropy in the numerically-stable logits
form, Eq. 4 of the paper, plus mean-squared error for diagnostics).

The two recurrent ops deserve a note on granularity. :func:`lstm_cell` is
the *per-step* fusion: one graph node per timestep covering the gate
nonlinearities and state update. :func:`lstm_sequence` is the *per-layer*
fusion: the whole ``(T, B, D)`` scan — input projection batched as a single
``(T·B, D) @ (D, 4H)`` GEMM up front, per-step recurrence over preallocated
gate/state buffers, and one hand-written BPTT backward — collapsed into a
single graph node. The per-step path remains the pinned equivalence
reference (``RF_PROTECT_NN_BACKEND=naive``); the property suite holds the
two within dtype-matched tolerances.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import GradientError
from repro.nn.tensor import Tensor, TensorLike, as_tensor

__all__ = [
    "bce_with_logits",
    "concat",
    "dropout",
    "embedding",
    "flip_sequence",
    "lstm_cell",
    "lstm_sequence",
    "mse_loss",
    "repeat_sequence",
    "softplus",
    "stack",
]


def concat(tensors: Sequence[TensorLike], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    if not tensors:
        raise GradientError("concat needs at least one tensor")
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor._result(data, tuple(tensors), "concat")
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward() -> None:
        if out.grad is None:
            return
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * out.grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(out.grad[tuple(index)])

    out._backward = backward
    return out


def stack(tensors: Sequence[TensorLike], axis: int = 0) -> Tensor:
    """Stack equal-shaped tensors along a new ``axis`` (differentiable)."""
    if not tensors:
        raise GradientError("stack needs at least one tensor")
    tensors = [as_tensor(t) for t in tensors]
    first_shape = tensors[0].shape
    if any(t.shape != first_shape for t in tensors):
        raise GradientError("stack needs tensors of identical shape")
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor._result(data, tuple(tensors), "stack")

    def backward() -> None:
        if out.grad is None:
            return
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            tensor._accumulate(np.squeeze(grad, axis=axis))

    out._backward = backward
    return out


def repeat_sequence(x: Tensor, repeats: int) -> Tensor:
    """Tile a ``(B, D)`` tensor into a ``(T, B, D)`` sequence.

    The differentiable equivalent of ``stack([x] * repeats)`` in one graph
    node with an O(1)-node backward (the gradient sums over the new axis);
    the generator uses it to drive every timestep with the same
    conditioning vector.
    """
    x = as_tensor(x)
    if repeats < 1:
        raise GradientError(f"repeats must be >= 1, got {repeats}")
    data = np.broadcast_to(x.data, (repeats,) + x.shape).copy()
    out = Tensor._result(data, (x,), "repeat_sequence")

    def backward() -> None:
        if out.grad is None:
            return
        x._accumulate(out.grad.sum(axis=0))

    out._backward = backward
    return out


def flip_sequence(x: Tensor) -> Tensor:
    """Reverse a sequence tensor along its leading (time) axis."""
    x = as_tensor(x)
    if x.ndim < 1:
        raise GradientError("flip_sequence needs at least 1 dimension")
    out = Tensor._result(np.ascontiguousarray(x.data[::-1]), (x,),
                         "flip_sequence")

    def backward() -> None:
        if out.grad is None:
            return
        x._accumulate(out.grad[::-1])

    out._backward = backward
    return out


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup into an embedding matrix (differentiable w.r.t. weight).

    Args:
        weight: ``(num_embeddings, dim)`` parameter tensor.
        indices: integer array of any shape; values index rows of weight.
    """
    weight = as_tensor(weight)
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise GradientError("embedding indices must be integers")
    if weight.ndim != 2:
        raise GradientError("embedding weight must be 2-D")
    if idx.size and (idx.min() < 0 or idx.max() >= weight.shape[0]):
        raise GradientError(
            f"embedding index out of range [0, {weight.shape[0]})"
        )
    out = Tensor._result(weight.data[idx], (weight,), "embedding")

    def backward() -> None:
        if out.grad is None:
            return
        grad = np.zeros_like(weight.data)
        np.add.at(grad, idx, out.grad)
        weight._accumulate(grad)

    out._backward = backward
    return out


def dropout(x: Tensor, probability: float, rng: np.random.Generator, *,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero activations with ``probability`` and rescale."""
    if not 0.0 <= probability < 1.0:
        raise GradientError(f"dropout probability must be in [0, 1), got {probability}")
    x = as_tensor(x)
    if not training or probability == 0.0:
        return x
    keep = 1.0 - probability
    mask = ((rng.random(x.shape) < keep) / keep).astype(x.data.dtype)
    out = Tensor._result(x.data * mask, (x,), "dropout")

    def backward() -> None:
        if out.grad is None:
            return
        x._accumulate(out.grad * mask)

    out._backward = backward
    return out


def _stable_sigmoid(values: np.ndarray) -> np.ndarray:
    """The numerically stable logistic used by every gate nonlinearity."""
    return 0.5 * (np.tanh(0.5 * values) + 1.0)


def lstm_cell(gates: Tensor, c_prev: Tensor) -> tuple[Tensor, Tensor]:
    """Fused LSTM cell activations: ``(gates, c_prev) -> (h, c)``.

    ``gates`` is the pre-activation ``(B, 4H)`` block ``[i, f, g, o]``
    (already containing ``x W_ih + h W_hh + b``); this op applies the gate
    nonlinearities and the state update in one graph node with a
    hand-derived backward. Functionally identical to composing sigmoid/tanh
    ops (the test suite checks this), but an order of magnitude fewer graph
    nodes — which dominates runtime for 50-step sequences on small batches.
    """
    gates = as_tensor(gates)
    c_prev = as_tensor(c_prev)
    if gates.ndim != 2 or gates.shape[1] % 4 != 0:
        raise GradientError(f"gates must be (B, 4H), got {gates.shape}")
    hidden = gates.shape[1] // 4
    if c_prev.shape != (gates.shape[0], hidden):
        raise GradientError(
            f"c_prev must be ({gates.shape[0]}, {hidden}), got {c_prev.shape}"
        )

    a = gates.data
    i = _stable_sigmoid(a[:, 0 * hidden: 1 * hidden])
    f = _stable_sigmoid(a[:, 1 * hidden: 2 * hidden])
    g = np.tanh(a[:, 2 * hidden: 3 * hidden])
    o = _stable_sigmoid(a[:, 3 * hidden: 4 * hidden])
    c = f * c_prev.data + i * g
    tanh_c = np.tanh(c)
    h = o * tanh_c

    hc = Tensor._result(np.concatenate([h, c], axis=1), (gates, c_prev), "lstm_cell")

    def backward() -> None:
        if hc.grad is None:
            return
        grad_h = hc.grad[:, :hidden]
        grad_c_out = hc.grad[:, hidden:]
        grad_c = grad_c_out + grad_h * o * (1.0 - tanh_c ** 2)
        grad_gates = np.concatenate(
            [
                grad_c * g * i * (1.0 - i),
                grad_c * c_prev.data * f * (1.0 - f),
                grad_c * i * (1.0 - g ** 2),
                grad_h * tanh_c * o * (1.0 - o),
            ],
            axis=1,
        )
        gates._accumulate(grad_gates)
        c_prev._accumulate(grad_c * f)

    hc._backward = backward
    return hc[:, :hidden], hc[:, hidden:]


def lstm_sequence(inputs: Tensor, w_ih: Tensor, w_hh: Tensor, bias: Tensor,
                  h0: Tensor, c0: Tensor) -> Tensor:
    """One LSTM layer over a whole ``(T, B, D)`` sequence as a single op.

    Forward: the input projection for every timestep is batched into one
    ``(T·B, D) @ (D, 4H)`` GEMM (plus bias), then the recurrence runs
    per-step with preallocated gate/state buffers — the only sequential
    work left is the unavoidable ``h @ W_hh`` chain. Backward is one
    hand-written BPTT pass: a descending scan fills a ``(T, B, 4H)``
    pre-activation-gradient buffer, and all weight/input gradients fall
    out as three whole-sequence GEMMs.

    Args:
        inputs: ``(T, B, D)`` sequence tensor.
        w_ih: ``(D, 4H)`` input projection, gates ordered ``[i, f, g, o]``.
        w_hh: ``(H, 4H)`` recurrent projection.
        bias: ``(4H,)`` gate bias.
        h0: ``(B, H)`` initial hidden state.
        c0: ``(B, H)`` initial cell state.

    Returns:
        ``(T, B, H)`` tensor of per-timestep hidden states.
    """
    inputs = as_tensor(inputs)
    w_ih, w_hh, bias = as_tensor(w_ih), as_tensor(w_hh), as_tensor(bias)
    h0, c0 = as_tensor(h0), as_tensor(c0)
    if inputs.ndim != 3:
        raise GradientError(f"inputs must be (T, B, D), got {inputs.shape}")
    seq_len, batch, in_dim = inputs.shape
    if w_hh.ndim != 2 or w_hh.shape[1] != 4 * w_hh.shape[0]:
        raise GradientError(f"w_hh must be (H, 4H), got {w_hh.shape}")
    hidden = w_hh.shape[0]
    if w_ih.shape != (in_dim, 4 * hidden):
        raise GradientError(
            f"w_ih must be ({in_dim}, {4 * hidden}), got {w_ih.shape}"
        )
    if bias.shape != (4 * hidden,):
        raise GradientError(f"bias must be ({4 * hidden},), got {bias.shape}")
    for name, state in (("h0", h0), ("c0", c0)):
        if state.shape != (batch, hidden):
            raise GradientError(
                f"{name} must be ({batch}, {hidden}), got {state.shape}"
            )

    dtype = np.result_type(inputs.data, w_ih.data, w_hh.data, bias.data,
                           h0.data, c0.data)
    # Batched input projection: one GEMM covers every timestep.
    x_proj = (inputs.data.reshape(seq_len * batch, in_dim) @ w_ih.data
              + bias.data).reshape(seq_len, batch, 4 * hidden)
    gates = np.empty((seq_len, batch, 4 * hidden), dtype=dtype)
    c_all = np.empty((seq_len, batch, hidden), dtype=dtype)
    tanh_c = np.empty((seq_len, batch, hidden), dtype=dtype)
    h_all = np.empty((seq_len, batch, hidden), dtype=dtype)
    h = np.asarray(h0.data, dtype=dtype)
    c = np.asarray(c0.data, dtype=dtype)
    for t in range(seq_len):
        a = x_proj[t] + h @ w_hh.data
        i = _stable_sigmoid(a[:, :hidden])
        f = _stable_sigmoid(a[:, hidden: 2 * hidden])
        g = np.tanh(a[:, 2 * hidden: 3 * hidden])
        o = _stable_sigmoid(a[:, 3 * hidden:])
        c = f * c + i * g
        gates[t, :, :hidden] = i
        gates[t, :, hidden: 2 * hidden] = f
        gates[t, :, 2 * hidden: 3 * hidden] = g
        gates[t, :, 3 * hidden:] = o
        c_all[t] = c
        np.tanh(c, out=tanh_c[t])
        h = o * tanh_c[t]
        h_all[t] = h

    out = Tensor._result(h_all, (inputs, w_ih, w_hh, bias, h0, c0),
                         "lstm_sequence")

    def backward() -> None:
        if out.grad is None:
            return
        started = time.perf_counter()
        grad_out = out.grad
        d_gates = np.empty((seq_len, batch, 4 * hidden), dtype=dtype)
        dh_next = np.zeros((batch, hidden), dtype=dtype)
        dc_next = np.zeros((batch, hidden), dtype=dtype)
        w_hh_t = w_hh.data.T
        for t in range(seq_len - 1, -1, -1):
            i = gates[t, :, :hidden]
            f = gates[t, :, hidden: 2 * hidden]
            g = gates[t, :, 2 * hidden: 3 * hidden]
            o = gates[t, :, 3 * hidden:]
            c_prev = c_all[t - 1] if t > 0 else np.asarray(c0.data,
                                                          dtype=dtype)
            dh = grad_out[t] + dh_next
            dc = dc_next + dh * o * (1.0 - tanh_c[t] ** 2)
            d_gates[t, :, :hidden] = dc * g * i * (1.0 - i)
            d_gates[t, :, hidden: 2 * hidden] = dc * c_prev * f * (1.0 - f)
            d_gates[t, :, 2 * hidden: 3 * hidden] = dc * i * (1.0 - g ** 2)
            d_gates[t, :, 3 * hidden:] = dh * tanh_c[t] * o * (1.0 - o)
            dc_next = dc * f
            dh_next = d_gates[t] @ w_hh_t
        flat_gates = d_gates.reshape(seq_len * batch, 4 * hidden)
        flat_inputs = inputs.data.reshape(seq_len * batch, in_dim)
        inputs._accumulate(
            (flat_gates @ w_ih.data.T).reshape(seq_len, batch, in_dim)
        )
        w_ih._accumulate(flat_inputs.T @ flat_gates)
        # h_prev over the sequence is h_all shifted right by one, h0 first.
        h_prev = np.concatenate(
            [np.asarray(h0.data, dtype=dtype)[None], h_all[:-1]], axis=0
        )
        w_hh._accumulate(h_prev.reshape(seq_len * batch, hidden).T
                         @ flat_gates)
        bias._accumulate(flat_gates.sum(axis=0))
        h0._accumulate(dh_next)
        c0._accumulate(dc_next)
        from repro.nn.metrics import observe_op
        observe_op("lstm_sequence_backward", "fused",
                   time.perf_counter() - started)

    out._backward = backward
    return out


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    x = as_tensor(x)
    data = np.maximum(x.data, 0.0) + np.log1p(np.exp(-np.abs(x.data)))
    out = Tensor._result(data, (x,), "softplus")

    def backward() -> None:
        if out.grad is None:
            return
        sig = _stable_sigmoid(x.data)
        x._accumulate(out.grad * sig)

    out._backward = backward
    return out


def bce_with_logits(logits: Tensor, targets: np.ndarray | Tensor) -> Tensor:
    """Mean binary cross-entropy on raw scores (stable formulation).

    ``loss = mean(softplus(logits) - targets * logits)`` — equivalent to
    sigmoid + BCE but immune to log(0). This is the workhorse of the cGAN
    training loss (Eq. 4).
    """
    logits = as_tensor(logits)
    target_data = (targets.data if isinstance(targets, Tensor)
                   else np.asarray(targets, dtype=logits.data.dtype))
    if target_data.shape != logits.shape:
        raise GradientError(
            f"target shape {target_data.shape} != logits shape {logits.shape}"
        )
    if target_data.size and (target_data.min() < 0 or target_data.max() > 1):
        raise GradientError("BCE targets must lie in [0, 1]")
    per_element = softplus(logits) - logits * Tensor(
        target_data, dtype=target_data.dtype
    )
    return per_element.mean()


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target, like=prediction)
    if target.shape != prediction.shape:
        raise GradientError(
            f"target shape {target.shape} != prediction shape {prediction.shape}"
        )
    return (prediction - target.detach()).pow(2.0).mean()
