"""Structural and neural-network operations on :class:`Tensor`.

Everything here builds autograd graph nodes: concatenation/stacking,
embedding lookup, dropout, and the loss functions used by the cGAN
(binary cross-entropy in the numerically-stable logits form, Eq. 4 of the
paper, plus mean-squared error for diagnostics).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import GradientError
from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "bce_with_logits",
    "concat",
    "dropout",
    "embedding",
    "lstm_cell",
    "mse_loss",
    "softplus",
    "stack",
]


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    if not tensors:
        raise GradientError("concat needs at least one tensor")
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor._result(data, tuple(tensors), "concat")
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward() -> None:
        if out.grad is None:
            return
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * out.grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(out.grad[tuple(index)])

    out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equal-shaped tensors along a new ``axis`` (differentiable)."""
    if not tensors:
        raise GradientError("stack needs at least one tensor")
    tensors = [as_tensor(t) for t in tensors]
    first_shape = tensors[0].shape
    if any(t.shape != first_shape for t in tensors):
        raise GradientError("stack needs tensors of identical shape")
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor._result(data, tuple(tensors), "stack")

    def backward() -> None:
        if out.grad is None:
            return
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            tensor._accumulate(np.squeeze(grad, axis=axis))

    out._backward = backward
    return out


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup into an embedding matrix (differentiable w.r.t. weight).

    Args:
        weight: ``(num_embeddings, dim)`` parameter tensor.
        indices: integer array of any shape; values index rows of weight.
    """
    weight = as_tensor(weight)
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise GradientError("embedding indices must be integers")
    if weight.ndim != 2:
        raise GradientError("embedding weight must be 2-D")
    if idx.size and (idx.min() < 0 or idx.max() >= weight.shape[0]):
        raise GradientError(
            f"embedding index out of range [0, {weight.shape[0]})"
        )
    out = Tensor._result(weight.data[idx], (weight,), "embedding")

    def backward() -> None:
        if out.grad is None:
            return
        grad = np.zeros_like(weight.data)
        np.add.at(grad, idx, out.grad)
        weight._accumulate(grad)

    out._backward = backward
    return out


def dropout(x: Tensor, probability: float, rng: np.random.Generator, *,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero activations with ``probability`` and rescale."""
    if not 0.0 <= probability < 1.0:
        raise GradientError(f"dropout probability must be in [0, 1), got {probability}")
    x = as_tensor(x)
    if not training or probability == 0.0:
        return x
    keep = 1.0 - probability
    mask = (rng.random(x.shape) < keep) / keep
    out = Tensor._result(x.data * mask, (x,), "dropout")

    def backward() -> None:
        if out.grad is None:
            return
        x._accumulate(out.grad * mask)

    out._backward = backward
    return out


def lstm_cell(gates: Tensor, c_prev: Tensor) -> tuple[Tensor, Tensor]:
    """Fused LSTM cell activations: ``(gates, c_prev) -> (h, c)``.

    ``gates`` is the pre-activation ``(B, 4H)`` block ``[i, f, g, o]``
    (already containing ``x W_ih + h W_hh + b``); this op applies the gate
    nonlinearities and the state update in one graph node with a
    hand-derived backward. Functionally identical to composing sigmoid/tanh
    ops (the test suite checks this), but an order of magnitude fewer graph
    nodes — which dominates runtime for 50-step sequences on small batches.
    """
    gates = as_tensor(gates)
    c_prev = as_tensor(c_prev)
    if gates.ndim != 2 or gates.shape[1] % 4 != 0:
        raise GradientError(f"gates must be (B, 4H), got {gates.shape}")
    hidden = gates.shape[1] // 4
    if c_prev.shape != (gates.shape[0], hidden):
        raise GradientError(
            f"c_prev must be ({gates.shape[0]}, {hidden}), got {c_prev.shape}"
        )

    a = gates.data
    sig = lambda v: 0.5 * (np.tanh(0.5 * v) + 1.0)  # noqa: E731 - local helper
    i = sig(a[:, 0 * hidden: 1 * hidden])
    f = sig(a[:, 1 * hidden: 2 * hidden])
    g = np.tanh(a[:, 2 * hidden: 3 * hidden])
    o = sig(a[:, 3 * hidden: 4 * hidden])
    c = f * c_prev.data + i * g
    tanh_c = np.tanh(c)
    h = o * tanh_c

    hc = Tensor._result(np.concatenate([h, c], axis=1), (gates, c_prev), "lstm_cell")

    def backward() -> None:
        if hc.grad is None:
            return
        grad_h = hc.grad[:, :hidden]
        grad_c_out = hc.grad[:, hidden:]
        grad_c = grad_c_out + grad_h * o * (1.0 - tanh_c ** 2)
        grad_gates = np.concatenate(
            [
                grad_c * g * i * (1.0 - i),
                grad_c * c_prev.data * f * (1.0 - f),
                grad_c * i * (1.0 - g ** 2),
                grad_h * tanh_c * o * (1.0 - o),
            ],
            axis=1,
        )
        gates._accumulate(grad_gates)
        c_prev._accumulate(grad_c * f)

    hc._backward = backward
    return hc[:, :hidden], hc[:, hidden:]


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))``."""
    x = as_tensor(x)
    data = np.maximum(x.data, 0.0) + np.log1p(np.exp(-np.abs(x.data)))
    out = Tensor._result(data, (x,), "softplus")

    def backward() -> None:
        if out.grad is None:
            return
        sig = 0.5 * (np.tanh(0.5 * x.data) + 1.0)
        x._accumulate(out.grad * sig)

    out._backward = backward
    return out


def bce_with_logits(logits: Tensor, targets: np.ndarray | Tensor) -> Tensor:
    """Mean binary cross-entropy on raw scores (stable formulation).

    ``loss = mean(softplus(logits) - targets * logits)`` — equivalent to
    sigmoid + BCE but immune to log(0). This is the workhorse of the cGAN
    training loss (Eq. 4).
    """
    logits = as_tensor(logits)
    target_data = targets.data if isinstance(targets, Tensor) else np.asarray(targets, dtype=float)
    if target_data.shape != logits.shape:
        raise GradientError(
            f"target shape {target_data.shape} != logits shape {logits.shape}"
        )
    if target_data.size and (target_data.min() < 0 or target_data.max() > 1):
        raise GradientError("BCE targets must lie in [0, 1]")
    per_element = softplus(logits) - logits * Tensor(target_data)
    return per_element.mean()


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    if target.shape != prediction.shape:
        raise GradientError(
            f"target shape {target.shape} != prediction shape {prediction.shape}"
        )
    return (prediction - target.detach()).pow(2.0).mean()
