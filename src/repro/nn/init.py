"""Weight initializers.

Each initializer returns a plain numpy array; layers wrap the result in a
parameter :class:`~repro.nn.tensor.Tensor`. Glorot/Xavier is the default
for feed-forward weights, orthogonal for recurrent matrices (it keeps
long-sequence gradients well-conditioned, which matters for the 50-step
trajectory LSTMs).

Every initializer takes a ``dtype`` keyword defaulting to the active
policy (:func:`repro.nn.tensor.default_dtype`). Draws always consume the
RNG stream in float64 and are cast afterwards, so a float32 run sees
bitwise ``float64_weights.astype(float32)`` — the same stream position and
round-to-nearest values the dtype-tolerance tests assume.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import DTypeLike, resolve_dtype

__all__ = ["xavier_uniform", "uniform", "zeros", "orthogonal"]


def _check_shape(shape: tuple[int, ...]) -> None:
    if not shape or any(n < 1 for n in shape):
        raise ConfigurationError(f"invalid parameter shape {shape}")


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0, *,
                   dtype: DTypeLike | None = None) -> np.ndarray:
    """Glorot uniform: bound ``gain * sqrt(6 / (fan_in + fan_out))``."""
    _check_shape(shape)
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-1], shape[-2]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, shape).astype(resolve_dtype(dtype),
                                                    copy=False)


def uniform(shape: tuple[int, ...], rng: np.random.Generator,
            bound: float = 0.1, *,
            dtype: DTypeLike | None = None) -> np.ndarray:
    """Uniform in ``[-bound, bound]``."""
    _check_shape(shape)
    if bound <= 0:
        raise ConfigurationError(f"bound must be positive, got {bound}")
    return rng.uniform(-bound, bound, shape).astype(resolve_dtype(dtype),
                                                    copy=False)


def zeros(shape: tuple[int, ...], *,
          dtype: DTypeLike | None = None) -> np.ndarray:
    """All zeros (biases)."""
    _check_shape(shape)
    return np.zeros(shape, dtype=resolve_dtype(dtype))


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator,
               gain: float = 1.0, *,
               dtype: DTypeLike | None = None) -> np.ndarray:
    """(Semi-)orthogonal matrix via QR of a Gaussian draw; 2-D only."""
    _check_shape(shape)
    if len(shape) != 2:
        raise ConfigurationError("orthogonal init is defined for 2-D shapes")
    rows, cols = shape
    flat = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return (gain * q[:rows, :cols]).astype(resolve_dtype(dtype), copy=False)
