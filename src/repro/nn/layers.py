"""Module system and feed-forward layers.

:class:`Module` provides parameter discovery (recursing through attributes
that are modules, parameter tensors, or lists of either) and train/eval mode
propagation — the minimal surface the GAN needs, modelled on the PyTorch
API so the paper's architecture description maps one-to-one.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import init
from repro.nn.functional import dropout, embedding
from repro.nn.tensor import Tensor

__all__ = ["Dropout", "Embedding", "Linear", "Module", "ReLU", "Sequential",
           "Sigmoid", "Tanh"]


class Module:
    """Base class: parameter registry, training-mode flag, call protocol."""

    def __init__(self) -> None:
        self.training = True

    def forward(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)

    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable tensor reachable from this module."""
        seen: set[int] = set()
        yield from self._walk_parameters(seen)

    def _walk_parameters(self, seen: set[int]) -> Iterator[Tensor]:
        for value in vars(self).values():
            yield from _parameters_of(value, seen)

    def named_parameters(self) -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, tensor)`` pairs for serialization."""
        seen: set[int] = set()
        yield from self._walk_named("", seen)

    def _walk_named(self, prefix: str, seen: set[int]) -> Iterator[tuple[str, Tensor]]:
        for name, value in vars(self).items():
            yield from _named_parameters_of(f"{prefix}{name}", value, seen)

    def zero_grad(self) -> None:
        """Clear gradients on all parameters."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        """Enable training mode (dropout active) on the whole tree."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Enable inference mode (dropout disabled) on the whole tree."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            for module in _modules_of(value):
                module._set_mode(training)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())


def _modules_of(value: object) -> Iterator[Module]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _modules_of(item)


def _parameters_of(value: object, seen: set[int]) -> Iterator[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad:
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        yield from value._walk_parameters(seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _parameters_of(item, seen)


def _named_parameters_of(name: str, value: object,
                         seen: set[int]) -> Iterator[tuple[str, Tensor]]:
    if isinstance(value, Tensor) and value.requires_grad:
        if id(value) not in seen:
            seen.add(id(value))
            yield name, value
    elif isinstance(value, Module):
        yield from value._walk_named(f"{name}.", seen)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            yield from _named_parameters_of(f"{name}.{index}", item, seen)


class Linear(Module):
    """Affine layer ``y = x @ W.T + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, *, bias: bool = True) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ConfigurationError("Linear features must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.xavier_uniform((out_features, in_features), rng),
            requires_grad=True,
        )
        self.bias = (Tensor(init.zeros((out_features,)), requires_grad=True)
                     if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        if num_embeddings < 1 or dim < 1:
            raise ConfigurationError("Embedding sizes must be >= 1")
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Tensor(rng.standard_normal((num_embeddings, dim)) * 0.1,
                             requires_grad=True)

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding(self.weight, np.asarray(indices))


class Dropout(Module):
    """Inverted dropout; inert in eval mode."""

    def __init__(self, probability: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= probability < 1.0:
            raise ConfigurationError(
                f"dropout probability must be in [0, 1), got {probability}"
            )
        self.probability = probability
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.probability, self._rng, training=self.training)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        if not modules:
            raise ConfigurationError("Sequential needs at least one module")
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
