"""Per-op instrumentation for the autograd engine.

Mirrors the stage-graph machinery (:func:`repro.radar.stages.stage_metrics`):
one process-wide Prometheus-shaped :class:`~repro.serve.metrics.MetricsRegistry`
holding a wall-time histogram per op (``nn.<op>.wall_s``) and a run counter
per ``(op, backend)`` pair (``nn.<op>.<backend>.runs``). The GAN trainer and
the recurrent layers report into it, so a training run's hot spots land in
the same snapshot format as the radar stage timings and the serve metrics —
`benchmarks/test_bench_nn.py` dumps it as ``nn-timings.json``.

The registry import is deferred to first use: ``repro.nn`` must stay
importable without dragging in the serving stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.serve.metrics import MetricsRegistry

__all__ = ["NN_TIME_BUCKETS", "nn_metrics", "observe_op"]

#: Histogram bucket upper bounds (seconds) for per-op wall time. Same span
#: as the stage buckets: microsecond cell updates up to multi-second
#: paper-scale training steps.
NN_TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NN_METRICS: "MetricsRegistry | None" = None


def nn_metrics() -> "MetricsRegistry":
    """The process-wide per-op timing registry (lazily constructed)."""
    global _NN_METRICS
    if _NN_METRICS is None:
        from repro.serve.metrics import MetricsRegistry
        _NN_METRICS = MetricsRegistry()
    return _NN_METRICS


def observe_op(op: str, backend: str, elapsed_s: float) -> None:
    """Record one timed execution of ``op`` under ``backend``."""
    registry = nn_metrics()
    registry.observe(f"nn.{op}.wall_s", elapsed_s, NN_TIME_BUCKETS)
    registry.inc(f"nn.{op}.{backend}.runs")
