"""Optimizers: SGD with momentum, and Adam (the paper's choice, Sec. 9.2)."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor

__all__ = ["Adam", "Optimizer", "SGD"]


class Optimizer:
    """Base class holding the parameter list and the step/zero protocol."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")
        if any(not p.requires_grad for p in self.parameters):
            raise ConfigurationError("all optimized tensors must require grad")
        if learning_rate <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clipping norm — useful for divergence monitoring.
        """
        if max_norm <= 0:
            raise ConfigurationError("max_norm must be positive")
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float((parameter.grad ** 2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float = 0.01,
                 *, momentum: float = 0.0) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        # zeros_like: velocity adopts each parameter's dtype, so a float32
        # policy run keeps float32 optimizer state end-to-end.
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.learning_rate * parameter.grad
            parameter.data += velocity


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float = 1e-3,
                 *, beta1: float = 0.9, beta2: float = 0.999,
                 epsilon: float = 1e-8) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step_count = 0
        # zeros_like: moment buffers adopt each parameter's dtype (policy).
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1 ** self._step_count
        correction2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._first_moment,
                                   self._second_moment):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / correction1
            v_hat = v / correction2
            parameter.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
