"""Recurrent layers: LSTM cell, stacked LSTM, and bidirectional LSTM.

The paper's generator uses a two-layer LSTM and the discriminator a
bidirectional LSTM, both with hidden size 512 and dropout 0.5 (Sec. 6).
These implementations follow the standard gate equations (Hochreiter &
Schmidhuber) with a forget-gate bias of 1 for stable early training.

Sequence execution is dispatched through :data:`SEQUENCE_KERNELS`, the
nn-side analogue of the radar stage registry: ``"naive"`` unrolls one
:func:`~repro.nn.functional.lstm_cell` graph node per timestep (the pinned
equivalence reference), ``"fused"`` runs the whole layer through the
single-node :func:`~repro.nn.functional.lstm_sequence` BPTT op. The active
backend comes from ``RF_PROTECT_NN_BACKEND`` (via
:func:`repro.config.get_nn_backend`), can be pinned for a block with
:func:`sequence_backend_scope`, or per call via the ``backend=`` argument.
Each per-layer scan reports wall time into :mod:`repro.nn.metrics`.
"""

from __future__ import annotations

import contextlib
import time
from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import init
from repro.nn.functional import (
    concat,
    dropout,
    flip_sequence,
    lstm_cell,
    lstm_sequence,
    stack,
)
from repro.nn.layers import Module
from repro.nn.metrics import observe_op
from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "BiLSTM",
    "LSTM",
    "LSTMCell",
    "SEQUENCE_KERNELS",
    "active_sequence_backend",
    "register_sequence_kernel",
    "sequence_backend_scope",
    "set_sequence_backend",
]

#: One LSTM layer over a stacked ``(T, B, D)`` tensor -> ``(T, B, H)``.
SequenceKernel = Callable[["LSTMCell", Tensor, tuple[Tensor, Tensor]], Tensor]

#: Registry of sequence-scan implementations, keyed by backend name. The
#: single dispatch point for recurrent execution — code outside this module
#: selects a backend by name, never by importing a kernel directly.
SEQUENCE_KERNELS: dict[str, SequenceKernel] = {}


def register_sequence_kernel(name: str) -> Callable[[SequenceKernel], SequenceKernel]:
    """Register a sequence kernel under ``name`` (decorator)."""

    def decorator(kernel: SequenceKernel) -> SequenceKernel:
        if name in SEQUENCE_KERNELS:
            raise ConfigurationError(f"sequence kernel {name!r} already registered")
        SEQUENCE_KERNELS[name] = kernel
        return kernel

    return decorator


_BACKEND_OVERRIDE: str | None = None


def active_sequence_backend() -> str:
    """The backend used when no per-call ``backend=`` is given.

    Resolution order: :func:`set_sequence_backend` /
    :func:`sequence_backend_scope` override first, then the
    ``RF_PROTECT_NN_BACKEND`` environment knob.
    """
    if _BACKEND_OVERRIDE is not None:
        return _BACKEND_OVERRIDE
    from repro.config import get_nn_backend

    return get_nn_backend()


def set_sequence_backend(name: str | None) -> str | None:
    """Set (or with ``None`` clear) the process-wide backend override.

    Returns the previous override so callers can restore it; prefer
    :func:`sequence_backend_scope` for anything block-shaped.
    """
    global _BACKEND_OVERRIDE
    if name is not None and name not in SEQUENCE_KERNELS:
        raise ConfigurationError(
            f"unknown sequence backend {name!r}; "
            f"registered: {sorted(SEQUENCE_KERNELS)}"
        )
    previous = _BACKEND_OVERRIDE
    _BACKEND_OVERRIDE = name
    return previous


@contextlib.contextmanager
def sequence_backend_scope(name: str) -> Iterator[str]:
    """Pin the sequence backend within a ``with`` block."""
    previous = set_sequence_backend(name)
    try:
        yield name
    finally:
        set_sequence_backend(previous)


class LSTMCell(Module):
    """One LSTM step: gates ``i, f, g, o`` over input and hidden state.

    Weights are stored input-major (``(input_size, 4H)`` / ``(H, 4H)``) so
    the forward pass is two bare matmuls, and the gate nonlinearities run
    through the fused :func:`~repro.nn.functional.lstm_cell` op. The
    composed-op reference path (:meth:`forward_composed`) is kept for
    equivalence testing.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        if input_size < 1 or hidden_size < 1:
            raise ConfigurationError("LSTM sizes must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        gates = 4 * hidden_size
        self.weight_ih = Tensor(init.xavier_uniform((input_size, gates), rng),
                                requires_grad=True)
        self.weight_hh = Tensor(
            np.hstack([init.orthogonal((hidden_size, hidden_size), rng)
                       for _ in range(4)]),
            requires_grad=True,
        )
        bias = init.zeros((gates,))
        bias[hidden_size: 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Tensor(bias, requires_grad=True)

    def _gates(self, x: Tensor, h_prev: Tensor) -> Tensor:
        return x @ self.weight_ih + h_prev @ self.weight_hh + self.bias

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(B, input_size)``; returns ``(h, c)``."""
        h_prev, c_prev = state
        return lstm_cell(self._gates(x, h_prev), c_prev)

    def forward_composed(self, x: Tensor,
                         state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """Reference implementation from elementary ops (for testing)."""
        h_prev, c_prev = state
        gates = self._gates(x, h_prev)
        H = self.hidden_size
        i = gates[:, 0 * H: 1 * H].sigmoid()
        f = gates[:, 1 * H: 2 * H].sigmoid()
        g = gates[:, 2 * H: 3 * H].tanh()
        o = gates[:, 3 * H: 4 * H].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        """Zero ``(h, c)`` for a batch, in the cell's parameter dtype."""
        zeros = np.zeros((batch_size, self.hidden_size),
                         dtype=self.weight_hh.data.dtype)
        return (Tensor(zeros, dtype=zeros.dtype),
                Tensor(zeros.copy(), dtype=zeros.dtype))


@register_sequence_kernel("naive")
def _naive_sequence(cell: LSTMCell, inputs: Tensor,
                    state: tuple[Tensor, Tensor]) -> Tensor:
    """Reference scan: one ``lstm_cell`` graph node per timestep."""
    h, c = state
    outputs: list[Tensor] = []
    for t in range(inputs.shape[0]):
        h, c = cell(inputs[t], (h, c))
        outputs.append(h)
    return stack(outputs, axis=0)


@register_sequence_kernel("fused")
def _fused_sequence(cell: LSTMCell, inputs: Tensor,
                    state: tuple[Tensor, Tensor]) -> Tensor:
    """Whole-layer scan as a single :func:`lstm_sequence` BPTT node."""
    h0, c0 = state
    return lstm_sequence(inputs, cell.weight_ih, cell.weight_hh, cell.bias,
                         h0, c0)


class LSTM(Module):
    """Stacked unidirectional LSTM over a ``(T, B, D)`` sequence."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, *, num_layers: int = 1,
                 dropout_probability: float = 0.0) -> None:
        super().__init__()
        if num_layers < 1:
            raise ConfigurationError("num_layers must be >= 1")
        if not 0.0 <= dropout_probability < 1.0:
            raise ConfigurationError("dropout probability must be in [0, 1)")
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.dropout_probability = dropout_probability
        self._rng = rng
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            for layer in range(num_layers)
        ]

    def _resolve_states(self, batch_size: int,
                        initial_states: Sequence[tuple[Tensor, Tensor]] | None,
                        ) -> list[tuple[Tensor, Tensor]]:
        if initial_states is None:
            return [cell.initial_state(batch_size) for cell in self.cells]
        if len(initial_states) != self.num_layers:
            raise ConfigurationError(
                f"expected {self.num_layers} initial states, "
                f"got {len(initial_states)}"
            )
        return list(initial_states)

    def forward_sequence(self, inputs: Tensor,
                         initial_states: Sequence[tuple[Tensor, Tensor]] | None = None,
                         *, backend: str | None = None) -> Tensor:
        """Run the stack over a stacked ``(T, B, D)`` sequence tensor.

        This is the primary entry point: the whole scan stays in stacked
        form, inter-layer dropout draws one ``(T, B, H)`` mask per layer
        boundary (bit-identical to the historical per-timestep draws —
        the RNG stream consumes identically), and each layer runs through
        the selected :data:`SEQUENCE_KERNELS` entry.

        Args:
            inputs: ``(T, B, D)`` tensor.
            initial_states: optional per-layer ``(h0, c0)``; zeros otherwise.
            backend: kernel name; defaults to
                :func:`active_sequence_backend`.

        Returns:
            Top-layer hidden states as one ``(T, B, H)`` tensor.
        """
        inputs = as_tensor(inputs)
        if inputs.ndim != 3:
            raise ConfigurationError(
                f"forward_sequence needs (T, B, D) inputs, got {inputs.shape}"
            )
        if inputs.shape[0] < 1:
            raise ConfigurationError("LSTM needs at least one timestep")
        name = backend if backend is not None else active_sequence_backend()
        kernel = SEQUENCE_KERNELS.get(name)
        if kernel is None:
            raise ConfigurationError(
                f"unknown sequence backend {name!r}; "
                f"registered: {sorted(SEQUENCE_KERNELS)}"
            )
        states = self._resolve_states(inputs.shape[1], initial_states)
        sequence = inputs
        for layer, cell in enumerate(self.cells):
            started = time.perf_counter()
            sequence = kernel(cell, sequence, states[layer])
            observe_op("lstm_sequence", name, time.perf_counter() - started)
            if layer < self.num_layers - 1 and self.dropout_probability > 0:
                sequence = dropout(sequence, self.dropout_probability,
                                   self._rng, training=self.training)
        return sequence

    def forward(self, inputs: list[Tensor],
                initial_states: list[tuple[Tensor, Tensor]] | None = None,
                *, backend: str | None = None) -> list[Tensor]:
        """Run the stack over a per-timestep list of ``(B, D)`` tensors.

        Compatibility wrapper over :meth:`forward_sequence`; returns
        top-layer hidden states, one ``(B, H)`` tensor per timestep.
        """
        if not inputs:
            raise ConfigurationError("LSTM needs at least one timestep")
        stacked = self.forward_sequence(stack(inputs, axis=0), initial_states,
                                        backend=backend)
        return [stacked[t] for t in range(len(inputs))]

    def forward_stacked(self, inputs: list[Tensor],
                        initial_states: list[tuple[Tensor, Tensor]] | None = None
                        ) -> Tensor:
        """Like :meth:`forward` but stacked into one ``(T, B, H)`` tensor."""
        if not inputs:
            raise ConfigurationError("LSTM needs at least one timestep")
        return self.forward_sequence(stack(inputs, axis=0), initial_states)


class BiLSTM(Module):
    """Bidirectional LSTM: forward and backward passes, concatenated."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, *,
                 dropout_probability: float = 0.0) -> None:
        super().__init__()
        self.forward_lstm = LSTM(input_size, hidden_size, rng,
                                 dropout_probability=dropout_probability)
        self.backward_lstm = LSTM(input_size, hidden_size, rng,
                                  dropout_probability=dropout_probability)
        self.hidden_size = hidden_size

    def forward_sequence(self, inputs: Tensor,
                         *, backend: str | None = None) -> Tensor:
        """Per-timestep ``(T, B, 2H)`` outputs (forward ++ backward)."""
        inputs = as_tensor(inputs)
        forward_out = self.forward_lstm.forward_sequence(inputs,
                                                         backend=backend)
        backward_out = flip_sequence(
            self.backward_lstm.forward_sequence(flip_sequence(inputs),
                                                backend=backend)
        )
        return concat([forward_out, backward_out], axis=2)

    def forward(self, inputs: list[Tensor]) -> list[Tensor]:
        """Per-timestep ``(B, 2H)`` outputs (forward ++ backward)."""
        stacked = self.forward_sequence(stack(inputs, axis=0))
        return [stacked[t] for t in range(len(inputs))]

    def final_summary(self, inputs: list[Tensor] | Tensor) -> Tensor:
        """Sequence summary: last forward state ++ first backward state.

        This is the standard BiLSTM readout for whole-sequence
        classification — each direction's state after reading everything.
        Accepts either the per-timestep list form or a stacked
        ``(T, B, D)`` tensor.
        """
        stacked = (inputs if isinstance(inputs, Tensor)
                   else stack(inputs, axis=0))
        forward_out = self.forward_lstm.forward_sequence(stacked)
        backward_out = self.backward_lstm.forward_sequence(
            flip_sequence(stacked)
        )
        return concat([forward_out[-1], backward_out[-1]], axis=1)
