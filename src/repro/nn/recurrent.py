"""Recurrent layers: LSTM cell, stacked LSTM, and bidirectional LSTM.

The paper's generator uses a two-layer LSTM and the discriminator a
bidirectional LSTM, both with hidden size 512 and dropout 0.5 (Sec. 6).
These implementations follow the standard gate equations (Hochreiter &
Schmidhuber) with a forget-gate bias of 1 for stable early training.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import init
from repro.nn.functional import concat, dropout, lstm_cell, stack
from repro.nn.layers import Module
from repro.nn.tensor import Tensor

__all__ = ["LSTM", "LSTMCell", "BiLSTM"]


class LSTMCell(Module):
    """One LSTM step: gates ``i, f, g, o`` over input and hidden state.

    Weights are stored input-major (``(input_size, 4H)`` / ``(H, 4H)``) so
    the forward pass is two bare matmuls, and the gate nonlinearities run
    through the fused :func:`~repro.nn.functional.lstm_cell` op. The
    composed-op reference path (:meth:`forward_composed`) is kept for
    equivalence testing.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        if input_size < 1 or hidden_size < 1:
            raise ConfigurationError("LSTM sizes must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        gates = 4 * hidden_size
        self.weight_ih = Tensor(init.xavier_uniform((input_size, gates), rng),
                                requires_grad=True)
        self.weight_hh = Tensor(
            np.hstack([init.orthogonal((hidden_size, hidden_size), rng)
                       for _ in range(4)]),
            requires_grad=True,
        )
        bias = np.zeros(gates)
        bias[hidden_size: 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Tensor(bias, requires_grad=True)

    def _gates(self, x: Tensor, h_prev: Tensor) -> Tensor:
        return x @ self.weight_ih + h_prev @ self.weight_hh + self.bias

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(B, input_size)``; returns ``(h, c)``."""
        h_prev, c_prev = state
        return lstm_cell(self._gates(x, h_prev), c_prev)

    def forward_composed(self, x: Tensor,
                         state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """Reference implementation from elementary ops (for testing)."""
        h_prev, c_prev = state
        gates = self._gates(x, h_prev)
        H = self.hidden_size
        i = gates[:, 0 * H: 1 * H].sigmoid()
        f = gates[:, 1 * H: 2 * H].sigmoid()
        g = gates[:, 2 * H: 3 * H].tanh()
        o = gates[:, 3 * H: 4 * H].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        """Zero ``(h, c)`` for a batch."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Stacked unidirectional LSTM over a ``(T, B, D)`` sequence."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, *, num_layers: int = 1,
                 dropout_probability: float = 0.0) -> None:
        super().__init__()
        if num_layers < 1:
            raise ConfigurationError("num_layers must be >= 1")
        if not 0.0 <= dropout_probability < 1.0:
            raise ConfigurationError("dropout probability must be in [0, 1)")
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.dropout_probability = dropout_probability
        self._rng = rng
        self.cells = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            for layer in range(num_layers)
        ]

    def forward(self, inputs: list[Tensor],
                initial_states: list[tuple[Tensor, Tensor]] | None = None
                ) -> list[Tensor]:
        """Run the stack over a sequence.

        Args:
            inputs: list of ``(B, D)`` tensors, one per timestep.
            initial_states: optional per-layer ``(h0, c0)``; zeros otherwise.

        Returns:
            Top-layer hidden states, one ``(B, H)`` tensor per timestep.
        """
        if not inputs:
            raise ConfigurationError("LSTM needs at least one timestep")
        batch_size = inputs[0].shape[0]
        if initial_states is None:
            states = [cell.initial_state(batch_size) for cell in self.cells]
        else:
            if len(initial_states) != self.num_layers:
                raise ConfigurationError(
                    f"expected {self.num_layers} initial states, "
                    f"got {len(initial_states)}"
                )
            states = list(initial_states)

        sequence = inputs
        for layer, cell in enumerate(self.cells):
            h, c = states[layer]
            outputs: list[Tensor] = []
            for x in sequence:
                h, c = cell(x, (h, c))
                outputs.append(h)
            if layer < self.num_layers - 1 and self.dropout_probability > 0:
                outputs = [
                    dropout(h_t, self.dropout_probability, self._rng,
                            training=self.training)
                    for h_t in outputs
                ]
            sequence = outputs
        return sequence

    def forward_stacked(self, inputs: list[Tensor],
                        initial_states: list[tuple[Tensor, Tensor]] | None = None
                        ) -> Tensor:
        """Like :meth:`forward` but stacked into one ``(T, B, H)`` tensor."""
        return stack(self.forward(inputs, initial_states), axis=0)


class BiLSTM(Module):
    """Bidirectional LSTM: forward and backward passes, concatenated."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, *,
                 dropout_probability: float = 0.0) -> None:
        super().__init__()
        self.forward_lstm = LSTM(input_size, hidden_size, rng,
                                 dropout_probability=dropout_probability)
        self.backward_lstm = LSTM(input_size, hidden_size, rng,
                                  dropout_probability=dropout_probability)
        self.hidden_size = hidden_size

    def forward(self, inputs: list[Tensor]) -> list[Tensor]:
        """Per-timestep ``(B, 2H)`` outputs (forward ++ backward)."""
        forward_out = self.forward_lstm(inputs)
        backward_out = self.backward_lstm(list(reversed(inputs)))
        backward_out = list(reversed(backward_out))
        return [concat([f, b], axis=1)
                for f, b in zip(forward_out, backward_out)]

    def final_summary(self, inputs: list[Tensor]) -> Tensor:
        """Sequence summary: last forward state ++ first backward state.

        This is the standard BiLSTM readout for whole-sequence
        classification — each direction's state after reading everything.
        """
        forward_out = self.forward_lstm(inputs)
        backward_out = self.backward_lstm(list(reversed(inputs)))
        return concat([forward_out[-1], backward_out[-1]], axis=1)
