"""Save/load module parameters as ``.npz`` archives.

The cGAN trains once and is reused across experiments (Sec. 9.2 notes that
RF-Protect needs no per-location training), so persisting trained weights
matters. Names come from :meth:`Module.named_parameters`, making archives
stable across processes as long as the architecture matches.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Module

__all__ = ["save_state", "load_state"]


def save_state(module: Module, path: str | os.PathLike[str]) -> None:
    """Write all named parameters of ``module`` to ``path`` (npz)."""
    state = {name: tensor.data for name, tensor in module.named_parameters()}
    if not state:
        raise ConfigurationError("module has no parameters to save")
    np.savez(path, **state)


def load_state(module: Module, path: str | os.PathLike[str]) -> None:
    """Load parameters saved by :func:`save_state` into ``module``.

    Raises :class:`ConfigurationError` on any missing, extra, or
    shape-mismatched entry — a silent partial load would be a debugging
    trap.
    """
    with np.load(path) as archive:
        saved = {name: archive[name] for name in archive.files}
    current = dict(module.named_parameters())

    missing = sorted(set(current) - set(saved))
    extra = sorted(set(saved) - set(current))
    if missing or extra:
        raise ConfigurationError(
            f"state mismatch: missing={missing[:5]}, unexpected={extra[:5]}"
        )
    for name, tensor in current.items():
        if saved[name].shape != tensor.data.shape:
            raise ConfigurationError(
                f"shape mismatch for {name}: file has {saved[name].shape}, "
                f"module has {tensor.data.shape}"
            )
        # Cast into the parameter's dtype: archives written under one dtype
        # policy load cleanly into a module built under another, and a
        # float32 module is never silently re-widened to float64.
        tensor.data = saved[name].astype(tensor.data.dtype)
