"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; calling :meth:`Tensor.backward` on a scalar result walks the recorded
graph in reverse topological order and accumulates gradients into every
tensor created with ``requires_grad=True``. Arithmetic supports full numpy
broadcasting; gradients of broadcast operands are summed back to the
operand's shape.

Dtype policy
------------

Leaf tensors are created in the engine's *default dtype* — ``float64``
unless overridden by ``RF_PROTECT_NN_DTYPE`` (read once, lazily, through
:mod:`repro.config`), :func:`set_default_dtype`, or a :func:`dtype_scope`
block. Graph nodes keep whatever dtype numpy computed for them, so a
float32 model stays float32 end-to-end (gradients included: every gradient
buffer is allocated with ``zeros_like`` against the tensor it belongs to).
An explicit ``Tensor(data, dtype=...)`` always wins over the policy.

Element-wise and matrix arithmetic live here as methods; structural and
neural-network operations (concat, stack, embedding, dropout, the fused
LSTM sequence scan, losses) live in :mod:`repro.nn.functional`.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator, Sequence
from typing import Any, Union

import numpy as np

from repro.errors import GradientError

__all__ = [
    "DTypeLike",
    "Tensor",
    "TensorLike",
    "as_tensor",
    "default_dtype",
    "dtype_scope",
    "resolve_dtype",
    "set_default_dtype",
    "unbroadcast",
]

#: Anything the arithmetic methods coerce into a (leaf) tensor.
TensorLike = Union["Tensor", np.ndarray, float, int, Sequence[Any]]

#: Anything :func:`resolve_dtype` accepts as a dtype spec.
DTypeLike = Union[str, type, np.dtype]

#: Dtypes the policy accepts — the engine is real-valued by design.
_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_default_dtype: np.dtype | None = None  # resolved lazily from repro.config


def resolve_dtype(dtype: DTypeLike | None) -> np.dtype:
    """Normalize a dtype spec to a supported float dtype.

    ``None`` means "the active policy dtype" (:func:`default_dtype`).
    """
    if dtype is None:
        return default_dtype()
    try:
        resolved = np.dtype(dtype)
    except TypeError as error:
        raise GradientError(f"invalid dtype {dtype!r}: {error}") from error
    if resolved not in _SUPPORTED_DTYPES:
        raise GradientError(
            f"autograd dtype must be float32 or float64, got {resolved}"
        )
    return resolved


def default_dtype() -> np.dtype:
    """The active leaf/parameter dtype (``RF_PROTECT_NN_DTYPE`` default)."""
    global _default_dtype
    if _default_dtype is None:
        from repro.config import get_nn_dtype
        _default_dtype = resolve_dtype(get_nn_dtype())
    return _default_dtype


def set_default_dtype(dtype: str | type | np.dtype) -> np.dtype:
    """Set the active default dtype; returns the previous one."""
    global _default_dtype
    previous = default_dtype()
    _default_dtype = resolve_dtype(dtype)
    return previous


@contextlib.contextmanager
def dtype_scope(dtype: str | type | np.dtype) -> Iterator[np.dtype]:
    """Run a block under a different default dtype, then restore."""
    previous = set_default_dtype(dtype)
    try:
        yield default_dtype()
    finally:
        set_default_dtype(previous)


def _is_basic_index(key: Any) -> bool:
    """True if ``key`` is numpy basic indexing (no arrays, no bool masks).

    Basic indexing selects each source element at most once, so gradient
    scatter can use plain ``+=``; advanced indexing may select an element
    repeatedly and needs ``np.add.at``.
    """
    parts = key if isinstance(key, tuple) else (key,)
    return all(
        part is None or part is Ellipsis
        or isinstance(part, (int, np.integer, slice))
        for part in parts
    )


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes numpy added during broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An array with an optional gradient and a recorded history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data: TensorLike, *, requires_grad: bool = False,
                 dtype: str | type | np.dtype | None = None,
                 _parents: tuple["Tensor", ...] = (), _op: str = "leaf") -> None:
        if dtype is not None:
            self.data = np.asarray(data, dtype=resolve_dtype(dtype))
        elif _parents:
            # Graph nodes keep the dtype numpy computed for them.
            self.data = np.asarray(data)
        else:
            self.data = np.asarray(data, dtype=default_dtype())
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[], None] = lambda: None
        self._parents = _parents
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op!r}{flag})"

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise GradientError(f"item() needs a 1-element tensor, got {self.shape}")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """A copy of the underlying data (safe to mutate)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def astype(self, dtype: str | type | np.dtype) -> "Tensor":
        """A differentiable cast; the gradient is cast back on the way down."""
        target = resolve_dtype(dtype)
        out = Tensor._result(self.data.astype(target, copy=False), (self,),
                             "astype")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad.astype(self.data.dtype, copy=False))

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Graph mechanics
    # ------------------------------------------------------------------

    @staticmethod
    def _result(data: np.ndarray, parents: tuple["Tensor", ...],
                op: str) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents, _op=op)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def _accumulate_at(self, key: Any, grad: np.ndarray) -> None:
        """Accumulate a gradient into the subregion selected by ``key``.

        Writing into ``self.grad`` directly (instead of building a
        full-size scatter buffer and adding it) keeps per-timestep slicing
        of long sequences O(slice) rather than O(sequence) per step.
        Basic-index keys (ints/slices) select disjoint elements, so plain
        ``+=`` is exact; advanced indexing may repeat elements and goes
        through ``np.add.at``.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        if _is_basic_index(key):
            self.grad[key] += grad
        else:
            np.add.at(self.grad, key, grad)

    def zero_grad(self) -> None:
        """Reset this tensor's accumulated gradient."""
        self.grad = None

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Args:
            gradient: seed gradient; defaults to 1 and then requires this
                tensor to be a scalar (the usual loss case).
        """
        if gradient is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without a gradient argument requires a scalar; "
                    f"got shape {self.shape}"
                )
            gradient = np.ones_like(self.data)
        else:
            gradient = np.asarray(gradient, dtype=self.data.dtype)
            if gradient.shape != self.shape:
                raise GradientError(
                    f"seed gradient shape {gradient.shape} != tensor shape {self.shape}"
                )

        ordered: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate_seed(gradient)
        for node in reversed(ordered):
            node._backward()

    def _accumulate_seed(self, gradient: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += gradient

    # ------------------------------------------------------------------
    # Element-wise arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other, like=self)
        out = Tensor._result(self.data + other.data, (self, other), "add")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(unbroadcast(out.grad, self.shape))
            other._accumulate(unbroadcast(out.grad, other.shape))

        out._backward = backward
        return out

    __radd__ = __add__

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other, like=self)
        out = Tensor._result(self.data * other.data, (self, other), "mul")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(unbroadcast(out.grad * other.data, self.shape))
            other._accumulate(unbroadcast(out.grad * self.data, other.shape))

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: TensorLike) -> "Tensor":
        return self + (-as_tensor(other, like=self))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other, like=self) + (-self)

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other, like=self)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other, like=self) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        """Element-wise power with a constant exponent."""
        if not np.isscalar(exponent):
            raise GradientError("pow() supports scalar exponents only")
        out = Tensor._result(self.data ** exponent, (self,), "pow")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1.0))

        out._backward = backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def exp(self) -> "Tensor":
        out = Tensor._result(np.exp(self.data), (self,), "exp")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * out.data)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = Tensor._result(np.log(self.data), (self,), "log")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad / self.data)

        out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        out = Tensor._result(np.tanh(self.data), (self,), "tanh")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * (1.0 - out.data ** 2))

        out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic via tanh.
        out_data = 0.5 * (np.tanh(0.5 * self.data) + 1.0)
        out = Tensor._result(out_data, (self,), "sigmoid")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = backward
        return out

    def relu(self) -> "Tensor":
        out = Tensor._result(np.maximum(self.data, 0.0), (self,), "relu")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * (self.data > 0.0))

        out._backward = backward
        return out

    def abs(self) -> "Tensor":
        out = Tensor._result(np.abs(self.data), (self,), "abs")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * np.sign(self.data))

        out._backward = backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the bounds."""
        if low >= high:
            raise GradientError(f"clip needs low < high, got [{low}, {high}]")
        out = Tensor._result(np.clip(self.data, low, high), (self,), "clip")

        def backward() -> None:
            if out.grad is None:
                return
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(out.grad * inside)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out = Tensor._result(self.data.sum(axis=axis, keepdims=keepdims),
                             (self,), "sum")

        def backward() -> None:
            if out.grad is None:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out._backward = backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int | tuple[int, ...]) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._result(self.data.reshape(shape), (self,), "reshape")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad.reshape(self.shape))

        out._backward = backward
        return out

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        if axes is None:
            axes = tuple(reversed(range(self.ndim)))
        axes = tuple(axes)
        out = Tensor._result(self.data.transpose(axes), (self,), "transpose")
        inverse = tuple(np.argsort(axes))

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad.transpose(inverse))

        out._backward = backward
        return out

    def __getitem__(self, key: Any) -> "Tensor":
        out = Tensor._result(self.data[key], (self,), "slice")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate_at(key, out.grad)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------

    def matmul(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        if self.ndim < 1 or other.ndim < 1:
            raise GradientError("matmul operands must have at least 1 dimension")
        out = Tensor._result(self.data @ other.data, (self, other), "matmul")

        def backward() -> None:
            if out.grad is None:
                return
            a, b, grad = self.data, other.data, out.grad
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif b.ndim == 1:
                self._accumulate(np.expand_dims(grad, -1) * b)
                other._accumulate(
                    unbroadcast((np.expand_dims(grad, -1)
                                 * a).sum(axis=tuple(range(a.ndim - 1))), b.shape)
                )
            elif a.ndim == 1:
                # out = a @ b with a (K,), b (..., K, M), grad (..., M).
                weighted = b * np.expand_dims(grad, -2)      # (..., K, M)
                reduce_axes = tuple(range(weighted.ndim - 2)) + (-1,)
                self._accumulate(weighted.sum(axis=reduce_axes))
                other._accumulate(unbroadcast(np.expand_dims(a, -1)
                                              * np.expand_dims(grad, -2), b.shape))
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                self._accumulate(unbroadcast(grad_a, a.shape))
                other._accumulate(unbroadcast(grad_b, b.shape))

        out._backward = backward
        return out

    def __matmul__(self, other: TensorLike) -> "Tensor":
        return self.matmul(other)


def as_tensor(value: TensorLike, *, like: Tensor | None = None) -> Tensor:
    """Coerce a value into a (non-differentiable, if new) tensor.

    Python scalars adopt ``like``'s dtype when given, so expressions such
    as ``x * 0.5`` or ``x.mean()`` never widen a float32 graph to the
    (possibly wider) default policy dtype. Arrays and sequences follow the
    policy as usual.
    """
    if isinstance(value, Tensor):
        return value
    if like is not None and isinstance(value, (int, float)):
        return Tensor(value, dtype=like.data.dtype)
    return Tensor(value)
