"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; calling :meth:`Tensor.backward` on a scalar result walks the recorded
graph in reverse topological order and accumulates gradients into every
tensor created with ``requires_grad=True``. Arithmetic supports full numpy
broadcasting; gradients of broadcast operands are summed back to the
operand's shape.

Element-wise and matrix arithmetic live here as methods; structural and
neural-network operations (concat, stack, embedding, dropout, losses) live
in :mod:`repro.nn.functional`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import GradientError

__all__ = ["Tensor", "as_tensor", "unbroadcast"]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes numpy added during broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An array with an optional gradient and a recorded history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, *, requires_grad: bool = False,
                 _parents: tuple["Tensor", ...] = (), _op: str = "leaf") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[], None] = lambda: None
        self._parents = _parents
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op!r}{flag})"

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise GradientError(f"item() needs a 1-element tensor, got {self.shape}")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """A copy of the underlying data (safe to mutate)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph mechanics
    # ------------------------------------------------------------------

    @staticmethod
    def _result(data: np.ndarray, parents: tuple["Tensor", ...],
                op: str) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents, _op=op)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset this tensor's accumulated gradient."""
        self.grad = None

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Args:
            gradient: seed gradient; defaults to 1 and then requires this
                tensor to be a scalar (the usual loss case).
        """
        if gradient is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without a gradient argument requires a scalar; "
                    f"got shape {self.shape}"
                )
            gradient = np.ones_like(self.data)
        else:
            gradient = np.asarray(gradient, dtype=np.float64)
            if gradient.shape != self.shape:
                raise GradientError(
                    f"seed gradient shape {gradient.shape} != tensor shape {self.shape}"
                )

        ordered: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate_seed(gradient)
        for node in reversed(ordered):
            node._backward()

    def _accumulate_seed(self, gradient: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += gradient

    # ------------------------------------------------------------------
    # Element-wise arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = Tensor._result(self.data + other.data, (self, other), "add")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(unbroadcast(out.grad, self.shape))
            other._accumulate(unbroadcast(out.grad, other.shape))

        out._backward = backward
        return out

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = Tensor._result(self.data * other.data, (self, other), "mul")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(unbroadcast(out.grad * other.data, self.shape))
            other._accumulate(unbroadcast(out.grad * self.data, other.shape))

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        """Element-wise power with a constant exponent."""
        if not np.isscalar(exponent):
            raise GradientError("pow() supports scalar exponents only")
        out = Tensor._result(self.data ** exponent, (self,), "pow")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1.0))

        out._backward = backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def exp(self) -> "Tensor":
        out = Tensor._result(np.exp(self.data), (self,), "exp")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * out.data)

        out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = Tensor._result(np.log(self.data), (self,), "log")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad / self.data)

        out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        out = Tensor._result(np.tanh(self.data), (self,), "tanh")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * (1.0 - out.data ** 2))

        out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic via tanh.
        out_data = 0.5 * (np.tanh(0.5 * self.data) + 1.0)
        out = Tensor._result(out_data, (self,), "sigmoid")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = backward
        return out

    def relu(self) -> "Tensor":
        out = Tensor._result(np.maximum(self.data, 0.0), (self,), "relu")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * (self.data > 0.0))

        out._backward = backward
        return out

    def abs(self) -> "Tensor":
        out = Tensor._result(np.abs(self.data), (self,), "abs")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad * np.sign(self.data))

        out._backward = backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the bounds."""
        if low >= high:
            raise GradientError(f"clip needs low < high, got [{low}, {high}]")
        out = Tensor._result(np.clip(self.data, low, high), (self,), "clip")

        def backward() -> None:
            if out.grad is None:
                return
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(out.grad * inside)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out = Tensor._result(self.data.sum(axis=axis, keepdims=keepdims),
                             (self,), "sum")

        def backward() -> None:
            if out.grad is None:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out._backward = backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._result(self.data.reshape(shape), (self,), "reshape")

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad.reshape(self.shape))

        out._backward = backward
        return out

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        if axes is None:
            axes = tuple(reversed(range(self.ndim)))
        axes = tuple(axes)
        out = Tensor._result(self.data.transpose(axes), (self,), "transpose")
        inverse = tuple(np.argsort(axes))

        def backward() -> None:
            if out.grad is None:
                return
            self._accumulate(out.grad.transpose(inverse))

        out._backward = backward
        return out

    def __getitem__(self, key) -> "Tensor":
        out = Tensor._result(self.data[key], (self,), "slice")

        def backward() -> None:
            if out.grad is None:
                return
            grad = np.zeros_like(self.data)
            np.add.at(grad, key, out.grad)
            self._accumulate(grad)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------

    def matmul(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        if self.ndim < 1 or other.ndim < 1:
            raise GradientError("matmul operands must have at least 1 dimension")
        out = Tensor._result(self.data @ other.data, (self, other), "matmul")

        def backward() -> None:
            if out.grad is None:
                return
            a, b, grad = self.data, other.data, out.grad
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif b.ndim == 1:
                self._accumulate(np.expand_dims(grad, -1) * b)
                other._accumulate(
                    unbroadcast((np.expand_dims(grad, -1)
                                 * a).sum(axis=tuple(range(a.ndim - 1))), b.shape)
                )
            elif a.ndim == 1:
                # out = a @ b with a (K,), b (..., K, M), grad (..., M).
                weighted = b * np.expand_dims(grad, -2)      # (..., K, M)
                reduce_axes = tuple(range(weighted.ndim - 2)) + (-1,)
                self._accumulate(weighted.sum(axis=reduce_axes))
                other._accumulate(unbroadcast(np.expand_dims(a, -1)
                                              * np.expand_dims(grad, -2), b.shape))
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                self._accumulate(unbroadcast(grad_a, a.shape))
                other._accumulate(unbroadcast(grad_b, b.shape))

        out._backward = backward
        return out

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)


def as_tensor(value) -> Tensor:
    """Coerce a value into a (non-differentiable, if new) tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
