"""Information-theoretic privacy analysis (Sec. 7).

Models real occupancy ``X ~ Bin(N, p)`` and phantom occupancy
``Y ~ Bin(M, q)``; the eavesdropper observes ``Z = X + Y``. The mutual
information ``I(X; Z)`` quantifies how much true-occupancy information
leaks through the spoofed observation (Fig. 7), and the inference helpers
quantify instance-level attacks (occupancy, counting, breath selection).
"""

from repro.privacy.mutual_information import (
    OccupancyModel,
    binomial_pmf,
    mutual_information_curve,
)
from repro.privacy.occupancy import (
    attacker_count_accuracy,
    breath_guess_probability,
    occupancy_detection_rate,
)

__all__ = [
    "OccupancyModel",
    "attacker_count_accuracy",
    "binomial_pmf",
    "breath_guess_probability",
    "mutual_information_curve",
    "occupancy_detection_rate",
]
