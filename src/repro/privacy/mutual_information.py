"""Exact mutual information of the occupancy channel (Eqs. 5-6, Fig. 7).

``X ~ Bin(N, p)`` is true occupancy, ``Y ~ Bin(M, q)`` the RF-Protect
phantoms, and the adversary sees ``Z = X + Y``. Since ``X`` and ``Y`` are
independent, ``P(Z=z | X=x) = P(Y = z - x)``, giving a closed-form joint
distribution and hence an exact ``I(X; Z)`` — no sampling involved.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.errors import ConfigurationError

__all__ = ["OccupancyModel", "binomial_pmf", "mutual_information_curve"]


def binomial_pmf(n: int, probability: float) -> np.ndarray:
    """The full Bin(n, probability) pmf as an array of length ``n + 1``.

    Computed in log space (gammaln) so large ``n`` stays stable; the edge
    probabilities 0 and 1 are handled exactly.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(f"probability must be in [0, 1], got {probability}")
    k = np.arange(n + 1)
    if probability == 0.0:
        pmf = np.zeros(n + 1)
        pmf[0] = 1.0
        return pmf
    if probability == 1.0:
        pmf = np.zeros(n + 1)
        pmf[n] = 1.0
        return pmf
    log_coefficients = gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1)
    log_pmf = (log_coefficients + k * np.log(probability)
               + (n - k) * np.log1p(-probability))
    return np.exp(log_pmf)


class OccupancyModel:
    """The X/Y/Z occupancy channel of Sec. 7.

    Args:
        num_humans: maximum occupancy ``N``.
        moving_probability: ``p``, chance a human is moving (the paper uses
            0.2 as "a higher estimate").
        num_phantoms: maximum phantoms ``M`` the deployment can spoof.
        phantom_probability: ``q``, chance each phantom is active — the
            knob RF-Protect controls.
    """

    def __init__(self, num_humans: int, moving_probability: float,
                 num_phantoms: int, phantom_probability: float) -> None:
        if num_humans < 0 or num_phantoms < 0:
            raise ConfigurationError("N and M must be >= 0")
        self.num_humans = num_humans
        self.moving_probability = moving_probability
        self.num_phantoms = num_phantoms
        self.phantom_probability = phantom_probability
        self._pmf_x = binomial_pmf(num_humans, moving_probability)
        self._pmf_y = binomial_pmf(num_phantoms, phantom_probability)

    def pmf_x(self) -> np.ndarray:
        """P(X = x) for x in 0..N."""
        return self._pmf_x.copy()

    def pmf_y(self) -> np.ndarray:
        """P(Y = y) for y in 0..M."""
        return self._pmf_y.copy()

    def pmf_z(self) -> np.ndarray:
        """P(Z = z) for z in 0..N+M (convolution of X and Y)."""
        return np.convolve(self._pmf_x, self._pmf_y)

    def joint_xz(self) -> np.ndarray:
        """P(X = x, Z = z) as an ``(N+1, N+M+1)`` matrix.

        ``P(x, z) = P(X = x) * P(Y = z - x)`` with zero outside support.
        """
        n, m = self.num_humans, self.num_phantoms
        joint = np.zeros((n + 1, n + m + 1))
        for x in range(n + 1):
            joint[x, x: x + m + 1] = self._pmf_x[x] * self._pmf_y
        return joint

    def mutual_information(self) -> float:
        """Exact ``I(X; Z)`` in bits (Eq. 6)."""
        joint = self.joint_xz()
        px = self._pmf_x[:, None]
        pz = self.pmf_z()[None, :]
        mask = joint > 0
        ratio = np.ones_like(joint)
        ratio[mask] = joint[mask] / (px * pz + 1e-300)[mask]
        terms = np.zeros_like(joint)
        terms[mask] = joint[mask] * np.log2(ratio[mask])
        return float(max(terms.sum(), 0.0))

    def entropy_x(self) -> float:
        """H(X) in bits — the ceiling on extractable information."""
        pmf = self._pmf_x[self._pmf_x > 0]
        return float(-(pmf * np.log2(pmf)).sum())


def mutual_information_curve(num_humans: int, moving_probability: float,
                             phantom_counts: np.ndarray,
                             phantom_probabilities: np.ndarray) -> np.ndarray:
    """I(X; Z) over a grid of (M, q) values — the data behind Fig. 7.

    Returns an array of shape ``(len(phantom_counts),
    len(phantom_probabilities))``.
    """
    counts = np.asarray(phantom_counts, dtype=int)
    probabilities = np.asarray(phantom_probabilities, dtype=float)
    if counts.ndim != 1 or probabilities.ndim != 1:
        raise ConfigurationError("phantom grids must be 1-D")
    surface = np.empty((counts.size, probabilities.size))
    for i, m in enumerate(counts):
        for j, q in enumerate(probabilities):
            model = OccupancyModel(num_humans, moving_probability, int(m), float(q))
            surface[i, j] = model.mutual_information()
    return surface
