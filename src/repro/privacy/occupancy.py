"""Instance-level privacy attacks and how RF-Protect degrades them (Sec. 7).

Three attacks from the paper: occupancy detection ("is someone home?"),
breath selection ("which breathing pattern is the victim's?"), and occupant
counting. Each helper quantifies the attacker's success probability with
and without the defense.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.privacy.mutual_information import OccupancyModel, binomial_pmf

__all__ = [
    "attacker_count_accuracy",
    "breath_guess_probability",
    "occupancy_detection_rate",
]


def breath_guess_probability(num_real: int, num_fake: int) -> float:
    """Chance a random pick among sensed breaths is a real one: N / (M + N).

    With RF-Protect deployed the eavesdropper cannot distinguish real from
    spoofed breathing, so selecting the victim's breath is a uniform draw
    (Sec. 7, "Breath Monitoring").
    """
    if num_real < 0 or num_fake < 0:
        raise ConfigurationError("breath counts must be >= 0")
    total = num_real + num_fake
    if total == 0:
        raise ConfigurationError("at least one breath must be present")
    return num_real / total


def occupancy_detection_rate(num_humans: int, moving_probability: float,
                             num_phantoms: int,
                             phantom_probability: float) -> dict[str, float]:
    """How often "is anyone moving at home?" returns a *correct* answer.

    Without the defense the attacker is right whenever they observe
    correctly (probability 1 here — the radar is reliable). With phantoms
    the observation ``Z > 0`` no longer implies ``X > 0``; the returned
    ``with_defense`` value is ``P(attacker correct)`` when they answer
    "occupied" iff ``Z > 0``.
    """
    model = OccupancyModel(num_humans, moving_probability,
                           num_phantoms, phantom_probability)
    p_x_zero = float(model.pmf_x()[0])
    p_y_zero = float(binomial_pmf(num_phantoms, phantom_probability)[0])
    # Attacker says "occupied" iff Z > 0. Correct when X>0 and Z>0 (always,
    # since Z >= X), or when X=0 and Z=0 (no phantom fired either).
    correct = (1.0 - p_x_zero) + p_x_zero * p_y_zero
    return {"without_defense": 1.0, "with_defense": correct}


def attacker_count_accuracy(num_humans: int, moving_probability: float,
                            num_phantoms: int, phantom_probability: float,
                            *, rng: np.random.Generator,
                            trials: int = 10_000) -> dict[str, float]:
    """Monte-Carlo accuracy of the *optimal* count attacker.

    The attacker knows all model parameters (worst case for the defense)
    and reports the MAP estimate of ``X`` given the observed ``Z``.
    Returns exact-hit accuracy and mean absolute error, with and without
    the defense (without: Z = X, accuracy 1).
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    model = OccupancyModel(num_humans, moving_probability,
                           num_phantoms, phantom_probability)
    joint = model.joint_xz()  # (N+1, N+M+1)
    map_estimate = joint.argmax(axis=0)  # best X guess per observed Z

    x = rng.binomial(num_humans, moving_probability, trials)
    y = rng.binomial(num_phantoms, phantom_probability, trials)
    z = x + y
    guesses = map_estimate[z]
    return {
        "accuracy_without_defense": 1.0,
        "accuracy_with_defense": float(np.mean(guesses == x)),
        "mae_with_defense": float(np.mean(np.abs(guesses - x))),
    }
