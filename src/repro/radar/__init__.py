"""FMCW radar simulator: the eavesdropper (and legitimate sensor) substrate.

The paper evaluates RF-Protect against a custom 6--7 GHz FMCW radar with a
7-antenna array (Sec. 9.1). This package reproduces that radar in software:
beat-signal synthesis from a scene of reflectors (`frontend`), the paper's
range/angle processing pipeline with background subtraction (`processing`),
and the trajectory extraction stage with Kalman tracking (`tracker`).

Every sense path — FMCW, pulsed, the serving engine, the experiments
runner — executes through the stage-graph executor in `stages`: a typed
Emit → Synthesize → RangeFFT → BackgroundSubtract → Beamform → Detect
plan whose kernels resolve from one registration-based registry
(`KERNELS`), with per-stage wall-time instrumentation.
"""

from repro.radar.antenna import UniformLinearArray
from repro.radar.channel import ChannelModel
from repro.radar.config import RadarConfig
from repro.radar.frontend import (
    SYNTH_STATS,
    PathComponent,
    SynthesisStats,
    synthesis_backend,
    synthesize_frame,
    synthesize_frame_naive,
)
from repro.radar.batch import (
    PackedComponents,
    pack_components,
    synthesize_frame_batches,
    synthesize_frame_vectorized,
    synthesize_frames,
)
from repro.radar.pipeline import (
    SweepProcessingResult,
    batched_background_subtract,
    batched_beamform_power,
    batched_lag_vectors,
    batched_range_profiles,
    beamform_from_lags,
    pipeline_backend,
    process_sweep,
)
from repro.radar.processing import (
    ZERO_PAD_FACTOR,
    RangeAngleProfile,
    background_subtract,
    compute_range_angle_map,
    frame_range_profiles,
    range_keep_mask,
)
from repro.radar.pulsed import PulsedRadar, PulsedRadarConfig, PulsedSensingResult
from repro.radar.radar import FmcwRadar, SensingResult
from repro.radar.scene import (
    Fan,
    HumanTarget,
    OcclusionSpec,
    Scene,
    StaticReflector,
)
from repro.radar.stages import (
    KERNELS,
    RECEIVE_PLAN,
    SENSE_PLAN,
    ExecutionContext,
    KernelRegistry,
    Stage,
    StageBinding,
    StageKernel,
    backend_overrides,
    default_backend,
    execute,
    frame_synthesizer,
    stage_metrics,
)
from repro.radar.tracker import (
    KalmanTracker2D,
    StreamingTracker,
    Track,
    TrackerConfig,
    extract_tracks,
    hungarian_assignment,
    track_detections,
)

__all__ = [
    "ChannelModel",
    "ExecutionContext",
    "Fan",
    "FmcwRadar",
    "HumanTarget",
    "KERNELS",
    "KalmanTracker2D",
    "KernelRegistry",
    "OcclusionSpec",
    "PackedComponents",
    "PathComponent",
    "RECEIVE_PLAN",
    "SENSE_PLAN",
    "SYNTH_STATS",
    "SynthesisStats",
    "PulsedRadar",
    "PulsedRadarConfig",
    "PulsedSensingResult",
    "RadarConfig",
    "RangeAngleProfile",
    "Scene",
    "SensingResult",
    "Stage",
    "StageBinding",
    "StageKernel",
    "StaticReflector",
    "StreamingTracker",
    "SweepProcessingResult",
    "Track",
    "TrackerConfig",
    "UniformLinearArray",
    "ZERO_PAD_FACTOR",
    "backend_overrides",
    "default_backend",
    "execute",
    "frame_synthesizer",
    "stage_metrics",
    "background_subtract",
    "batched_background_subtract",
    "batched_beamform_power",
    "batched_lag_vectors",
    "batched_range_profiles",
    "beamform_from_lags",
    "compute_range_angle_map",
    "extract_tracks",
    "frame_range_profiles",
    "hungarian_assignment",
    "pack_components",
    "pipeline_backend",
    "process_sweep",
    "range_keep_mask",
    "synthesis_backend",
    "synthesize_frame",
    "synthesize_frame_batches",
    "synthesize_frame_naive",
    "synthesize_frame_vectorized",
    "synthesize_frames",
    "track_detections",
]
