"""Uniform linear array geometry and beamforming steering vectors (Eq. 2).

The paper's eavesdropper computes the per-angle power

    P(theta) = | sum_k h_k * exp(-j 2 pi k d cos(theta) / lambda) |^2

where ``theta`` is measured from the array axis. This module owns that
convention: angle-from-axis in (0, pi), with the boresight ("facing")
direction resolving the front/back ambiguity when converting to Cartesian.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry import unit_vector
from repro.radar.config import RadarConfig
from repro.signal.windows import get_window

__all__ = ["UniformLinearArray"]


class UniformLinearArray:
    """Receive-array geometry, angle conventions, and steering vectors."""

    def __init__(self, config: RadarConfig) -> None:
        self.config = config
        self.position = np.asarray(config.position, dtype=float)
        self.axis = unit_vector(config.axis_angle)
        self.facing = unit_vector(config.facing_angle)
        self.num_antennas = config.num_antennas
        self.spacing = config.spacing
        self.wavelength = config.chirp.wavelength

    def element_positions(self) -> np.ndarray:
        """Element (x, y) positions, shape ``(K, 2)``, centered on the array."""
        offsets = (np.arange(self.num_antennas) - (self.num_antennas - 1) / 2.0)
        return self.position + np.outer(offsets * self.spacing, self.axis)

    def angle_to(self, point: np.ndarray) -> float:
        """Angle from the array axis to ``point``, in (0, pi)."""
        rel = np.asarray(point, dtype=float) - self.position
        distance = np.linalg.norm(rel)
        if distance == 0:
            raise ConfigurationError("point coincides with the array center")
        cos_theta = float(np.clip(rel @ self.axis / distance, -1.0, 1.0))
        return float(np.arccos(cos_theta))

    def range_to(self, point: np.ndarray) -> float:
        """Distance from the array center to ``point``, meters."""
        return float(np.linalg.norm(np.asarray(point, dtype=float) - self.position))

    def polar_of(self, point: np.ndarray) -> tuple[float, float]:
        """(range, angle-from-axis) of ``point`` in this array's frame."""
        return self.range_to(point), self.angle_to(point)

    def point_at(self, distance: float, angle: float) -> np.ndarray:
        """Cartesian point at (``distance``, ``angle``), on the facing side.

        The array angle only determines ``cos(theta)``; the boresight
        direction picks which of the two mirror solutions is "in the room".
        """
        if distance < 0:
            raise ConfigurationError(f"distance must be >= 0, got {distance}")
        along_axis = np.cos(angle)
        # Component perpendicular to the axis, signed toward the facing side.
        perp = self.facing - (self.facing @ self.axis) * self.axis
        perp_norm = np.linalg.norm(perp)
        if perp_norm == 0:
            raise ConfigurationError("facing direction parallel to array axis")
        perp = perp / perp_norm
        off_axis = np.sin(angle)
        return self.position + distance * (along_axis * self.axis + off_axis * perp)

    def arrival_phases(self, angle: float) -> np.ndarray:
        """Relative phase of an incoming wave at each element, shape ``(K,)``.

        Element ``k`` sits at offset ``k * d`` along the axis (up to the
        common centering shift, which is an overall phase); a wave from
        ``angle`` arrives with phase ``+2 pi k d cos(angle) / lambda``.
        """
        k = np.arange(self.num_antennas)
        return 2.0 * np.pi * k * self.spacing * np.cos(angle) / self.wavelength

    def arrival_phase_matrix(self, angles: np.ndarray) -> np.ndarray:
        """Per-antenna arrival phases for a *batch* of angles, ``(K, C)``.

        Column ``c`` equals :meth:`arrival_phases` evaluated at
        ``angles[c]``; computing all columns at once is what lets the
        vectorized frontend (`repro.radar.batch`) synthesize every path
        component of a frame in a single broadcasted expression.
        """
        grid = np.atleast_1d(np.asarray(angles, dtype=float))
        k = np.arange(self.num_antennas)
        return (2.0 * np.pi * np.outer(k, np.cos(grid))
                * self.spacing / self.wavelength)

    def steering_matrix(self, angles: np.ndarray) -> np.ndarray:
        """Conjugate steering vectors for Eq. 2, shape ``(num_angles, K)``.

        Row ``i`` dotted with the per-antenna signal vector ``h`` gives the
        beamformed output toward ``angles[i]``.
        """
        grid = np.asarray(angles, dtype=float)
        k = np.arange(self.num_antennas)
        phase = 2.0 * np.pi * np.outer(np.cos(grid), k) * self.spacing / self.wavelength
        return np.exp(-1j * phase)

    def beamform(self, signals: np.ndarray, angles: np.ndarray, *,
                 taper: str | None = "hamming") -> np.ndarray:
        """Apply Eq. 2: per-angle power of per-antenna signals.

        Args:
            signals: complex array ``(K,)`` or ``(K, num_bins)``.
            angles: beamforming angle grid, radians from the array axis.
            taper: amplitude window across the antennas; lowers angle
                sidelobes (at the cost of a wider mainlobe) so a strong
                target does not masquerade as extra targets. ``None``
                disables tapering (the textbook Eq. 2).

        Returns:
            ``(num_angles,)`` or ``(num_angles, num_bins)`` real power.
        """
        h = np.asarray(signals)
        if h.shape[0] != self.num_antennas:
            raise ConfigurationError(
                f"expected {self.num_antennas} antenna signals, got {h.shape[0]}"
            )
        steering = self.steering_matrix(angles)
        if taper is not None:
            weights = get_window(taper, self.num_antennas)
            steering = steering * (weights / weights.sum() * self.num_antennas)
        return np.abs(steering @ h) ** 2
