"""Uniform linear array geometry and beamforming steering vectors (Eq. 2).

The paper's eavesdropper computes the per-angle power

    P(theta) = | sum_k h_k * exp(-j 2 pi k d cos(theta) / lambda) |^2

where ``theta`` is measured from the array axis. This module owns that
convention: angle-from-axis in (0, pi), with the boresight ("facing")
direction resolving the front/back ambiguity when converting to Cartesian.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry import unit_vector
from repro.radar.config import RadarConfig
from repro.signal.windows import get_window

__all__ = ["UniformLinearArray"]

#: Process-wide memo of steering planes, keyed by the array geometry
#: (element count, spacing, wavelength), the taper name (``None`` for the
#: bare Eq. 2 matrix), and the angle grid's raw bytes. Sensing sweeps
#: beamform every frame against the *same* grid, so each plane is computed
#: once and shared read-only; the handful of distinct grids a process ever
#: uses keeps this map tiny.
_STEERING_CACHE: dict[
    tuple[int, float, float, str | None, bytes], np.ndarray
] = {}

#: Normalized taper weights per (element count, window name) — tiny arrays,
#: but resolving them through the memo keeps every call site sharing one
#: read-only plane instead of re-deriving the normalization.
_WEIGHTS_CACHE: dict[tuple[int, str], np.ndarray] = {}

#: Lag-basis planes of the autocorrelation form of Eq. 2 (see
#: ``repro.radar.pipeline``), one ``(2K - 1, num_angles)`` array per
#: (geometry, grid).
_LAG_BASIS_CACHE: dict[tuple[int, float, float, bytes], np.ndarray] = {}


class UniformLinearArray:
    """Receive-array geometry, angle conventions, and steering vectors."""

    def __init__(self, config: RadarConfig) -> None:
        self.config = config
        self.position = np.asarray(config.position, dtype=float)
        self.axis = unit_vector(config.axis_angle)
        self.facing = unit_vector(config.facing_angle)
        self.num_antennas = config.num_antennas
        self.spacing = config.spacing
        self.wavelength = config.chirp.wavelength

    def element_positions(self) -> np.ndarray:
        """Element (x, y) positions, shape ``(K, 2)``, centered on the array."""
        offsets = (np.arange(self.num_antennas) - (self.num_antennas - 1) / 2.0)
        return self.position + np.outer(offsets * self.spacing, self.axis)

    def angle_to(self, point: np.ndarray) -> float:
        """Angle from the array axis to ``point``, in (0, pi)."""
        rel = np.asarray(point, dtype=float) - self.position
        distance = np.linalg.norm(rel)
        if distance == 0:
            raise ConfigurationError("point coincides with the array center")
        cos_theta = float(np.clip(rel @ self.axis / distance, -1.0, 1.0))
        return float(np.arccos(cos_theta))

    def range_to(self, point: np.ndarray) -> float:
        """Distance from the array center to ``point``, meters."""
        return float(np.linalg.norm(np.asarray(point, dtype=float) - self.position))

    def polar_of(self, point: np.ndarray) -> tuple[float, float]:
        """(range, angle-from-axis) of ``point`` in this array's frame."""
        return self.range_to(point), self.angle_to(point)

    def point_at(self, distance: float, angle: float) -> np.ndarray:
        """Cartesian point at (``distance``, ``angle``), on the facing side.

        The array angle only determines ``cos(theta)``; the boresight
        direction picks which of the two mirror solutions is "in the room".
        """
        if distance < 0:
            raise ConfigurationError(f"distance must be >= 0, got {distance}")
        along_axis = np.cos(angle)
        # Component perpendicular to the axis, signed toward the facing side.
        perp = self.facing - (self.facing @ self.axis) * self.axis
        perp_norm = np.linalg.norm(perp)
        if perp_norm == 0:
            raise ConfigurationError("facing direction parallel to array axis")
        perp = perp / perp_norm
        off_axis = np.sin(angle)
        return self.position + distance * (along_axis * self.axis + off_axis * perp)

    def arrival_phases(self, angle: float) -> np.ndarray:
        """Relative phase of an incoming wave at each element, shape ``(K,)``.

        Element ``k`` sits at offset ``k * d`` along the axis (up to the
        common centering shift, which is an overall phase); a wave from
        ``angle`` arrives with phase ``+2 pi k d cos(angle) / lambda``.
        """
        k = np.arange(self.num_antennas)
        return 2.0 * np.pi * k * self.spacing * np.cos(angle) / self.wavelength

    def arrival_phase_matrix(self, angles: np.ndarray) -> np.ndarray:
        """Per-antenna arrival phases for a *batch* of angles, ``(K, C)``.

        Column ``c`` equals :meth:`arrival_phases` evaluated at
        ``angles[c]``; computing all columns at once is what lets the
        vectorized frontend (`repro.radar.batch`) synthesize every path
        component of a frame in a single broadcasted expression.
        """
        grid = np.atleast_1d(np.asarray(angles, dtype=float))
        k = np.arange(self.num_antennas)
        return (2.0 * np.pi * np.outer(k, np.cos(grid))
                * self.spacing / self.wavelength)

    def _steering_key(self, grid: np.ndarray, taper: str | None,
                      ) -> tuple[int, float, float, str | None, bytes]:
        return (self.num_antennas, self.spacing, self.wavelength, taper,
                grid.tobytes())

    def steering_matrix(self, angles: np.ndarray) -> np.ndarray:
        """Conjugate steering vectors for Eq. 2, shape ``(num_angles, K)``.

        Row ``i`` dotted with the per-antenna signal vector ``h`` gives the
        beamformed output toward ``angles[i]``. The plane for a given
        (geometry, grid) is computed once per process and returned as a
        shared read-only array; ``.copy()`` it before modifying.
        """
        grid = np.asarray(angles, dtype=float)
        key = self._steering_key(grid, None)
        cached = _STEERING_CACHE.get(key)
        if cached is None:
            k = np.arange(self.num_antennas)
            phase = (2.0 * np.pi * np.outer(np.cos(grid), k)
                     * self.spacing / self.wavelength)
            cached = np.exp(-1j * phase)
            cached.flags.writeable = False
            _STEERING_CACHE[key] = cached
        return cached

    def tapered_steering_matrix(self, angles: np.ndarray,
                                taper: str | None) -> np.ndarray:
        """Steering matrix with the amplitude taper folded in, read-only.

        This is the exact matrix :meth:`beamform` applies — taper weights
        normalized to preserve total gain — cached per (geometry, grid,
        taper) so the batched receive pipeline can contract whole sweeps
        against one precomputed plane.
        """
        if taper is None:
            return self.steering_matrix(angles)
        grid = np.asarray(angles, dtype=float)
        key = self._steering_key(grid, taper)
        cached = _STEERING_CACHE.get(key)
        if cached is None:
            cached = self.steering_matrix(grid) * self.taper_weights(taper)
            cached.flags.writeable = False
            _STEERING_CACHE[key] = cached
        return cached

    def taper_weights(self, taper: str | None) -> np.ndarray:
        """Normalized amplitude taper across the elements, shape ``(K,)``.

        The window is scaled to preserve total gain (``sum == K``), exactly
        the weights :meth:`beamform` folds into its steering matrix. Since
        the taper is real, applying it to the *signals* instead of the
        steering vectors yields the same per-term products — which is how
        the batched pipeline uses it. Read-only cached plane.
        """
        if taper is None:
            weights = np.ones(self.num_antennas, dtype=float)
            weights.flags.writeable = False
            return weights
        key = (self.num_antennas, taper)
        cached = _WEIGHTS_CACHE.get(key)
        if cached is None:
            window = get_window(taper, self.num_antennas)
            cached = window / window.sum() * self.num_antennas
            cached.flags.writeable = False
            _WEIGHTS_CACHE[key] = cached
        return cached

    def lag_power_basis(self, angles: np.ndarray) -> np.ndarray:
        """Basis turning autocorrelation lags into Eq. 2 power, ``(2K-1, A)``.

        The element-``k`` steering phase is ``k * c(theta)`` with
        ``c = 2 pi d cos(theta) / lambda`` — linear in ``k`` — so Eq. 2's
        power depends on antenna pairs only through their index *lag*
        ``m = k - l``:

            P(theta) = R_0 + 2 sum_m [Re R_m cos(m c) + Im R_m sin(m c)]

        where ``R_m`` is the lag-``m`` spatial autocorrelation of the
        tapered signals. This method returns that expansion as a single
        matrix: row 0 is all ones (the ``R_0`` term), rows ``1 .. K-1``
        hold ``2 cos(m c)`` and rows ``K .. 2K-2`` hold ``2 sin(m c)``, so
        stacking ``[R_0 | Re R | Im R]`` per bin and multiplying by this
        basis yields the power map in one real GEMM (see
        :func:`repro.radar.pipeline.batched_beamform_power`). Computed once
        per (geometry, grid), returned read-only.
        """
        grid = np.asarray(angles, dtype=float)
        key = (self.num_antennas, self.spacing, self.wavelength,
               grid.tobytes())
        cached = _LAG_BASIS_CACHE.get(key)
        if cached is None:
            lags = np.arange(1, self.num_antennas)
            phase = (2.0 * np.pi * np.outer(lags, np.cos(grid))
                     * self.spacing / self.wavelength)
            cached = np.concatenate([
                np.ones((1, grid.shape[0]), dtype=np.float64),
                2.0 * np.cos(phase),
                2.0 * np.sin(phase),
            ])
            cached.flags.writeable = False
            _LAG_BASIS_CACHE[key] = cached
        return cached

    def beamform(self, signals: np.ndarray, angles: np.ndarray, *,
                 taper: str | None = "hamming") -> np.ndarray:
        """Apply Eq. 2: per-angle power of per-antenna signals.

        Args:
            signals: complex array ``(K,)`` or ``(K, num_bins)``.
            angles: beamforming angle grid, radians from the array axis.
            taper: amplitude window across the antennas; lowers angle
                sidelobes (at the cost of a wider mainlobe) so a strong
                target does not masquerade as extra targets. ``None``
                disables tapering (the textbook Eq. 2).

        Returns:
            ``(num_angles,)`` or ``(num_angles, num_bins)`` real power.
        """
        h = np.asarray(signals)
        if h.shape[0] != self.num_antennas:
            raise ConfigurationError(
                f"expected {self.num_antennas} antenna signals, got {h.shape[0]}"
            )
        steering = self.tapered_steering_matrix(angles, taper)
        return np.abs(steering @ h) ** 2
