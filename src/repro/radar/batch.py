"""Batched, vectorized beat-frame synthesis.

The reference kernel in :mod:`repro.radar.frontend` loops over
:class:`~repro.radar.frontend.PathComponent`s in Python and materializes one
``(K, N)`` outer product per component. This module packs a frame's (or a
whole sweep's) components into flat arrays and synthesizes all antennas x
samples x components in one broadcasted contraction:

    frame[k, n] = sum_c  a_c * exp(j (2 pi f_c t_n + phi_c)) * exp(j psi_{k,c})

where ``f_c``/``phi_c`` are the per-component beat frequency and carrier
phase and ``psi`` is the array's arrival-phase matrix.

Because the beat samples sit on a uniform time grid, each tone's phase is an
arithmetic progression, so the sample index ``n = b*B + m`` factors the
exponential exactly: ``exp(j theta n) = exp(j theta b B) * exp(j theta m)``.
With ``B ~ sqrt(N)`` this needs only ``~2 C sqrt(N)`` complex exponentials
instead of ``C*N`` — the transcendental work that dominates the naive kernel
— and the remaining sum over components is a single BLAS matmul per frame.
The two kernels are pinned to each other by
``tests/test_frontend_equivalence.py``; physics notes live with the
reference implementation.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.radar.antenna import UniformLinearArray
from repro.radar.config import RadarConfig
from repro.radar.frontend import SYNTH_STATS, PathComponent, thermal_noise
from repro.signal.chirp import ChirpConfig

__all__ = [
    "PackedComponents",
    "pack_components",
    "synthesize_frame_batches",
    "synthesize_frame_vectorized",
    "synthesize_frames",
]


@dataclasses.dataclass(frozen=True)
class PackedComponents:
    """A set of path components as flat arrays, one entry per component.

    This is the batch-friendly wire format between scene emission and the
    vectorized kernel: every field of :class:`PathComponent` becomes a
    float64 vector of equal length.
    """

    distances: np.ndarray
    angles: np.ndarray
    amplitudes: np.ndarray
    beat_offsets_hz: np.ndarray
    phase_offsets: np.ndarray
    extra_delays_s: np.ndarray

    def __len__(self) -> int:
        return self.distances.shape[0]


def pack_components(components: Sequence[PathComponent]) -> PackedComponents:
    """Pack a component list into flat per-field arrays."""
    n = len(components)
    fields = np.empty((6, n), dtype=float)
    for i, c in enumerate(components):
        fields[0, i] = c.distance
        fields[1, i] = c.angle
        fields[2, i] = c.amplitude
        fields[3, i] = c.beat_offset_hz
        fields[4, i] = c.phase_offset
        fields[5, i] = c.extra_delay_s
    return PackedComponents(*fields)


def _beat_and_carrier(packed: PackedComponents, chirp: ChirpConfig,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-component beat frequency, total tone phase, and Nyquist mask."""
    # A true extra delay behaves exactly like extra distance for FMCW.
    effective = packed.distances + chirp.delay_to_distance(packed.extra_delays_s)
    beat = (np.asarray(chirp.distance_to_beat_frequency(effective))
            + packed.beat_offsets_hz)
    carrier = (np.asarray(chirp.carrier_phase(effective))
               + packed.phase_offsets)
    # Same strict inequality as the reference kernel: a tone exactly at
    # Nyquist is dropped by both.
    keep = np.abs(beat) < chirp.sample_rate / 2.0
    return beat, carrier, keep


def _contract_frame(amplitudes: np.ndarray, beat: np.ndarray,
                    carrier: np.ndarray, steering: np.ndarray,
                    chirp: ChirpConfig) -> np.ndarray:
    """Sum all component tones into one ``(K, N)`` frame.

    ``steering`` is the complex arrival phasor matrix ``(K, C)``. The tone
    phases advance by ``theta_c = 2 pi f_c / fs`` per sample, so with the
    block split ``n = b*B + m`` the frame is

        frame[k, b*B + m] = sum_c steering[k, c] * A_c
                            * exp(j theta_c b B) * exp(j theta_c m)

    i.e. a ``(K*num_blocks, C) @ (C, B)`` matmul over precomputed block and
    base exponentials, trimmed back to ``N`` samples.
    """
    num_samples = chirp.num_samples
    theta = (2.0 * np.pi / chirp.sample_rate) * beat
    block_len = max(int(np.ceil(np.sqrt(num_samples))), 1)
    num_blocks = -(-num_samples // block_len)

    base = np.exp(1j * theta[:, None] * np.arange(block_len)[None, :])
    block = np.exp(1j * theta[:, None]
                   * (np.arange(num_blocks) * block_len)[None, :])
    block *= (amplitudes * np.exp(1j * carrier))[:, None]

    num_antennas = steering.shape[0]
    weights = steering[:, None, :] * block.T[None, :, :]  # (K, blocks, C)
    frame = (weights.reshape(num_antennas * num_blocks, -1) @ base)
    return np.ascontiguousarray(
        frame.reshape(num_antennas, num_blocks * block_len)[:, :num_samples]
    )


def _contract_frames_batched(amplitudes: np.ndarray, beat: np.ndarray,
                             carrier: np.ndarray, steering: np.ndarray,
                             chirp: ChirpConfig) -> np.ndarray:
    """Contract a stack of equal-component-count frames, ``(F, K, N)``.

    The batched form of :func:`_contract_frame`: inputs carry a leading
    frame axis (``amplitudes``/``beat``/``carrier`` are ``(F, C)``,
    ``steering`` is ``(F, K, C)``) and the per-frame matmul becomes one
    stacked ``(F, K*num_blocks, C) @ (F, C, B)`` call. Every elementwise
    op computes the same scalars as the per-frame kernel and each matmul
    slice is the identical GEMM (same shapes, same contiguous layout), so
    the stack is bitwise equal to ``F`` separate ``_contract_frame`` calls
    — the batching only removes per-frame dispatch overhead.
    """
    num_samples = chirp.num_samples
    num_frames, num_antennas = steering.shape[0], steering.shape[1]
    theta = (2.0 * np.pi / chirp.sample_rate) * beat
    block_len = max(int(np.ceil(np.sqrt(num_samples))), 1)
    num_blocks = -(-num_samples // block_len)

    base = np.exp(1j * theta[:, :, None] * np.arange(block_len)[None, None, :])
    block = np.exp(1j * theta[:, :, None]
                   * (np.arange(num_blocks) * block_len)[None, None, :])
    block *= (amplitudes * np.exp(1j * carrier))[:, :, None]

    # (F, K, 1, C) * (F, 1, num_blocks, C) -> (F, K, num_blocks, C)
    weights = steering[:, :, None, :] * block.transpose(0, 2, 1)[:, None, :, :]
    frames = weights.reshape(num_frames, num_antennas * num_blocks, -1) @ base
    return np.ascontiguousarray(
        frames.reshape(num_frames, num_antennas,
                       num_blocks * block_len)[:, :, :num_samples]
    )


def synthesize_frame_vectorized(
        components: Sequence[PathComponent] | PackedComponents,
        config: RadarConfig, array: UniformLinearArray,
        rng: np.random.Generator | None = None) -> np.ndarray:
    """Vectorized equivalent of ``synthesize_frame_naive``, ``(K, N)``."""
    packed = (components if isinstance(components, PackedComponents)
              else pack_components(components))
    if len(packed) == 0:
        frame = np.zeros((config.num_antennas, config.chirp.num_samples),
                         dtype=complex)
        SYNTH_STATS.record_frame(0, 0, "vectorized")
    else:
        beat, carrier, keep = _beat_and_carrier(packed, config.chirp)
        steering = np.exp(
            1j * array.arrival_phase_matrix(packed.angles[keep])
        )
        frame = _contract_frame(packed.amplitudes[keep], beat[keep],
                                carrier[keep], steering, config.chirp)
        SYNTH_STATS.record_frame(
            len(packed), int(len(packed) - np.count_nonzero(keep)),
            "vectorized")
    if rng is not None and config.noise_std > 0:
        frame = frame + thermal_noise(config, rng, frame.shape)
    return frame


def synthesize_frames(components_per_frame: Sequence[Sequence[PathComponent]],
                      config: RadarConfig, array: UniformLinearArray,
                      rng: np.random.Generator | None = None) -> np.ndarray:
    """Synthesize a whole sweep of frames at once, ``(F, K, N)``.

    All components across all frames are packed into one flat batch; beat
    frequencies, phases, and steering phasors are computed in a single
    broadcasted pass, then contracted frame-by-frame (components arrive
    grouped by frame, so each frame is one contiguous matmul slice). Noise,
    when requested, is drawn frame-by-frame in sweep order so the generator
    stream matches ``F`` successive single-frame calls exactly.
    """
    num_frames = len(components_per_frame)
    frames = np.zeros((num_frames, config.num_antennas,
                       config.chirp.num_samples), dtype=complex)
    counts = [len(c) for c in components_per_frame]
    flat: list[PathComponent] = [c for frame in components_per_frame
                                 for c in frame]
    if flat:
        packed = pack_components(flat)
        beat, carrier, keep = _beat_and_carrier(packed, config.chirp)
        # Zero the amplitude of dropped tones instead of slicing them out:
        # frame boundaries stay intact, so each frame below is a plain
        # contiguous slice, and a zero-amplitude tone contributes exact
        # zeros just like the naive kernel's `continue`.
        amplitudes = np.where(keep, packed.amplitudes, 0.0)
        steering = np.exp(1j * array.arrival_phase_matrix(packed.angles))

        # Frames with equal component counts share one stacked contraction:
        # each matmul slice is the identical GEMM a per-frame call would
        # run, so grouping only removes per-frame dispatch overhead.
        starts = np.concatenate(([0], np.cumsum(counts)))
        groups: dict[int, list[int]] = {}
        for f, count in enumerate(counts):
            if count:
                groups.setdefault(count, []).append(f)
        for count, frame_ids in groups.items():
            # (F_g, C) gather indices into the flat component batch.
            index = (starts[frame_ids][:, None]
                     + np.arange(count)[None, :])
            frames[frame_ids] = _contract_frames_batched(
                amplitudes[index], beat[index], carrier[index],
                steering[:, index].transpose(1, 0, 2), config.chirp)

        start = 0
        for f, count in enumerate(counts):
            stop = start + count
            if count:
                SYNTH_STATS.record_frame(
                    count, int(count - np.count_nonzero(keep[start:stop])),
                    "vectorized")
            else:
                SYNTH_STATS.record_frame(0, 0, "vectorized")
            start = stop
    else:
        for _ in range(num_frames):
            SYNTH_STATS.record_frame(0, 0, "vectorized")

    if rng is not None and config.noise_std > 0:
        for f in range(num_frames):
            frames[f] += thermal_noise(config, rng, frames[f].shape)
    return frames


def synthesize_frame_batches(
        sweeps: Sequence[Sequence[Sequence[PathComponent]]],
        config: RadarConfig, array: UniformLinearArray,
        ) -> tuple[np.ndarray, list[np.ndarray]]:
    """Synthesize several sweeps (one per request) in a single fused batch.

    The batch-entry hook behind the micro-batching sensing service
    (:mod:`repro.serve`): every request's per-frame component lists are
    concatenated into one flat frame sequence, synthesized with a single
    :func:`synthesize_frames` pass (one packed-component batch, one
    beat/carrier/steering computation for *all* requests), and split back
    into per-request ``(F_r, K, N)`` views. Because each frame's
    contraction only reads its own contiguous component slice, every
    returned view is bitwise identical to what a standalone
    ``synthesize_frames`` call on that request alone would produce — the
    fusion is pure batching, never a numerical change. Noise is left to the
    caller (it is drawn from per-request generators; adding it in place to
    a view updates the fused cube too, since the views are disjoint
    windows into it).

    Returns the fused ``(sum F_r, K, N)`` cube and the per-request views.
    """
    frame_counts = [len(sweep) for sweep in sweeps]
    flat_frames: list[Sequence[PathComponent]] = [
        frame for sweep in sweeps for frame in sweep
    ]
    fused = synthesize_frames(flat_frames, config, array, rng=None)
    cubes: list[np.ndarray] = []
    start = 0
    for count in frame_counts:
        cubes.append(fused[start:start + count])
        start += count
    return fused, cubes
