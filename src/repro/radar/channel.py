"""Propagation channel: path amplitudes, thermal noise, and multipath.

Amplitudes follow the monostatic radar equation shape: received amplitude is
proportional to ``sqrt(rcs) / distance^2`` (power falls as the fourth power
of range). Environments add dynamic multipath — delayed, attenuated copies
of moving reflections bouncing off walls and furniture — which is the effect
the paper blames for the office's larger localization errors (Sec. 11.1).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ChannelModel", "MultipathSpec"]


@dataclasses.dataclass(frozen=True)
class MultipathSpec:
    """Statistical description of an environment's dynamic multipath.

    Attributes:
        mean_paths: average number of secondary bounces per moving reflector.
        excess_distance_mean: mean extra path length of a bounce, meters.
        excess_distance_std: spread of the extra path length, meters.
        relative_amplitude: amplitude of a bounce relative to its direct path.
        angle_spread: std-dev of the bounce's angular offset, radians.
    """

    mean_paths: float = 1.0
    excess_distance_mean: float = 0.5
    excess_distance_std: float = 0.35
    relative_amplitude: float = 0.25
    angle_spread: float = 0.15

    def __post_init__(self) -> None:
        if self.mean_paths < 0:
            raise ConfigurationError("mean_paths must be >= 0")
        if self.excess_distance_mean <= 0 or self.excess_distance_std < 0:
            raise ConfigurationError("excess distance parameters must be positive")
        if not 0 <= self.relative_amplitude < 1:
            raise ConfigurationError("relative_amplitude must be in [0, 1)")
        if self.angle_spread < 0:
            raise ConfigurationError("angle_spread must be >= 0")


class ChannelModel:
    """Amplitude, noise, and multipath generation for the frontend."""

    def __init__(self, *, reference_amplitude: float = 1.0,
                 reference_distance: float = 1.0,
                 multipath: MultipathSpec | None = None) -> None:
        """Create a channel.

        Args:
            reference_amplitude: received amplitude of a unit-RCS reflector
                at ``reference_distance`` (sets the absolute signal scale).
            reference_distance: calibration distance in meters.
            multipath: dynamic multipath statistics; ``None`` disables it.
        """
        if reference_amplitude <= 0 or reference_distance <= 0:
            raise ConfigurationError("reference amplitude/distance must be positive")
        self.reference_amplitude = reference_amplitude
        self.reference_distance = reference_distance
        self.multipath = multipath

    def path_amplitude(self, distance: float | np.ndarray,
                       rcs: float | np.ndarray = 1.0) -> float | np.ndarray:
        """Received amplitude of a reflector at ``distance`` with ``rcs``."""
        d = np.maximum(np.asarray(distance, dtype=float), 1e-3)
        scale = self.reference_amplitude * self.reference_distance ** 2
        return scale * np.sqrt(np.asarray(rcs, dtype=float)) / d ** 2

    def thermal_noise(self, shape: tuple[int, ...], noise_std: float,
                      rng: np.random.Generator) -> np.ndarray:
        """Complex circular Gaussian noise of the given shape."""
        if noise_std < 0:
            raise ConfigurationError("noise_std must be >= 0")
        if noise_std == 0:
            return np.zeros(shape, dtype=complex)
        scale = noise_std / np.sqrt(2.0)
        return rng.normal(0.0, scale, shape) + 1j * rng.normal(0.0, scale, shape)

    def sample_multipath(self, distance: float, angle: float, amplitude: float,
                         rng: np.random.Generator) -> list[tuple[float, float, float]]:
        """Draw secondary (distance, angle, amplitude) bounces for one path.

        Returns an empty list when multipath is disabled. Bounce count is
        Poisson with the configured mean; each bounce adds excess distance
        and a small angular offset, at reduced amplitude.
        """
        if self.multipath is None or self.multipath.mean_paths == 0:
            return []
        spec = self.multipath
        count = int(rng.poisson(spec.mean_paths))
        bounces = []
        for _ in range(count):
            excess = abs(rng.normal(spec.excess_distance_mean,
                                    spec.excess_distance_std))
            bounce_angle = angle + rng.normal(0.0, spec.angle_spread)
            bounce_angle = float(np.clip(bounce_angle, 1e-3, np.pi - 1e-3))
            bounce_amp = amplitude * spec.relative_amplitude * rng.uniform(0.5, 1.0)
            bounces.append((distance + excess, bounce_angle, bounce_amp))
        return bounces
