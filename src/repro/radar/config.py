"""Radar configuration: chirp, array, frame timing, and noise floor."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import constants
from repro.errors import ConfigurationError
from repro.signal.chirp import ChirpConfig

__all__ = ["RadarConfig"]


@dataclasses.dataclass(frozen=True)
class RadarConfig:
    """Full configuration of the simulated FMCW radar.

    Attributes:
        chirp: chirp sweep and beat sampling parameters.
        num_antennas: receive antennas in the 1-D array (paper: 7).
        antenna_spacing: element spacing in meters; ``None`` means half the
            center-frequency wavelength (the standard unambiguous spacing).
        position: radar (x, y) location in room coordinates, meters.
        axis_angle: orientation of the array axis, radians from +x.
        facing_angle: boresight direction into the room, radians from +x.
            Must not be parallel to the array axis.
        frame_rate: chirp frames per second used for tracking.
        noise_std: standard deviation of complex thermal noise per beat
            sample (per antenna), in the same linear units as path amplitudes.
        angle_grid_points: number of beamforming angles spanning (0, pi).
        min_range: near-field blanking distance in meters. Real FMCW
            frontends discard the first range bins (TX leakage, coupling);
            this also removes the switching mirror line that can land
            between the radar and the tag (Sec. 5.1's negative harmonics).
    """

    chirp: ChirpConfig = dataclasses.field(default_factory=ChirpConfig)
    num_antennas: int = constants.RADAR_NUM_ANTENNAS
    antenna_spacing: float | None = None
    position: tuple[float, float] = (0.0, 0.0)
    axis_angle: float = 0.0
    facing_angle: float = np.pi / 2.0
    frame_rate: float = 10.0
    noise_std: float = 5e-4
    angle_grid_points: int = 181
    min_range: float = 0.6

    def __post_init__(self) -> None:
        if self.num_antennas < 2:
            raise ConfigurationError("angle estimation needs at least 2 antennas")
        if self.antenna_spacing is not None and self.antenna_spacing <= 0:
            raise ConfigurationError("antenna_spacing must be positive")
        if self.frame_rate <= 0:
            raise ConfigurationError("frame_rate must be positive")
        if self.frame_rate > 1.0 / self.chirp.duration:
            raise ConfigurationError(
                "frame_rate exceeds 1/chirp duration: frames would overlap"
            )
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be non-negative")
        if self.angle_grid_points < 8:
            raise ConfigurationError("angle grid needs at least 8 points")
        if self.min_range < 0:
            raise ConfigurationError("min_range must be >= 0")
        alignment = abs(np.cos(self.facing_angle - self.axis_angle))
        if alignment > 0.999:
            raise ConfigurationError(
                "facing direction must not be parallel to the array axis"
            )

    @property
    def spacing(self) -> float:
        """Effective element spacing (defaults to lambda/2 at band center)."""
        if self.antenna_spacing is not None:
            return self.antenna_spacing
        return self.chirp.wavelength / 2.0

    @property
    def frame_interval(self) -> float:
        """Seconds between successive frames."""
        return 1.0 / self.frame_rate

    @property
    def angular_resolution(self) -> float:
        """Approximate array angular resolution pi/K (Sec. 5.2), radians."""
        return np.pi / self.num_antennas

    def angle_grid(self) -> np.ndarray:
        """Beamforming angle grid over the open interval (0, pi), radians."""
        return np.linspace(0.0, np.pi, self.angle_grid_points + 2)[1:-1]
