"""Beat-signal synthesis: from propagation paths to per-antenna ADC samples.

After dechirping, each propagation path contributes one complex tone to the
beat signal (Sec. 3):

    a * exp(j * (2 pi (f_b + f_off) t + phi_carrier + phi_extra + phi_k))

with ``f_b = sl * tau`` set by the path's geometric distance, ``phi_carrier
= 2 pi f0 tau`` carrying sub-wavelength motion, ``phi_k`` the per-antenna
array phase, and — crucially for RF-Protect — an optional *beat frequency
offset* ``f_off``. Physical scatterers have ``f_off = 0``; the switched
reflector's square-wave harmonics appear as components with ``f_off = ±n *
f_switch`` (Sec. 5.1), which is exactly how the tag spoofs distance.

Two interchangeable synthesis kernels exist: the reference per-component
loop in this module (:func:`synthesize_frame_naive`) and the batched,
broadcasted engine in :mod:`repro.radar.batch`. Both register with the
Synthesize stage of the kernel registry (:mod:`repro.radar.stages`);
:func:`synthesize_frame` resolves through that registry, which follows the
``RF_PROTECT_SYNTH`` environment variable (``vectorized`` by default,
``naive`` as the debugging escape hatch); the equivalence suite in
``tests/test_frontend_equivalence.py`` pins the two kernels to each other.
"""

from __future__ import annotations

import dataclasses
import logging

import numpy as np

from repro.errors import SignalProcessingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.config import RadarConfig

__all__ = [
    "PathComponent",
    "SYNTH_STATS",
    "SynthesisStats",
    "synthesis_backend",
    "synthesize_frame",
    "synthesize_frame_naive",
]

logger = logging.getLogger(__name__)


@dataclasses.dataclass
class SynthesisStats:
    """Process-wide counters for the synthesis kernels.

    A super-Nyquist tone is silently invisible to the radar (a real ADC's
    anti-alias filter removes it), but silently *dropping* it in simulation
    made a whole class of bugs untestable. Both kernels log each drop at
    debug level and accumulate counts here so tests can assert the naive
    and vectorized paths discard exactly the same tones.
    """

    frames_synthesized: int = 0
    components_seen: int = 0
    dropped_tones: int = 0

    def reset(self) -> None:
        self.frames_synthesized = 0
        self.components_seen = 0
        self.dropped_tones = 0

    def record_frame(self, num_components: int, num_dropped: int,
                     backend: str) -> None:
        self.frames_synthesized += 1
        self.components_seen += num_components
        self.dropped_tones += num_dropped
        if num_dropped:
            logger.debug(
                "%s synthesis dropped %d/%d super-Nyquist tone(s)",
                backend, num_dropped, num_components,
            )


SYNTH_STATS = SynthesisStats()


def synthesis_backend() -> str:
    """The active synthesis kernel, from ``RF_PROTECT_SYNTH``.

    Thin alias for the Synthesize stage's default backend, resolved
    through the kernel registry (:mod:`repro.radar.stages`) — the one
    module allowed to branch on the backend accessors (see RFP009).
    """
    # Imported lazily: repro.radar.stages registers this module's kernels,
    # so it imports us at module load.
    from repro.radar.stages import Stage, default_backend

    return default_backend(Stage.SYNTHESIZE)


@dataclasses.dataclass(frozen=True)
class PathComponent:
    """One tone in the dechirped beat signal.

    Attributes:
        distance: one-way geometric distance radar -> scatter point, meters.
            Sets both the beat frequency and the carrier phase.
        angle: azimuth of arrival, radians from the array axis, in (0, pi).
        amplitude: linear amplitude at the radar.
        beat_offset_hz: extra beat-frequency shift (0 for physical paths;
            ``±n * f_switch`` for the tag's switching harmonics).
        phase_offset: extra carrier phase in radians (breathing spoof,
            switching-oscillator phase, random scatter phase).
        extra_delay_s: true additional propagation delay, seconds — the
            mechanism of a *delay-line* spoofer (Sec. 13's pulsed-radar
            extension). Unlike ``beat_offset_hz`` it is modulation-agnostic:
            an FMCW radar sees it as a beat shift ``sl * delay`` plus the
            carrier rotation, a pulsed radar sees the echo arrive late.
    """

    distance: float
    angle: float
    amplitude: float
    beat_offset_hz: float = 0.0
    phase_offset: float = 0.0
    extra_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise SignalProcessingError(f"path distance must be >= 0, got {self.distance}")
        if self.amplitude < 0:
            raise SignalProcessingError(f"path amplitude must be >= 0, got {self.amplitude}")
        if self.extra_delay_s < 0:
            raise SignalProcessingError(
                f"extra delay must be >= 0, got {self.extra_delay_s}"
            )


def apparent_distance(component: PathComponent, config: RadarConfig) -> float:
    """Distance the radar measures for ``component`` under ``config``."""
    delay_distance = float(
        config.chirp.delay_to_distance(component.extra_delay_s)
    )
    return float(component.distance + delay_distance
                 + config.chirp.offset_for_switch_frequency(component.beat_offset_hz))


def thermal_noise(config: RadarConfig, rng: np.random.Generator,
                  shape: tuple[int, ...]) -> np.ndarray:
    """Complex thermal noise with ``config.noise_std`` per-sample deviation.

    Both kernels (and the batched sweep path) draw noise through this one
    helper with identical generator calls, so a fixed-seed ``rng`` yields a
    bit-identical noise stream regardless of which backend synthesized the
    tones.
    """
    scale = config.noise_std / np.sqrt(2.0)
    return rng.normal(0.0, scale, shape) + 1j * rng.normal(0.0, scale, shape)


def synthesize_frame_naive(components: list[PathComponent], config: RadarConfig,
                           array: UniformLinearArray,
                           rng: np.random.Generator | None = None) -> np.ndarray:
    """Reference per-component synthesis loop (the pre-vectorization kernel).

    Kept as the ground truth the batched engine is tested against, and as
    the ``RF_PROTECT_SYNTH=naive`` debugging fallback.
    """
    chirp = config.chirp
    t = chirp.sample_times()
    frame = np.zeros((config.num_antennas, chirp.num_samples), dtype=complex)

    dropped = 0
    for component in components:
        # A true extra delay behaves exactly like extra distance for FMCW.
        effective_distance = component.distance + float(
            chirp.delay_to_distance(component.extra_delay_s)
        )
        beat_frequency = (chirp.distance_to_beat_frequency(effective_distance)
                          + component.beat_offset_hz)
        if abs(beat_frequency) >= chirp.sample_rate / 2.0:
            # Tone beyond Nyquist: a real ADC's anti-alias filter removes it.
            dropped += 1
            continue
        carrier_phase = (chirp.carrier_phase(effective_distance)
                         + component.phase_offset)
        tone = component.amplitude * np.exp(
            1j * (2.0 * np.pi * beat_frequency * t + carrier_phase)
        )
        antenna_phases = array.arrival_phases(component.angle)
        frame += np.exp(1j * antenna_phases)[:, None] * tone[None, :]
    SYNTH_STATS.record_frame(len(components), dropped, "naive")

    if rng is not None and config.noise_std > 0:
        frame = frame + thermal_noise(config, rng, frame.shape)
    return frame


def synthesize_frame(components: list[PathComponent], config: RadarConfig,
                     array: UniformLinearArray,
                     rng: np.random.Generator | None = None) -> np.ndarray:
    """Synthesize one frame of beat samples for all antennas.

    Resolves the frame-level Synthesize kernel through the registry in
    :mod:`repro.radar.stages` — the batched engine
    (:mod:`repro.radar.batch`) or the reference loop above according to
    ``RF_PROTECT_SYNTH``.

    Args:
        components: propagation paths visible in this chirp.
        config: radar configuration (chirp, noise, array size).
        array: array geometry supplying the per-antenna arrival phases.
        rng: random generator for thermal noise; ``None`` disables noise.

    Returns:
        Complex array of shape ``(num_antennas, num_samples)``.
    """
    from repro.radar.stages import frame_synthesizer

    return frame_synthesizer()(components, config, array, rng)
