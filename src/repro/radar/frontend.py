"""Beat-signal synthesis: from propagation paths to per-antenna ADC samples.

After dechirping, each propagation path contributes one complex tone to the
beat signal (Sec. 3):

    a * exp(j * (2 pi (f_b + f_off) t + phi_carrier + phi_extra + phi_k))

with ``f_b = sl * tau`` set by the path's geometric distance, ``phi_carrier
= 2 pi f0 tau`` carrying sub-wavelength motion, ``phi_k`` the per-antenna
array phase, and — crucially for RF-Protect — an optional *beat frequency
offset* ``f_off``. Physical scatterers have ``f_off = 0``; the switched
reflector's square-wave harmonics appear as components with ``f_off = ±n *
f_switch`` (Sec. 5.1), which is exactly how the tag spoofs distance.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SignalProcessingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.config import RadarConfig

__all__ = ["PathComponent", "synthesize_frame"]


@dataclasses.dataclass(frozen=True)
class PathComponent:
    """One tone in the dechirped beat signal.

    Attributes:
        distance: one-way geometric distance radar -> scatter point, meters.
            Sets both the beat frequency and the carrier phase.
        angle: azimuth of arrival, radians from the array axis, in (0, pi).
        amplitude: linear amplitude at the radar.
        beat_offset_hz: extra beat-frequency shift (0 for physical paths;
            ``±n * f_switch`` for the tag's switching harmonics).
        phase_offset: extra carrier phase in radians (breathing spoof,
            switching-oscillator phase, random scatter phase).
        extra_delay_s: true additional propagation delay, seconds — the
            mechanism of a *delay-line* spoofer (Sec. 13's pulsed-radar
            extension). Unlike ``beat_offset_hz`` it is modulation-agnostic:
            an FMCW radar sees it as a beat shift ``sl * delay`` plus the
            carrier rotation, a pulsed radar sees the echo arrive late.
    """

    distance: float
    angle: float
    amplitude: float
    beat_offset_hz: float = 0.0
    phase_offset: float = 0.0
    extra_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise SignalProcessingError(f"path distance must be >= 0, got {self.distance}")
        if self.amplitude < 0:
            raise SignalProcessingError(f"path amplitude must be >= 0, got {self.amplitude}")
        if self.extra_delay_s < 0:
            raise SignalProcessingError(
                f"extra delay must be >= 0, got {self.extra_delay_s}"
            )


def apparent_distance(component: PathComponent, config: RadarConfig) -> float:
    """Distance the radar measures for ``component`` under ``config``."""
    delay_distance = float(
        config.chirp.delay_to_distance(component.extra_delay_s)
    )
    return float(component.distance + delay_distance
                 + config.chirp.offset_for_switch_frequency(component.beat_offset_hz))


def synthesize_frame(components: list[PathComponent], config: RadarConfig,
                     array: UniformLinearArray,
                     rng: np.random.Generator | None = None) -> np.ndarray:
    """Synthesize one frame of beat samples for all antennas.

    Args:
        components: propagation paths visible in this chirp.
        config: radar configuration (chirp, noise, array size).
        array: array geometry supplying the per-antenna arrival phases.
        rng: random generator for thermal noise; ``None`` disables noise.

    Returns:
        Complex array of shape ``(num_antennas, num_samples)``.
    """
    chirp = config.chirp
    t = chirp.sample_times()
    frame = np.zeros((config.num_antennas, chirp.num_samples), dtype=complex)

    for component in components:
        # A true extra delay behaves exactly like extra distance for FMCW.
        effective_distance = component.distance + float(
            chirp.delay_to_distance(component.extra_delay_s)
        )
        beat_frequency = (chirp.distance_to_beat_frequency(effective_distance)
                          + component.beat_offset_hz)
        if abs(beat_frequency) >= chirp.sample_rate / 2.0:
            # Tone beyond Nyquist: a real ADC's anti-alias filter removes it.
            continue
        carrier_phase = (chirp.carrier_phase(effective_distance)
                         + component.phase_offset)
        tone = component.amplitude * np.exp(
            1j * (2.0 * np.pi * beat_frequency * t + carrier_phase)
        )
        antenna_phases = array.arrival_phases(component.angle)
        frame += np.exp(1j * antenna_phases)[:, None] * tone[None, :]

    if rng is not None and config.noise_std > 0:
        scale = config.noise_std / np.sqrt(2.0)
        frame = frame + (rng.normal(0.0, scale, frame.shape)
                         + 1j * rng.normal(0.0, scale, frame.shape))
    return frame
