"""Batched receive processing: whole beat cubes -> range-angle map stacks.

The reference path in :mod:`repro.radar.processing` handles one frame at a
time: range-FFT its antennas, subtract the previous frame's profile, then
beamform (Eq. 2) across the angle grid. Looping that over a sweep pays the
Python dispatch, the window/steering/range-axis recomputation, and many
small BLAS calls once *per frame*.

This module processes the whole ``(F, K, N)`` cube from
``synthesize_frames`` in three cube-wide passes:

1. **Range FFT** — one windowed ``np.fft.fft`` over the full cube (in
   cache-sized frame blocks) yields every frame's complex range profiles
   ``(F, K, B)`` at once.
2. **Background subtraction** — the paper's successive-frame subtraction is
   a single shifted difference on the (cropped) profile cube — frame 0
   subtracts to zero, matching the reference path's one-frame warmup.
3. **Beamforming** — Eq. 2 for all frames via the lag-domain identity:
   per-bin spatial autocorrelation lags, then two thin real GEMMs against
   cos/sin planes fetched from the process-wide memo
   (:mod:`repro.radar.antenna`), writing a contiguous ``(F, B, A)`` power
   cube whose per-frame slices back the
   :class:`~repro.radar.processing.RangeAngleProfile` views.

Stage by stage, the arithmetic is either identical to the reference
kernel's (FFT, subtraction) or an exact algebraic regrouping of it
(lag-domain Eq. 2), so the two backends agree to ``atol=1e-10``
(``tests/test_pipeline_equivalence.py`` pins this); the
backend is selected with ``RF_PROTECT_PIPELINE=naive|vectorized`` through
the typed registry in :mod:`repro.config`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SignalProcessingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.config import RadarConfig
from repro.radar.processing import (
    ZERO_PAD_FACTOR,
    RangeAngleProfile,
    range_keep_mask,
)
from repro.signal.spectral import range_axis, range_fft

__all__ = [
    "SweepProcessingResult",
    "batched_background_subtract",
    "batched_beamform_power",
    "batched_lag_vectors",
    "batched_range_profiles",
    "beamform_from_lags",
    "pipeline_backend",
    "process_sweep",
]

#: Working-set ceiling (bytes) for the blocked cube passes. Blocks of this
#: size keep each pass's operands L2-resident on small hosts while staying
#: large enough that loop/BLAS dispatch overhead is negligible.
_CHUNK_BYTES = 1 << 22


def pipeline_backend() -> str:
    """The active receive-processing engine, from ``RF_PROTECT_PIPELINE``.

    Thin alias for the receive stages' default backend, resolved through
    the kernel registry (:mod:`repro.radar.stages`) — the one module
    allowed to branch on the backend accessors (see RFP009).
    """
    # Imported lazily: repro.radar.stages registers kernels built from
    # this module's batch passes, so it imports us at module load.
    from repro.radar.stages import Stage, default_backend

    return default_backend(Stage.BEAMFORM)


def batched_range_profiles(frames: np.ndarray,
                           config: RadarConfig) -> np.ndarray:
    """Complex range profiles for a whole sweep, shape ``(F, K, B)``.

    One windowed FFT over the full beat cube — numpy applies the identical
    1-D transform along the last axis, so each frame's profiles match
    ``frame_range_profiles`` bit for bit.
    """
    cube = np.asarray(frames)
    if cube.ndim != 3 or cube.shape[1] != config.num_antennas:
        raise SignalProcessingError(
            f"beat cube must be (num_frames, num_antennas, num_samples), "
            f"got {cube.shape}"
        )
    num_frames, num_antennas, _ = cube.shape
    n_bins = config.chirp.num_samples * ZERO_PAD_FACTOR // 2
    # Transform in frame blocks sized so each block's windowed input and
    # spectrum stay cache-resident — one giant FFT over a multi-ten-MB cube
    # thrashes, while the per-block transforms are identical 1-D FFTs and
    # land bit-for-bit in the preallocated output.
    block = max(1, _CHUNK_BYTES // (num_antennas * n_bins * 16))
    if block >= num_frames:
        return range_fft(cube, config.chirp, zero_pad_factor=ZERO_PAD_FACTOR)
    out = np.empty((num_frames, num_antennas, n_bins), dtype=np.complex128)
    for start in range(0, num_frames, block):
        stop = min(start + block, num_frames)
        out[start:stop] = range_fft(cube[start:stop], config.chirp,
                                    zero_pad_factor=ZERO_PAD_FACTOR)
    return out


def batched_background_subtract(profile_cube: np.ndarray) -> np.ndarray:
    """Successive-frame subtraction as one shifted difference, ``(F, ...)``.

    Frame ``f`` becomes ``cube[f] - cube[f - 1]``; frame 0 has nothing to
    subtract and is zero, exactly like the reference path's warmup frame.
    """
    cube = np.asarray(profile_cube)
    if cube.ndim < 1 or cube.shape[0] < 1:
        raise SignalProcessingError(
            f"profile cube needs a leading frame axis, got shape {cube.shape}"
        )
    subtracted = np.zeros_like(cube)
    subtracted[1:] = cube[1:] - cube[:-1]
    return subtracted


def batched_beamform_power(subtracted_cube: np.ndarray,
                           array: UniformLinearArray, angles: np.ndarray, *,
                           taper: str | None = "hamming") -> np.ndarray:
    """Eq. 2 over every frame at once: real power cube ``(F, B, A)``.

    Rather than contracting every (frame, bin) vector against all ``A``
    steering vectors and squaring (``28 A`` real MACs per map cell), the
    sweep is beamformed in the *lag domain*. The element-``k`` steering
    phase is ``k * c(theta)``, linear in ``k``, so Eq. 2 factors through
    the spatial autocorrelation of the tapered signals ``g = w * h``:

        P(theta) = R_0 + 2 sum_m [Re R_m cos(m c) + Im R_m sin(m c)]

    with ``R_m = sum_l g_{l+m} conj(g_l)`` the lag-``m`` autocorrelation
    (``m = 1 .. K-1``). The lags cost ``O(K^2)`` per bin *once*, and the
    whole angle sweep collapses into a single thin real GEMM
    ``(F*B, 2K-1) @ (2K-1, A)`` against the memoized lag basis
    (:meth:`~repro.radar.antenna.UniformLinearArray.lag_power_basis`,
    which folds the factor 2 and the ``R_0`` ones-row into the plane) —
    ~13 real MACs per map cell for K = 7 instead of 28, producing real
    power directly with no complex intermediate and no post-passes. The
    expansion is an exact algebraic identity, so the result matches the
    reference ``|steering @ h|^2`` to a few ulp (well inside the pinned
    1e-10 budget).
    """
    cube = np.asarray(subtracted_cube)
    if cube.ndim != 3 or cube.shape[1] != array.num_antennas:
        raise SignalProcessingError(
            f"profile cube must be (num_frames, {array.num_antennas}, "
            f"num_bins), got {cube.shape}"
        )
    num_frames, _, num_bins = cube.shape
    lag_vectors = batched_lag_vectors(cube, array, taper=taper)
    power = beamform_from_lags(lag_vectors, array, angles)
    return power.reshape(num_frames, num_bins, power.shape[-1])


def batched_lag_vectors(subtracted_cube: np.ndarray,
                        array: UniformLinearArray, *,
                        taper: str | None = "hamming") -> np.ndarray:
    """Per-cell spatial-autocorrelation lags for a whole cube, ``(F*B, 2K-1)``.

    The first (lag-vector) half of :func:`batched_beamform_power`, exposed
    as its own batch-entry hook: every row is computed independently of
    every other row, so the serving engine can stack *several requests'*
    subtracted cubes (same antenna count) into one call and still get, row
    for row, exactly the values a per-request call would produce.
    """
    cube = np.asarray(subtracted_cube)
    if cube.ndim != 3 or cube.shape[1] != array.num_antennas:
        raise SignalProcessingError(
            f"profile cube must be (num_frames, {array.num_antennas}, "
            f"num_bins), got {cube.shape}"
        )
    num_frames, num_antennas, num_bins = cube.shape
    rows = num_frames * num_bins

    # Tapered signals, laid out (F*B, K) so the lag products and the GEMM
    # stream along contiguous rows.
    flat = np.ascontiguousarray(cube.transpose(0, 2, 1)).reshape(-1, num_antennas)
    tapered = flat * array.taper_weights(taper)

    # Per-row lag vector [R_0 | Re R_1..R_{K-1} | Im R_1..R_{K-1}],
    # matching the basis's row order.
    lag_vectors = np.empty((rows, 2 * num_antennas - 1), dtype=np.float64)
    lag_vectors[:, 0] = np.einsum("rk,rk->r", tapered.real, tapered.real)
    lag_vectors[:, 0] += np.einsum("rk,rk->r", tapered.imag, tapered.imag)
    for m in range(1, num_antennas):
        lag = np.einsum("rk,rk->r", tapered[:, m:],
                        np.conj(tapered[:, :num_antennas - m]))
        lag_vectors[:, m] = lag.real
        lag_vectors[:, num_antennas - 1 + m] = lag.imag
    return lag_vectors


def beamform_from_lags(lag_vectors: np.ndarray, array: UniformLinearArray,
                       angles: np.ndarray) -> np.ndarray:
    """Eq. 2 power from precomputed lag vectors: ``(rows, A)`` real GEMM.

    The second half of :func:`batched_beamform_power`. Kept separate so a
    caller that fused several requests' lag vectors into one array can
    still run this thin GEMM *per request* — the output shape then depends
    only on the request itself, which keeps served results bitwise
    independent of how the scheduler happened to group them.
    """
    lags = np.asarray(lag_vectors)
    expected = 2 * array.num_antennas - 1
    if lags.ndim != 2 or lags.shape[1] != expected:
        raise SignalProcessingError(
            f"lag vectors must be (rows, {expected}), got {lags.shape}"
        )
    num_angles = int(np.asarray(angles).shape[0])
    basis = array.lag_power_basis(np.asarray(angles, dtype=float))
    power = np.empty((lags.shape[0], num_angles), dtype=np.float64)
    np.matmul(lags, basis, out=power)
    return power


def beamform_from_lags_stacked(lag_stack: np.ndarray,
                               array: UniformLinearArray,
                               angles: np.ndarray) -> np.ndarray:
    """Eq. 2 power for a stack of equal-row-count lag blocks, ``(S, rows, A)``.

    The serving engine's grouped form of :func:`beamform_from_lags`: when
    several batched requests share a row count, their per-request GEMMs
    collapse into one stacked matmul. Each stack slice runs the identical
    ``(rows, 2K-1) @ (2K-1, A)`` GEMM a standalone call would, so every
    request's power map stays bitwise independent of how many batch-mates
    it happened to share the stack with.
    """
    lags = np.asarray(lag_stack)
    expected = 2 * array.num_antennas - 1
    if lags.ndim != 3 or lags.shape[2] != expected:
        raise SignalProcessingError(
            f"stacked lag vectors must be (stack, rows, {expected}), "
            f"got {lags.shape}"
        )
    num_angles = int(np.asarray(angles).shape[0])
    basis = array.lag_power_basis(np.asarray(angles, dtype=float))
    power = np.empty((lags.shape[0], lags.shape[1], num_angles),
                     dtype=np.float64)
    np.matmul(lags, basis, out=power)
    return power


@dataclasses.dataclass(frozen=True)
class SweepProcessingResult:
    """Everything the batched engine produced for one sweep.

    Attributes:
        raw_profiles: pre-subtraction complex profiles, ``(F, K, B)``.
        power_cube: contiguous range-angle power stack, ``(F, B_kept, A)``,
            frozen read-only because every profile view shares it.
        ranges: cropped range axis shared by every frame (read-only).
        angles: beamforming grid shared by every frame (read-only).
        times: frame capture times, seconds.
    """

    raw_profiles: np.ndarray
    power_cube: np.ndarray
    ranges: np.ndarray
    angles: np.ndarray
    times: np.ndarray

    def profiles(self) -> list[RangeAngleProfile]:
        """Per-frame :class:`RangeAngleProfile`\\ s as cheap views.

        Each profile's ``power`` is a zero-copy slice of :attr:`power_cube`
        and its axes are the shared read-only sweep axes — building the
        list allocates no new numeric data.
        """
        return [
            RangeAngleProfile(power=self.power_cube[f], ranges=self.ranges,
                              angles=self.angles, time=float(t))
            for f, t in enumerate(self.times)
        ]


def process_sweep(frames: np.ndarray, config: RadarConfig,
                  array: UniformLinearArray, times: np.ndarray, *,
                  max_range: float | None = None,
                  min_range: float | None = None) -> SweepProcessingResult:
    """Run the full receive pipeline on a beat cube in three batched passes.

    Args:
        frames: raw beat cube ``(F, K, N)`` from ``synthesize_frames``.
        config: radar configuration the cube was captured under.
        array: array geometry for Eq. 2.
        times: frame capture times, length ``F``.
        max_range: optional far crop of the range axis, meters.
        min_range: near-field blanking (defaults to ``config.min_range``).
    """
    times = np.asarray(times, dtype=float)
    if times.shape[0] != np.asarray(frames).shape[0]:
        raise SignalProcessingError(
            f"got {times.shape[0]} frame times for "
            f"{np.asarray(frames).shape[0]} frames"
        )
    # Imported lazily — see pipeline_backend().
    from repro.radar.stages import (
        RECEIVE_PLAN,
        ExecutionContext,
        StageBinding,
        execute,
    )

    ctx = ExecutionContext(
        array=array, times=times, config=config, max_range=max_range,
        min_range=config.min_range if min_range is None else min_range,
    )
    ctx.workspace["frames"] = np.asarray(frames)
    execute(tuple(StageBinding(b.stage, backend="vectorized")
                  for b in RECEIVE_PLAN), ctx)
    return SweepProcessingResult(raw_profiles=ctx.workspace["raw_profiles"],
                                 power_cube=ctx.workspace["power_cube"],
                                 ranges=ctx.workspace["ranges"],
                                 angles=ctx.workspace["angles"],
                                 times=times)
