"""The paper's processing pipeline (Sec. 9.1): beats -> range-angle maps.

Per frame: range-FFT each antenna's beat signal, subtract the previous
frame's profile to remove static reflectors, then beamform (Eq. 2) across an
angle grid to obtain the range-angle power profile whose peaks are humans
(or RF-Protect phantoms — Fig. 10).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SignalProcessingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.config import RadarConfig
from repro.signal.detection import PeakDetection, detect_peaks_2d
from repro.signal.spectral import range_axis, range_fft

__all__ = [
    "RangeAngleProfile",
    "ZERO_PAD_FACTOR",
    "background_subtract",
    "compute_range_angle_map",
    "frame_range_profiles",
    "range_keep_mask",
]

#: Range-FFT length multiplier used by the *entire* receive chain — the
#: per-frame reference path here, the batched engine in
#: :mod:`repro.radar.pipeline`, and ``SensingResult.range_bins()`` all read
#: this one constant, so the FFT grid and the reported range axis can never
#: drift apart.
ZERO_PAD_FACTOR = 2

# Backwards-compatible private alias (pre-pipeline callers imported this).
_ZERO_PAD_FACTOR = ZERO_PAD_FACTOR


def frame_range_profiles(frame: np.ndarray, config: RadarConfig) -> np.ndarray:
    """Complex range profiles per antenna, shape ``(K, num_bins)``."""
    beats = np.asarray(frame)
    if beats.ndim != 2 or beats.shape[0] != config.num_antennas:
        raise SignalProcessingError(
            f"frame must be (num_antennas, num_samples), got {beats.shape}"
        )
    return range_fft(beats, config.chirp, zero_pad_factor=ZERO_PAD_FACTOR)


def background_subtract(profiles: np.ndarray,
                        previous: np.ndarray | None) -> np.ndarray:
    """Successive-frame subtraction: removes static reflections exactly.

    The first frame (``previous is None``) has nothing to subtract and
    returns zeros, matching a real pipeline's one-frame warmup.
    """
    current = np.asarray(profiles)
    if previous is None:
        return np.zeros_like(current)
    prev = np.asarray(previous)
    if prev.shape != current.shape:
        raise SignalProcessingError(
            f"frame shape changed between subtractions: {prev.shape} -> {current.shape}"
        )
    return current - prev


def range_keep_mask(ranges: np.ndarray, *, min_range: float,
                    max_range: float | None) -> np.ndarray:
    """Boolean mask of range bins inside ``[min_range, max_range]``.

    One definition shared by the per-frame reference path and the batched
    pipeline so both crop the range axis identically.
    """
    keep = ranges >= min_range
    if max_range is not None:
        keep = keep & (ranges <= max_range)
    return keep


@dataclasses.dataclass(frozen=True)
class RangeAngleProfile:
    """One frame's range-angle power map and its coordinate axes.

    Attributes:
        power: real array ``(num_bins, num_angles)``.
        ranges: distance of each range bin, meters.
        angles: beamforming angle of each column, radians from array axis.
        time: frame capture time, seconds.
    """

    power: np.ndarray
    ranges: np.ndarray
    angles: np.ndarray
    time: float

    def peak_position(self, peak: PeakDetection,
                      array: UniformLinearArray) -> np.ndarray:
        """Cartesian (x, y) of a detected peak, on the array's facing side."""
        distance = float(self.ranges[peak.range_index])
        angle = float(self.angles[peak.angle_index])
        return array.point_at(distance, angle)

    def detect(self, *, threshold: float, max_peaks: int | None = None,
               min_range_separation_m: float = 0.3,
               min_angle_separation_rad: float = 0.12) -> list[PeakDetection]:
        """Detect peaks with physical (meters/radians) separation limits."""
        range_step = float(self.ranges[1] - self.ranges[0])
        angle_step = float(abs(self.angles[1] - self.angles[0]))
        return detect_peaks_2d(
            self.power,
            threshold=threshold,
            max_peaks=max_peaks,
            min_range_separation=max(1, int(round(min_range_separation_m / range_step))),
            min_angle_separation=max(1, int(round(min_angle_separation_rad / angle_step))),
        )

    def total_power(self) -> float:
        """Sum of the map's power — used for empty-frame rejection."""
        return float(self.power.sum())


def compute_range_angle_map(subtracted_profiles: np.ndarray,
                            config: RadarConfig, array: UniformLinearArray,
                            time: float, *,
                            max_range: float | None = None,
                            min_range: float | None = None) -> RangeAngleProfile:
    """Beamform background-subtracted per-antenna profiles into a map.

    Args:
        subtracted_profiles: complex ``(K, num_bins)`` after subtraction.
        config: radar configuration.
        array: array geometry for Eq. 2.
        time: frame capture time (propagated into the result).
        max_range: optional crop — bins beyond this distance are discarded
            (rooms are finite; this also drops switching harmonics that land
            outside the home, as in Sec. 5.1).
        min_range: near-field blanking (defaults to ``config.min_range``).
    """
    ranges = range_axis(config.chirp, zero_pad_factor=ZERO_PAD_FACTOR)
    profiles = np.asarray(subtracted_profiles)
    if min_range is None:
        min_range = config.min_range
    keep = range_keep_mask(ranges, min_range=min_range, max_range=max_range)
    ranges = ranges[keep]
    profiles = profiles[:, keep]
    angles = config.angle_grid()
    power = array.beamform(profiles, angles)  # (num_angles, num_bins)
    return RangeAngleProfile(power=power.T, ranges=ranges, angles=angles, time=time)
