"""Pulsed (impulse) radar: the "New Sensor Types" extension of Sec. 13.

The paper notes that pulsed radars are "prone to similar defenses", but
that distance spoofing "needs to be achieved through other mechanisms (e.g.
by adding a set of delay lines and switching between them)". This module
provides the pulsed-radar substrate to test that claim:

- the radar transmits a short Gaussian pulse, receives the superposition of
  delayed echoes per antenna, matched-filters against the pulse, and reuses
  the *same* downstream pipeline as the FMCW radar (background subtraction,
  Eq. 2 beamforming, range-angle maps, Kalman tracking);
- a :class:`~repro.radar.frontend.PathComponent`'s ``extra_delay_s`` delays
  its echo — the delay-line spoofing mechanism;
- a component's ``beat_offset_hz`` (the FMCW switching trick) does NOT move
  a pulsed echo: on/off switching at kHz rates only gates whole pulses, so
  the line appears at its *physical* distance at duty-cycle amplitude. The
  reproduction therefore demonstrates the paper's implicit negative result:
  the FMCW tag does not spoof distance against a pulsed radar.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import constants
from repro.errors import ConfigurationError, TrackingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.config import RadarConfig
from repro.radar.batch import pack_components
from repro.radar.frontend import PathComponent
from repro.radar.processing import RangeAngleProfile
from repro.radar.scene import Scene
from repro.radar.stages import (
    ExecutionContext,
    Stage,
    StageBinding,
    TrackedResultMixin,
    backend_overrides,
    execute,
)

__all__ = ["PulsedRadar", "PulsedRadarConfig", "PulsedSensingResult"]


@dataclasses.dataclass(frozen=True)
class PulsedRadarConfig:
    """Configuration of the pulsed radar.

    Attributes:
        center_frequency: carrier, Hz (sets the array wavelength).
        bandwidth: pulse bandwidth, Hz — range resolution is ``C / 2B``.
        sample_rate: fast-time ADC rate, Hz (>= 2x bandwidth).
        max_range: largest observed range, meters (sets the window length).
        num_antennas / antenna_spacing / position / axis_angle /
        facing_angle / frame_rate / noise_std / angle_grid_points /
        min_range: as in :class:`~repro.radar.config.RadarConfig`.
    """

    center_frequency: float = 6.5e9
    bandwidth: float = 1.0e9
    sample_rate: float = 4.0e9
    max_range: float = 20.0
    num_antennas: int = constants.RADAR_NUM_ANTENNAS
    antenna_spacing: float | None = None
    position: tuple[float, float] = (0.0, 0.0)
    axis_angle: float = 0.0
    facing_angle: float = np.pi / 2.0
    frame_rate: float = 10.0
    noise_std: float = 5e-4
    angle_grid_points: int = 181
    min_range: float = 0.6

    def __post_init__(self) -> None:
        if self.center_frequency <= 0 or self.bandwidth <= 0:
            raise ConfigurationError("frequencies must be positive")
        if self.sample_rate < 2.0 * self.bandwidth:
            raise ConfigurationError(
                "sample_rate must be at least twice the pulse bandwidth"
            )
        if self.max_range <= self.min_range or self.min_range < 0:
            raise ConfigurationError("need 0 <= min_range < max_range")
        if self.num_antennas < 2:
            raise ConfigurationError("angle estimation needs >= 2 antennas")
        if self.frame_rate <= 0 or self.noise_std < 0:
            raise ConfigurationError("bad frame_rate or noise_std")

    @property
    def wavelength(self) -> float:
        return constants.SPEED_OF_LIGHT / self.center_frequency

    @property
    def spacing(self) -> float:
        if self.antenna_spacing is not None:
            return self.antenna_spacing
        return self.wavelength / 2.0

    @property
    def range_resolution(self) -> float:
        return constants.SPEED_OF_LIGHT / (2.0 * self.bandwidth)

    @property
    def frame_interval(self) -> float:
        return 1.0 / self.frame_rate

    @property
    def num_samples(self) -> int:
        """Fast-time samples covering the round trip to ``max_range``."""
        window = 2.0 * self.max_range / constants.SPEED_OF_LIGHT
        return int(np.ceil(window * self.sample_rate)) + 1

    def pulse_sigma(self) -> float:
        """Gaussian pulse width (seconds) matching the bandwidth."""
        return 1.0 / (2.0 * np.pi * self.bandwidth / 2.355)  # FWHM ~ B

    def angle_grid(self) -> np.ndarray:
        return np.linspace(0.0, np.pi, self.angle_grid_points + 2)[1:-1]

    def _geometry_config(self) -> RadarConfig:
        """A RadarConfig carrying just the fields the array geometry needs."""
        return RadarConfig(
            num_antennas=self.num_antennas,
            antenna_spacing=self.spacing,
            position=self.position,
            axis_angle=self.axis_angle,
            facing_angle=self.facing_angle,
            frame_rate=self.frame_rate,
            noise_std=self.noise_std,
            angle_grid_points=self.angle_grid_points,
            min_range=self.min_range,
        )


@dataclasses.dataclass
class PulsedSensingResult(TrackedResultMixin):
    """Frames captured by a pulsed radar (same downstream API as FMCW).

    Tracking, trajectory extraction, and phase analysis come from
    :class:`~repro.radar.stages.TrackedResultMixin`, shared with
    :class:`~repro.radar.radar.SensingResult`.
    """

    times: np.ndarray
    profiles: list[RangeAngleProfile]
    config: PulsedRadarConfig
    array: UniformLinearArray
    raw_profiles: np.ndarray | None = None

    def range_bins(self) -> np.ndarray:
        """Distance of each raw-profile fast-time bin, meters."""
        delays = np.arange(self.config.num_samples) / self.config.sample_rate
        return constants.SPEED_OF_LIGHT * delays / 2.0


class PulsedRadar:
    """A pulsed radar sharing the scene/entity/tracking machinery."""

    def __init__(self, config: PulsedRadarConfig | None = None) -> None:
        self.config = config if config is not None else PulsedRadarConfig()
        self.array = UniformLinearArray(self.config._geometry_config())

    def _range_axis(self) -> np.ndarray:
        delays = np.arange(self.config.num_samples) / self.config.sample_rate
        return constants.SPEED_OF_LIGHT * delays / 2.0

    def _echo_profile(self, components: list[PathComponent],
                      rng: np.random.Generator | None) -> np.ndarray:
        """Matched-filtered echoes per antenna, ``(K, num_samples)``.

        Each component contributes a Gaussian pulse (the matched-filter
        output of the real pulse) at its round-trip delay, carrying the
        carrier phase ``2 pi f_c tau`` and the per-antenna array phase.
        """
        config = self.config
        delays = np.arange(config.num_samples) / config.sample_rate
        sigma = config.pulse_sigma()
        if components:
            packed = pack_components(components)
            # kHz on/off switching cannot shift a ~ns pulse in delay; it
            # only gates pulses, scaling the echo by the duty cycle. The
            # echo stays at the PHYSICAL distance — the FMCW distance
            # trick is inert against pulsed radars.
            amplitudes = np.where(packed.beat_offsets_hz != 0.0,
                                  packed.amplitudes * 0.5, packed.amplitudes)
            tau = (2.0 * packed.distances / constants.SPEED_OF_LIGHT
                   + packed.extra_delays_s)
            envelopes = np.exp(
                -0.5 * ((delays[None, :] - tau[:, None]) / sigma) ** 2
            )
            phases = (2.0 * np.pi * config.center_frequency * tau
                      + packed.phase_offsets)
            echoes = (amplitudes * np.exp(1j * phases))[:, None] * envelopes
            steering = np.exp(1j * self.array.arrival_phase_matrix(packed.angles))
            profile = np.einsum("kc,cn->kn", steering, echoes)
        else:
            profile = np.zeros((config.num_antennas, config.num_samples),
                               dtype=complex)
        if rng is not None and config.noise_std > 0:
            scale = config.noise_std / np.sqrt(2.0)
            profile = profile + (rng.normal(0.0, scale, profile.shape)
                                 + 1j * rng.normal(0.0, scale, profile.shape))
        return profile

    def _emit_stage(self, ctx: ExecutionContext) -> None:
        """Emit kernel: scene components + noise draws, frame by frame.

        The scene query and the noise draw hit the generator in the same
        time order as the historical per-frame loop, so a fixed seed
        reproduces bit-for-bit.
        """
        config = self.config
        rng = ctx.rng
        add_noise = rng is not None and config.noise_std > 0
        scale = config.noise_std / np.sqrt(2.0)
        shape = (config.num_antennas, config.num_samples)
        emitter = ctx.scene.sweep_emitter(self.array)
        components_per_frame: list[list[PathComponent]] = []
        noise: list[np.ndarray] = []
        for t in ctx.times:
            components_per_frame.append(emitter.components_at(float(t), rng))
            if add_noise and rng is not None:
                noise.append(rng.normal(0.0, scale, shape)
                             + 1j * rng.normal(0.0, scale, shape))
        ctx.workspace["components"] = components_per_frame
        ctx.workspace["noise"] = np.stack(noise) if add_noise else None

    def _synthesize_stage(self, ctx: ExecutionContext) -> None:
        """Synthesize kernel: deterministic echoes, then the noise stack."""
        frames = np.stack([
            self._echo_profile(frame_components, None)
            for frame_components in ctx.workspace["components"]
        ])
        noise = ctx.workspace.get("noise")
        if noise is not None:
            frames = frames + noise
        ctx.workspace["frames"] = frames

    def _matched_filter_stage(self, ctx: ExecutionContext) -> None:
        """Range-transform kernel: pulsed echoes are already range profiles.

        Matched filtering happened inside the echo model (the Gaussian
        envelope IS the filter output), so this stage only publishes the
        profile cube and its fast-time range axis — the pulsed analogue of
        the FMCW range FFT.
        """
        ctx.workspace["raw_profiles"] = ctx.workspace["frames"]
        ctx.workspace["ranges_full"] = self._range_axis()

    def sense(self, scene: Scene, duration: float, *,
              rng: np.random.Generator | None = None,
              start_time: float = 0.0,
              pipeline: str | None = None) -> PulsedSensingResult:
        """Capture ``duration`` seconds of pulsed frames from ``scene``.

        The emission/echo kernels are pulsed-specific, but background
        subtraction and Eq. 2 beamforming resolve from the same stage
        registry as the FMCW radar — ``pipeline`` overrides the
        ``RF_PROTECT_PIPELINE`` dispatch for this call.
        """
        if duration <= 0:
            raise TrackingError(f"duration must be positive, got {duration}")
        if rng is None:
            rng = np.random.default_rng(0)
        config = self.config
        num_frames = max(int(round(duration * config.frame_rate)), 2)
        times = start_time + np.arange(num_frames) * config.frame_interval

        ctx = ExecutionContext(
            array=self.array, times=times, config=config, scene=scene,
            rng=rng, max_range=config.max_range, min_range=config.min_range,
            overrides=backend_overrides(pipeline=pipeline),
        )
        execute((
            StageBinding(Stage.EMIT, backend="pulsed",
                         kernel=self._emit_stage),
            StageBinding(Stage.SYNTHESIZE, backend="pulsed",
                         kernel=self._synthesize_stage),
            StageBinding(Stage.RANGE_FFT, backend="pulsed",
                         kernel=self._matched_filter_stage),
            StageBinding(Stage.BACKGROUND_SUBTRACT),
            StageBinding(Stage.BEAMFORM),
        ), ctx)
        return PulsedSensingResult(times=times,
                                   profiles=ctx.workspace["profiles"],
                                   config=config, array=self.array,
                                   raw_profiles=ctx.workspace["raw_profiles"])
