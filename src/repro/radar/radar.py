"""`FmcwRadar`: the end-to-end sensing facade.

Ties together frontend synthesis, the processing pipeline, and the tracker:
point it at a :class:`~repro.radar.scene.Scene`, get back range-angle
profiles, extracted trajectories, and per-bin phase series (for breathing).
This is both the eavesdropper and the legitimate sensor of the paper — the
difference between them is purely whether they receive the tag's
side-channel report (Sec. 11.3).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TrackingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.config import RadarConfig
from repro.radar.frontend import PathComponent
from repro.radar.processing import ZERO_PAD_FACTOR, RangeAngleProfile
from repro.radar.scene import Scene
from repro.radar.stages import (
    RECEIVE_PLAN,
    SENSE_PLAN,
    ExecutionContext,
    StageBinding,
    TrackedResultMixin,
    backend_overrides,
    emit_sweep,
    execute,
)
from repro.signal.spectral import range_axis

__all__ = ["FmcwRadar", "SensingResult"]


@dataclasses.dataclass
class SensingResult(TrackedResultMixin):
    """Everything a radar captured over one sensing session.

    Tracking, trajectory extraction, and phase analysis come from
    :class:`~repro.radar.stages.TrackedResultMixin`, shared with the
    pulsed radar's result type.

    Attributes:
        times: frame capture times, seconds.
        profiles: background-subtracted range-angle maps, one per frame.
        raw_profiles: complex per-antenna range profiles *before*
            subtraction, shape ``(num_frames, K, num_bins)`` — needed for
            phase/breathing analysis where static targets matter.
        config: radar configuration used.
        array: array geometry used.
    """

    times: np.ndarray
    profiles: list[RangeAngleProfile]
    raw_profiles: np.ndarray
    config: RadarConfig
    array: UniformLinearArray

    @property
    def frame_dt(self) -> float:
        return self.config.frame_interval

    def range_bins(self) -> np.ndarray:
        """Distance of each raw-profile range bin, meters.

        Uses the pipeline-wide ``ZERO_PAD_FACTOR`` so the reported axis can
        never drift from the FFT grid that produced ``raw_profiles``.
        """
        return range_axis(self.config.chirp, zero_pad_factor=ZERO_PAD_FACTOR)


class FmcwRadar:
    """A simulated FMCW radar deployed at a fixed position and orientation."""

    def __init__(self, config: RadarConfig | None = None) -> None:
        self.config = config if config is not None else RadarConfig()
        self.array = UniformLinearArray(self.config)

    def frame_times(self, duration: float,
                    start_time: float = 0.0) -> np.ndarray:
        """Frame capture times for a ``duration``-second sensing session.

        At least two frames are always captured (background subtraction
        needs a warmup frame). This is the single source of truth for the
        frame grid: the direct :meth:`sense` path and the batched serving
        engine (:mod:`repro.serve.engine`) both derive times here, so a
        served request can never land on a different grid than a direct
        call.
        """
        if duration <= 0:
            raise TrackingError(f"duration must be positive, got {duration}")
        num_frames = max(int(round(duration * self.config.frame_rate)), 2)
        return start_time + np.arange(num_frames) * self.config.frame_interval

    def default_max_range(self, scene: Scene) -> float:
        """The far crop applied when a caller does not pass ``max_range``.

        An eavesdropper targeting a known building crops the range axis at
        the far walls; anything beyond is another apartment.
        """
        corners = np.array([
            [scene.room.x_min, scene.room.y_min],
            [scene.room.x_min, scene.room.y_max],
            [scene.room.x_max, scene.room.y_min],
            [scene.room.x_max, scene.room.y_max],
        ])
        return float(
            np.linalg.norm(corners - self.array.position, axis=1).max()
        ) + 0.5

    def sweep_components(self, scene: Scene, times: np.ndarray,
                         rng: np.random.Generator,
                         ) -> tuple[list[list[PathComponent]],
                                    np.ndarray | None]:
        """Per-frame scene components and thermal noise for a whole sweep.

        The scene is queried and noise is drawn frame-by-frame in time
        order — exactly the generator call sequence of the historical
        per-frame loop — so a fixed seed reproduces bit-for-bit whether the
        frames are then synthesized one by one, as one batched sweep, or
        fused into a larger multi-request batch by the serving engine.

        Thin delegation to :func:`repro.radar.stages.emit_sweep`, the Emit
        stage's kernel (the serving engine calls this per request before
        fusing the sweeps into one batch).

        Returns the per-frame component lists and, when the config has a
        positive noise floor, the matching ``(F, K, N)`` noise stack
        (``None`` otherwise).
        """
        return emit_sweep(scene, times, self.config, self.array, rng)

    def sense(self, scene: Scene, duration: float, *,
              rng: np.random.Generator | None = None,
              start_time: float = 0.0,
              max_range: float | None = None,
              synth: str | None = None,
              pipeline: str | None = None) -> SensingResult:
        """Capture ``duration`` seconds of frames from ``scene``.

        Args:
            scene: the room and its entities (humans, clutter, tags).
            duration: sensing span in seconds.
            rng: randomness source for noise/multipath; a fixed default seed
                is used when omitted so runs are reproducible.
            start_time: scene time of the first frame.
            max_range: optional crop of the range axis (defaults to the
                room's diagonal — reflections can't be farther than that).
            synth: override of the ``RF_PROTECT_SYNTH`` dispatch for this
                call (``"naive"``/``"vectorized"``); ``None`` follows the
                environment. The serving engine's degradation path forces
                ``"naive"`` here per call instead of mutating process env.
            pipeline: same override for ``RF_PROTECT_PIPELINE``.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        if max_range is None:
            max_range = self.default_max_range(scene)

        times = self.frame_times(duration, start_time)
        ctx = ExecutionContext(
            array=self.array, times=times, config=self.config, scene=scene,
            rng=rng, max_range=max_range, min_range=self.config.min_range,
            overrides=backend_overrides(synth=synth, pipeline=pipeline),
        )
        execute(SENSE_PLAN, ctx)
        return SensingResult(
            times=times,
            profiles=ctx.workspace["profiles"],
            raw_profiles=ctx.workspace["raw_profiles"],
            config=self.config,
            array=self.array,
        )

    def _process_sweep_naive(self, times: np.ndarray, frames: np.ndarray,
                             max_range: float,
                             ) -> tuple[list[RangeAngleProfile], np.ndarray]:
        """Reference receive pipeline (``RF_PROTECT_PIPELINE=naive``).

        The receive sub-plan pinned to the naive kernels — kept as the
        reference the batched engine is tested against.
        """
        ctx = ExecutionContext(
            array=self.array, times=np.asarray(times, dtype=float),
            config=self.config, max_range=max_range,
            min_range=self.config.min_range,
        )
        ctx.workspace["frames"] = np.asarray(frames)
        execute(tuple(StageBinding(b.stage, backend="naive")
                      for b in RECEIVE_PLAN), ctx)
        return ctx.workspace["profiles"], ctx.workspace["raw_profiles"]
