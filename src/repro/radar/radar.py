"""`FmcwRadar`: the end-to-end sensing facade.

Ties together frontend synthesis, the processing pipeline, and the tracker:
point it at a :class:`~repro.radar.scene.Scene`, get back range-angle
profiles, extracted trajectories, and per-bin phase series (for breathing).
This is both the eavesdropper and the legitimate sensor of the paper — the
difference between them is purely whether they receive the tag's
side-channel report (Sec. 11.3).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import TrackingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.config import RadarConfig
from repro.radar.batch import synthesize_frames
from repro.radar.frontend import (
    PathComponent,
    synthesis_backend,
    synthesize_frame,
    synthesize_frame_naive,
    thermal_noise,
)
from repro.radar.pipeline import pipeline_backend, process_sweep
from repro.radar.processing import (
    ZERO_PAD_FACTOR,
    RangeAngleProfile,
    background_subtract,
    compute_range_angle_map,
    frame_range_profiles,
)
from repro.radar.scene import Scene
from repro.radar.tracker import Track, TrackerConfig, extract_tracks
from repro.signal.phase import extract_phase
from repro.signal.spectral import range_axis
from repro.types import Trajectory

__all__ = ["FmcwRadar", "SensingResult"]


@dataclasses.dataclass
class SensingResult:
    """Everything a radar captured over one sensing session.

    Attributes:
        times: frame capture times, seconds.
        profiles: background-subtracted range-angle maps, one per frame.
        raw_profiles: complex per-antenna range profiles *before*
            subtraction, shape ``(num_frames, K, num_bins)`` — needed for
            phase/breathing analysis where static targets matter.
        config: radar configuration used.
        array: array geometry used.
    """

    times: np.ndarray
    profiles: list[RangeAngleProfile]
    raw_profiles: np.ndarray
    config: RadarConfig
    array: UniformLinearArray

    @property
    def frame_dt(self) -> float:
        return self.config.frame_interval

    def range_bins(self) -> np.ndarray:
        """Distance of each raw-profile range bin, meters.

        Uses the pipeline-wide ``ZERO_PAD_FACTOR`` so the reported axis can
        never drift from the FFT grid that produced ``raw_profiles``.
        """
        return range_axis(self.config.chirp, zero_pad_factor=ZERO_PAD_FACTOR)

    def tracks(self, tracker_config: TrackerConfig | None = None) -> list[Track]:
        """Run trajectory extraction on the captured profiles."""
        return extract_tracks(self.profiles, self.array, tracker_config)

    def trajectories(self, tracker_config: TrackerConfig | None = None,
                     *, smooth: bool = True) -> list[Trajectory]:
        """Extracted trajectories, longest first."""
        return [t.to_trajectory(smooth=smooth)
                for t in self.tracks(tracker_config)]

    def best_trajectory(self,
                        tracker_config: TrackerConfig | None = None) -> Trajectory:
        """The longest extracted trajectory; raises if nothing was tracked."""
        trajectories = self.trajectories(tracker_config)
        if not trajectories:
            raise TrackingError("no target was tracked in this session")
        return trajectories[0]

    def phase_series(self, distance: float, *, antenna: int = 0) -> np.ndarray:
        """Beat-tone phase across frames at the bin nearest ``distance``.

        This is the observable that carries breathing (Sec. 11.4).
        """
        bins = self.range_bins()
        bin_index = int(np.argmin(np.abs(bins - distance)))
        return extract_phase(self.raw_profiles[:, antenna, :], bin_index)


class FmcwRadar:
    """A simulated FMCW radar deployed at a fixed position and orientation."""

    def __init__(self, config: RadarConfig | None = None) -> None:
        self.config = config if config is not None else RadarConfig()
        self.array = UniformLinearArray(self.config)

    def frame_times(self, duration: float,
                    start_time: float = 0.0) -> np.ndarray:
        """Frame capture times for a ``duration``-second sensing session.

        At least two frames are always captured (background subtraction
        needs a warmup frame). This is the single source of truth for the
        frame grid: the direct :meth:`sense` path and the batched serving
        engine (:mod:`repro.serve.engine`) both derive times here, so a
        served request can never land on a different grid than a direct
        call.
        """
        if duration <= 0:
            raise TrackingError(f"duration must be positive, got {duration}")
        num_frames = max(int(round(duration * self.config.frame_rate)), 2)
        return start_time + np.arange(num_frames) * self.config.frame_interval

    def default_max_range(self, scene: Scene) -> float:
        """The far crop applied when a caller does not pass ``max_range``.

        An eavesdropper targeting a known building crops the range axis at
        the far walls; anything beyond is another apartment.
        """
        corners = np.array([
            [scene.room.x_min, scene.room.y_min],
            [scene.room.x_min, scene.room.y_max],
            [scene.room.x_max, scene.room.y_min],
            [scene.room.x_max, scene.room.y_max],
        ])
        return float(
            np.linalg.norm(corners - self.array.position, axis=1).max()
        ) + 0.5

    def sweep_components(self, scene: Scene, times: np.ndarray,
                         rng: np.random.Generator,
                         ) -> tuple[list[list[PathComponent]],
                                    np.ndarray | None]:
        """Per-frame scene components and thermal noise for a whole sweep.

        The scene is queried and noise is drawn frame-by-frame in time
        order — exactly the generator call sequence of the historical
        per-frame loop — so a fixed seed reproduces bit-for-bit whether the
        frames are then synthesized one by one, as one batched sweep, or
        fused into a larger multi-request batch by the serving engine.

        Returns the per-frame component lists and, when the config has a
        positive noise floor, the matching ``(F, K, N)`` noise stack
        (``None`` otherwise).
        """
        shape = (self.config.num_antennas, self.config.chirp.num_samples)
        add_noise = self.config.noise_std > 0
        emitter = scene.sweep_emitter(self.array)
        components_per_frame: list[list[PathComponent]] = []
        noise: list[np.ndarray] = []
        for t in times:
            components_per_frame.append(emitter.components_at(float(t), rng))
            if add_noise:
                noise.append(thermal_noise(self.config, rng, shape))
        return components_per_frame, (np.stack(noise) if add_noise else None)

    def _synthesize_sweep(self, scene: Scene, times: np.ndarray,
                          rng: np.random.Generator,
                          backend: str | None = None) -> np.ndarray:
        """Raw beat frames for all of ``times``, shape ``(F, K, N)``.

        ``backend`` overrides the ``RF_PROTECT_SYNTH`` dispatch (the serving
        engine's naive-fallback path forces ``"naive"`` without touching
        process environment).
        """
        if backend == "naive" or (backend is None
                                  and synthesis_backend() == "naive"):
            # Per-frame reference kernel. Forced "naive" pins the kernel
            # directly (the env dispatch inside `synthesize_frame` must not
            # be able to route a fallback back onto the failed engine).
            kernel = (synthesize_frame_naive if backend == "naive"
                      else synthesize_frame)
            return np.stack([
                kernel(scene.path_components(float(t), self.array, rng),
                       self.config, self.array, rng)
                for t in times
            ])
        components_per_frame, noise = self.sweep_components(scene, times, rng)
        frames = synthesize_frames(components_per_frame, self.config,
                                   self.array, rng=None)
        if noise is not None:
            frames += noise
        return frames

    def sense(self, scene: Scene, duration: float, *,
              rng: np.random.Generator | None = None,
              start_time: float = 0.0,
              max_range: float | None = None,
              synth: str | None = None,
              pipeline: str | None = None) -> SensingResult:
        """Capture ``duration`` seconds of frames from ``scene``.

        Args:
            scene: the room and its entities (humans, clutter, tags).
            duration: sensing span in seconds.
            rng: randomness source for noise/multipath; a fixed default seed
                is used when omitted so runs are reproducible.
            start_time: scene time of the first frame.
            max_range: optional crop of the range axis (defaults to the
                room's diagonal — reflections can't be farther than that).
            synth: override of the ``RF_PROTECT_SYNTH`` dispatch for this
                call (``"naive"``/``"vectorized"``); ``None`` follows the
                environment. The serving engine's degradation path forces
                ``"naive"`` here per call instead of mutating process env.
            pipeline: same override for ``RF_PROTECT_PIPELINE``.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        if max_range is None:
            max_range = self.default_max_range(scene)

        times = self.frame_times(duration, start_time)
        frames = self._synthesize_sweep(scene, times, rng, backend=synth)

        if pipeline is None:
            pipeline = pipeline_backend()
        if pipeline == "naive":
            profiles, raw_profiles = self._process_sweep_naive(
                times, frames, max_range
            )
        else:
            sweep = process_sweep(frames, self.config, self.array, times,
                                  max_range=max_range)
            profiles = sweep.profiles()
            raw_profiles = sweep.raw_profiles
        return SensingResult(
            times=times,
            profiles=profiles,
            raw_profiles=raw_profiles,
            config=self.config,
            array=self.array,
        )

    def _process_sweep_naive(self, times: np.ndarray, frames: np.ndarray,
                             max_range: float,
                             ) -> tuple[list[RangeAngleProfile], np.ndarray]:
        """Reference per-frame receive pipeline (``RF_PROTECT_PIPELINE=naive``).

        Recomputes the range axis, window tapers, and steering matrix every
        frame — kept as the kernel the batched engine is pinned against.
        """
        profiles: list[RangeAngleProfile] = []
        raw_profiles: list[np.ndarray] = []
        previous = None
        for t, frame in zip(times, frames):
            current = frame_range_profiles(frame, self.config)
            raw_profiles.append(current)
            subtracted = background_subtract(current, previous)
            previous = current
            profiles.append(
                compute_range_angle_map(subtracted, self.config, self.array,
                                        float(t), max_range=max_range)
            )
        return profiles, np.stack(raw_profiles)
