"""Scene graph: the room, its humans, static clutter, and deployed tags.

Every entity implements :class:`SceneEntity` — given a frame time it yields
the :class:`~repro.radar.frontend.PathComponent` tones it contributes to the
dechirped signal. The RF-Protect tag (`repro.reflector.tag`) implements the
same protocol, so the radar cannot tell humans and phantoms apart by
construction, which is the point of the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.errors import SceneError
from repro.geometry import Rectangle
from repro.radar.antenna import UniformLinearArray
from repro.radar.channel import ChannelModel
from repro.radar.frontend import PathComponent
from repro.types import Trajectory

__all__ = ["BreathingSpec", "Fan", "HumanTarget", "OcclusionSpec", "Scene",
           "SceneEntity", "StaticReflector", "SweepEmitter"]

_MIN_ANGLE = 1e-3


@dataclasses.dataclass(frozen=True)
class OcclusionSpec:
    """Inter-person occlusion model for crowd scenes.

    When one human body stands between the radar and another, the blocked
    subject's echo is attenuated (shadowing, Sec. 2's crowded-room
    regime). The model is deliberately deterministic — a pure function of
    entity positions at the frame time, drawing nothing from the RNG — so
    enabling it never perturbs the generator stream of the unoccluded
    entities, and scenes without it stay bit-identical to history.

    Attributes:
        body_radius: blocking half-width of a standing body, meters.
        attenuation_db: one-way amplitude loss per blocking body, dB.
    """

    body_radius: float = 0.25
    attenuation_db: float = 6.0

    def __post_init__(self) -> None:
        if self.body_radius <= 0:
            raise SceneError("occlusion body_radius must be positive")
        if self.attenuation_db < 0:
            raise SceneError("occlusion attenuation_db must be >= 0")

    @property
    def attenuation_linear(self) -> float:
        """Linear amplitude factor applied per blocking body."""
        return float(10.0 ** (-self.attenuation_db / 20.0))


@runtime_checkable
class SceneEntity(Protocol):
    """Anything that reflects radar energy at a given frame time."""

    def path_components(self, t: float, array: UniformLinearArray,
                        channel: ChannelModel,
                        rng: np.random.Generator) -> list[PathComponent]:
        """Paths this entity contributes to the frame captured at time ``t``.

        An entity whose components depend neither on ``t`` nor on ``rng``
        may additionally declare a class attribute ``time_invariant = True``;
        sweep emission then evaluates it once per sweep instead of once per
        frame (see :class:`SweepEmitter`).
        """
        ...


@dataclasses.dataclass(frozen=True)
class BreathingSpec:
    """Chest-motion parameters of a (real) breathing human.

    Attributes:
        amplitude: peak chest displacement in meters (~5 mm typical).
        frequency: breaths per second (~0.25 Hz = 15 breaths/min).
        phase: initial breathing phase in radians.
    """

    amplitude: float = 0.005
    frequency: float = 0.25
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise SceneError("breathing amplitude must be >= 0")
        if self.frequency <= 0:
            raise SceneError("breathing frequency must be positive")

    def displacement(self, t: float) -> float:
        """Radial chest displacement at time ``t``, meters."""
        return self.amplitude * np.sin(2.0 * np.pi * self.frequency * t + self.phase)


class HumanTarget:
    """A walking (or stationary) human reflector.

    The body is modelled as a dominant scatter point following ``trajectory``
    with an RCS that fluctuates frame to frame (posture, limbs), breathing
    chest motion added radially, and environment-dependent dynamic multipath
    drawn from the channel.
    """

    def __init__(self, trajectory: Trajectory, *, rcs: float = 1.0,
                 rcs_fluctuation: float = 0.2,
                 breathing: BreathingSpec | None = None) -> None:
        if rcs <= 0:
            raise SceneError(f"human rcs must be positive, got {rcs}")
        if not 0 <= rcs_fluctuation < 1:
            raise SceneError("rcs_fluctuation must be in [0, 1)")
        self.trajectory = trajectory
        self.rcs = rcs
        self.rcs_fluctuation = rcs_fluctuation
        self.breathing = breathing if breathing is not None else BreathingSpec()

    def position_at(self, t: float) -> np.ndarray:
        """Body position at time ``t`` (trajectory clamped at its ends)."""
        return self.trajectory.position_at(t)

    def path_components(self, t: float, array: UniformLinearArray,
                        channel: ChannelModel,
                        rng: np.random.Generator) -> list[PathComponent]:
        position = self.position_at(t)
        distance, angle = array.polar_of(position)
        angle = float(np.clip(angle, _MIN_ANGLE, np.pi - _MIN_ANGLE))
        distance += self.breathing.displacement(t)
        rcs = self.rcs * (1.0 + self.rcs_fluctuation * rng.standard_normal())
        rcs = max(rcs, 0.05 * self.rcs)
        amplitude = float(channel.path_amplitude(distance, rcs))
        components = [PathComponent(distance, angle, amplitude)]
        for bounce_distance, bounce_angle, bounce_amp in channel.sample_multipath(
                distance, angle, amplitude, rng):
            components.append(
                PathComponent(bounce_distance, bounce_angle, bounce_amp,
                              phase_offset=float(rng.uniform(0.0, 2.0 * np.pi)))
            )
        return components


class StaticReflector:
    """Furniture, walls, appliances: constant reflections.

    These produce identical tones in every frame, so background subtraction
    (Sec. 3, "Addressing Static Reflectors") removes them exactly; they are
    included to make that stage do real work.
    """

    # Components ignore both ``t`` and ``rng``: sweep emission may evaluate
    # this entity once and reuse the result for every frame.
    time_invariant = True

    def __init__(self, position: tuple[float, float] | np.ndarray, *,
                 rcs: float = 1.0) -> None:
        if rcs <= 0:
            raise SceneError(f"static rcs must be positive, got {rcs}")
        self.position = np.asarray(position, dtype=float)
        if self.position.shape != (2,):
            raise SceneError("static reflector position must be (x, y)")
        self.rcs = rcs

    def path_components(self, t: float, array: UniformLinearArray,
                        channel: ChannelModel,
                        rng: np.random.Generator) -> list[PathComponent]:
        distance, angle = array.polar_of(self.position)
        angle = float(np.clip(angle, _MIN_ANGLE, np.pi - _MIN_ANGLE))
        amplitude = float(channel.path_amplitude(distance, self.rcs))
        return [PathComponent(distance, angle, amplitude)]


class Fan:
    """A ceiling/desk fan: a small reflector in fast periodic motion.

    The threat model's canonical non-human mover (Sec. 2): blades sweep a
    small circle at a fixed rotation rate, producing a perfectly periodic
    track the eavesdropper's periodicity filter
    (:func:`repro.eavesdropper.filter_periodic_tracks`) must reject while
    keeping humans and GAN ghosts.
    """

    def __init__(self, position: tuple[float, float] | np.ndarray, *,
                 blade_radius: float = 0.35, rotation_hz: float = 1.2,
                 rcs: float = 0.4) -> None:
        if blade_radius <= 0:
            raise SceneError("blade_radius must be positive")
        if rotation_hz <= 0:
            raise SceneError("rotation_hz must be positive")
        if rcs <= 0:
            raise SceneError("rcs must be positive")
        self.position = np.asarray(position, dtype=float)
        if self.position.shape != (2,):
            raise SceneError("fan position must be (x, y)")
        self.blade_radius = blade_radius
        self.rotation_hz = rotation_hz
        self.rcs = rcs

    def blade_position(self, t: float) -> np.ndarray:
        """Dominant blade-reflection point at time ``t``."""
        phase = 2.0 * np.pi * self.rotation_hz * t
        return self.position + self.blade_radius * np.array(
            [np.cos(phase), np.sin(phase)]
        )

    def path_components(self, t: float, array: UniformLinearArray,
                        channel: ChannelModel,
                        rng: np.random.Generator) -> list[PathComponent]:
        blade = self.blade_position(t)
        distance, angle = array.polar_of(blade)
        angle = float(np.clip(angle, _MIN_ANGLE, np.pi - _MIN_ANGLE))
        amplitude = float(channel.path_amplitude(distance, self.rcs))
        return [PathComponent(distance, angle, amplitude)]


class Scene:
    """A room with its reflecting entities."""

    def __init__(self, room: Rectangle,
                 channel: ChannelModel | None = None,
                 occlusion: OcclusionSpec | None = None) -> None:
        self.room = room
        self.channel = channel if channel is not None else ChannelModel()
        self.occlusion = occlusion
        self.entities: list[SceneEntity] = []

    def add(self, entity: SceneEntity) -> None:
        """Register any entity implementing the :class:`SceneEntity` protocol."""
        if not isinstance(entity, SceneEntity):
            raise SceneError(
                f"{type(entity).__name__} does not implement path_components()"
            )
        self.entities.append(entity)

    def add_human(self, trajectory: Trajectory, **kwargs: Any) -> HumanTarget:
        """Add a human; rejects trajectories that leave the room."""
        if not self.room.contains_all(trajectory.points):
            raise SceneError("human trajectory leaves the room footprint")
        human = HumanTarget(trajectory, **kwargs)
        self.entities.append(human)
        return human

    def add_static(self, position: tuple[float, float], *,
                   rcs: float = 1.0) -> StaticReflector:
        """Add a piece of static clutter; rejects positions outside the room."""
        if not self.room.contains(position):
            raise SceneError(f"static reflector at {position} is outside the room")
        static = StaticReflector(position, rcs=rcs)
        self.entities.append(static)
        return static

    def humans(self) -> list[HumanTarget]:
        """All human entities currently in the scene."""
        return [e for e in self.entities if isinstance(e, HumanTarget)]

    def path_components(self, t: float, array: UniformLinearArray,
                        rng: np.random.Generator) -> list[PathComponent]:
        """All paths visible at frame time ``t``."""
        components: list[PathComponent] = []
        for entity in self.entities:
            components.extend(self.entity_components(entity, t, array, rng))
        return components

    def entity_components(self, entity: SceneEntity, t: float,
                          array: UniformLinearArray,
                          rng: np.random.Generator) -> list[PathComponent]:
        """One entity's paths at ``t``, with inter-person occlusion applied.

        The single emission point both the per-frame and sweep paths go
        through: the entity is queried exactly as before (identical RNG
        stream), then — only when the scene has an :class:`OcclusionSpec`
        and the entity is a human shadowed by another — its components are
        scaled by the deterministic occlusion factor.
        """
        components = entity.path_components(t, array, self.channel, rng)
        if self.occlusion is None or not isinstance(entity, HumanTarget):
            return components
        factor = self._occlusion_factor(entity, t, array)
        if factor >= 1.0:
            return components
        return [dataclasses.replace(c, amplitude=c.amplitude * factor)
                for c in components]

    def _occlusion_factor(self, entity: HumanTarget, t: float,
                          array: UniformLinearArray) -> float:
        """Amplitude factor for ``entity`` given who stands in its way.

        A body blocks when its circle (``body_radius``) intersects the
        radar→subject segment strictly between the endpoints; each blocker
        multiplies in one ``attenuation_linear``. Pure geometry, no RNG.
        """
        assert self.occlusion is not None
        subject = entity.position_at(t)
        origin = array.position
        segment = subject - origin
        length = float(np.linalg.norm(segment))
        if length <= 0.0:
            return 1.0
        direction = segment / length
        blockers = 0
        for other in self.entities:
            if other is entity or not isinstance(other, HumanTarget):
                continue
            offset = other.position_at(t) - origin
            along = float(offset @ direction)
            if not 0.0 < along < length:
                continue
            lateral = float(np.linalg.norm(offset - along * direction))
            if lateral < self.occlusion.body_radius:
                blockers += 1
        return self.occlusion.attenuation_linear ** blockers

    def sweep_emitter(self, array: UniformLinearArray) -> SweepEmitter:
        """A per-sweep emission cursor over this scene (memoized statics)."""
        return SweepEmitter(self, array)

    def path_components_sweep(self, times: np.ndarray,
                              array: UniformLinearArray,
                              rng: np.random.Generator,
                              ) -> list[list[PathComponent]]:
        """Per-frame component lists for a whole sweep, in frame order.

        The batch-friendly emission used by the vectorized radar path:
        entities are queried frame-by-frame in time order, so the ``rng``
        stream is identical to calling :meth:`path_components` once per
        frame — seeds reproduce bit-for-bit across the naive and batched
        sensing paths.
        """
        emitter = self.sweep_emitter(array)
        return [emitter.components_at(float(t), rng) for t in times]


class SweepEmitter:
    """Per-sweep emission cursor that memoizes time-invariant entities.

    Static clutter contributes the identical tones to every frame (its
    ``path_components`` ignores both ``t`` and ``rng``), so a sweep only
    needs to evaluate it once; entities opt in by declaring
    ``time_invariant = True``. Everything else is still queried frame by
    frame in entity order, so the generator stream — and therefore every
    synthesized sample — is bit-identical to the memo-free per-frame loop.
    """

    def __init__(self, scene: Scene, array: UniformLinearArray) -> None:
        self._scene = scene
        self._array = array
        self._memo: dict[int, list[PathComponent]] = {}

    def components_at(self, t: float,
                      rng: np.random.Generator) -> list[PathComponent]:
        """All paths visible at frame time ``t``."""
        scene = self._scene
        components: list[PathComponent] = []
        for index, entity in enumerate(scene.entities):
            if getattr(entity, "time_invariant", False):
                cached = self._memo.get(index)
                if cached is None:
                    cached = scene.entity_components(entity, t, self._array,
                                                     rng)
                    self._memo[index] = cached
                components.extend(cached)
            else:
                components.extend(
                    scene.entity_components(entity, t, self._array, rng)
                )
        return components
