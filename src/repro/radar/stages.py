"""Stage-graph execution: one typed pipeline behind every sense path.

The paper's processing chain (Sec. 9.1) is a fixed sequence of stages:

    Emit -> Synthesize -> RangeFFT -> BackgroundSubtract -> Beamform -> Detect

Historically that chain was wired four separate times — ``FmcwRadar.sense``,
``PulsedRadar.sense``, the serving engine's fused batch path, and the
experiments runner — each re-deriving the stage order and re-branching on
``RF_PROTECT_SYNTH``/``RF_PROTECT_PIPELINE``. This module makes the chain
explicit and singular:

- :class:`Stage` names the stages; a *plan* is a tuple of
  :class:`StageBinding`\\ s executed in order by :func:`execute`.
- :class:`KernelRegistry` is the **only** backend dispatch point: naive and
  vectorized kernels register per stage, :mod:`repro.config` selects the
  default (``RF_PROTECT_SYNTH`` for Synthesize, ``RF_PROTECT_PIPELINE`` for
  the receive stages), and callers may override per call — never by
  mutating process environment. The rflint rule **RFP009** rejects any
  ``get_synth_backend()``/``get_pipeline_backend()`` dispatch outside this
  module.
- :class:`ExecutionContext` carries what kernels share: the RNG, the dtype
  policy, the frame-time grid, crop bounds, and a reusable workspace whose
  named slots are the inter-stage contract (see the table below).
- Every stage run is timed and observed into per-stage wall-time
  histograms (:func:`stage_metrics`, built on
  :class:`repro.serve.metrics.MetricsRegistry`); the benchmarks job dumps
  the snapshot as an artifact.

Workspace slots (the inter-stage contract)::

    components   list[list[PathComponent]]  Emit -> Synthesize
    noise        (F, K, N) complex | None   Emit -> Synthesize
    frames       (F, K, N) complex          Synthesize -> RangeFFT
    raw_profiles (F, K, B) complex          RangeFFT -> BackgroundSubtract
    ranges_full  (B,) float                 RangeFFT -> BackgroundSubtract
    ranges       (B_kept,) float            BackgroundSubtract -> Beamform
    subtracted   (F, K, B_kept) complex     BackgroundSubtract -> Beamform
    angles       (A,) float                 Beamform output
    power_cube   (F, B_kept, A) float       Beamform output (vectorized)
    profiles     list[RangeAngleProfile]    Beamform -> Detect
    tracker      StreamingTracker           Detect (streaming) carry-over state
    tracks       list[Track]                Detect output

Kernel arithmetic is taken verbatim from the pre-refactor paths, so the
equivalence suites (``tests/test_frontend_equivalence.py``,
``tests/test_pipeline_equivalence.py``, the serve bitwise-determinism
tests) pin the graph without modification.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.config import get_pipeline_backend, get_synth_backend
from repro.errors import ConfigurationError, TrackingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.batch import synthesize_frame_vectorized, synthesize_frames
from repro.radar.frontend import (
    PathComponent,
    synthesize_frame_naive,
    thermal_noise,
)
from repro.radar.pipeline import (
    batched_background_subtract,
    batched_beamform_power,
    batched_range_profiles,
)
from repro.radar.processing import (
    ZERO_PAD_FACTOR,
    RangeAngleProfile,
    background_subtract,
    frame_range_profiles,
    range_keep_mask,
)
from repro.radar.tracker import (
    StreamingTracker,
    Track,
    TrackerConfig,
    extract_tracks,
)
from repro.signal.phase import extract_phase
from repro.signal.spectral import range_axis
from repro.types import Trajectory

if TYPE_CHECKING:
    from repro.serve.metrics import MetricsRegistry

__all__ = [
    "ExecutionContext",
    "KERNELS",
    "KernelRegistry",
    "RECEIVE_PLAN",
    "SENSE_PLAN",
    "SHARED_BACKEND",
    "STAGE_TIME_BUCKETS",
    "Stage",
    "StageBinding",
    "StageKernel",
    "TrackedResultMixin",
    "backend_overrides",
    "default_backend",
    "emit_sweep",
    "execute",
    "frame_synthesizer",
    "stage_metrics",
]

#: Wall-time histogram grid for stage instrumentation, seconds. Stages run
#: from tens of microseconds (subtract on a cropped cube) to seconds (a
#: long naive synthesis sweep), so the grid is finer than the serving
#: latency buckets.
STAGE_TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default backend name for the invariant stages (Emit, Detect): emission
#: order and tracking are algorithmic contracts, not performance choices.
#: Detect additionally registers a ``"streaming"`` kernel that drives the
#: incremental tracker frame by frame — same tracks by construction.
SHARED_BACKEND = "shared"


class Stage(enum.Enum):
    """The typed stage sequence of a sense run."""

    EMIT = "emit"
    SYNTHESIZE = "synthesize"
    RANGE_FFT = "range_fft"
    BACKGROUND_SUBTRACT = "background_subtract"
    BEAMFORM = "beamform"
    DETECT = "detect"


#: Stages whose default backend follows ``RF_PROTECT_SYNTH``.
_SYNTH_STAGES = frozenset({Stage.SYNTHESIZE})
#: Stages whose default backend follows ``RF_PROTECT_PIPELINE``.
_PIPELINE_STAGES = frozenset(
    {Stage.RANGE_FFT, Stage.BACKGROUND_SUBTRACT, Stage.BEAMFORM}
)


def default_backend(stage: Stage) -> str:
    """The backend ``stage`` runs on when no override is given.

    This is the single point where the typed env registry
    (:mod:`repro.config`) meets kernel dispatch: Synthesize follows
    ``RF_PROTECT_SYNTH``, the receive stages follow ``RF_PROTECT_PIPELINE``,
    and Emit/Detect always run their one shared kernel.
    """
    if stage in _SYNTH_STAGES:
        return get_synth_backend()
    if stage in _PIPELINE_STAGES:
        return get_pipeline_backend()
    return SHARED_BACKEND


def backend_overrides(*, synth: str | None = None,
                      pipeline: str | None = None) -> dict[Stage, str]:
    """Per-call stage overrides from the historical two-knob vocabulary.

    ``synth`` pins the Synthesize stage, ``pipeline`` pins all three
    receive stages; ``None`` leaves a stage on its environment default.
    """
    overrides: dict[Stage, str] = {}
    if synth is not None:
        overrides[Stage.SYNTHESIZE] = synth
    if pipeline is not None:
        for stage in (Stage.RANGE_FFT, Stage.BACKGROUND_SUBTRACT,
                      Stage.BEAMFORM):
            overrides[stage] = pipeline
    return overrides


# --------------------------------------------------------------------------
# Execution context
# --------------------------------------------------------------------------


@dataclasses.dataclass
class ExecutionContext:
    """Shared state a plan's kernels execute against.

    Attributes:
        array: array geometry (steering/taper/lag-basis memos live here).
        times: frame capture times, seconds.
        config: radar configuration (``RadarConfig`` for FMCW,
            ``PulsedRadarConfig`` for pulsed — kernels only touch the
            fields their radar family defines, so the slot is untyped).
        scene: the scene being sensed (``None`` for frame-cube-only plans).
        rng: randomness source for emission; ``None`` disables noise draws.
        max_range: far crop of the range axis, meters (``None`` = no crop).
        min_range: near-field blanking, meters.
        overrides: per-stage backend overrides (missing stage = default).
        metrics: optional extra telemetry sink; per-stage wall times always
            also land in the process-wide :func:`stage_metrics` registry.
        complex_dtype / real_dtype: the dtype policy kernels allocate with.
        workspace: named inter-stage slots (see the module docstring).
    """

    array: UniformLinearArray
    times: np.ndarray
    config: Any = None
    scene: Any = None
    rng: np.random.Generator | None = None
    max_range: float | None = None
    min_range: float = 0.0
    overrides: dict[Stage, str] = dataclasses.field(default_factory=dict)
    metrics: "MetricsRegistry | None" = None
    complex_dtype: Any = np.complex128
    real_dtype: Any = np.float64
    workspace: dict[str, Any] = dataclasses.field(default_factory=dict)

    def buffer(self, name: str, shape: tuple[int, ...],
               dtype: Any) -> np.ndarray:
        """A writable workspace array of ``shape``/``dtype``, reused if possible.

        Re-running a plan against the same context (the serving engine's
        steady state) then recycles the previous run's allocation instead
        of growing the heap every sweep.
        """
        existing = self.workspace.get(name)
        if (
            isinstance(existing, np.ndarray)
            and existing.shape == shape
            and existing.dtype == np.dtype(dtype)
            and existing.flags.writeable
        ):
            return existing
        fresh = np.empty(shape, dtype=dtype)
        self.workspace[name] = fresh
        return fresh


# --------------------------------------------------------------------------
# Kernel registry — the one backend dispatch point
# --------------------------------------------------------------------------

StageFn = Callable[[ExecutionContext], None]


@dataclasses.dataclass(frozen=True)
class StageKernel:
    """One registered kernel: a stage-level function plus optional extras.

    Attributes:
        stage: the stage this kernel implements.
        backend: the backend name it registered under.
        run: the stage-level entry point (mutates ``ctx.workspace``).
        frame_fn: optional frame-level companion with the historical
            ``(components, config, array, rng) -> frame`` signature, kept
            so :func:`repro.radar.frontend.synthesize_frame` can dispatch
            single frames through the same registry.
    """

    stage: Stage
    backend: str
    run: StageFn
    frame_fn: Callable[..., np.ndarray] | None = None


class KernelRegistry:
    """Registration-based dispatch: ``(stage, backend) -> StageKernel``.

    This replaces every scattered ``if get_*_backend() == "naive"``
    conditional: kernels register themselves once, and callers resolve by
    stage with an optional per-call backend override.
    """

    def __init__(self) -> None:
        self._kernels: dict[tuple[Stage, str], StageKernel] = {}

    def register(
        self, stage: Stage, backend: str, *,
        frame_fn: Callable[..., np.ndarray] | None = None,
    ) -> Callable[[StageFn], StageFn]:
        """Decorator registering ``fn`` as the ``backend`` kernel of ``stage``."""
        def decorator(fn: StageFn) -> StageFn:
            key = (stage, backend)
            if key in self._kernels:
                raise ConfigurationError(
                    f"kernel already registered for stage "
                    f"{stage.value!r} backend {backend!r}"
                )
            self._kernels[key] = StageKernel(stage=stage, backend=backend,
                                             run=fn, frame_fn=frame_fn)
            return fn
        return decorator

    def backends(self, stage: Stage) -> tuple[str, ...]:
        """Backend names registered for ``stage``, sorted."""
        return tuple(sorted(
            backend for (s, backend) in self._kernels if s is stage
        ))

    def resolve(self, stage: Stage,
                backend: str | None = None) -> StageKernel:
        """The kernel for ``stage``; ``backend=None`` follows the config default."""
        if backend is None:
            backend = default_backend(stage)
        kernel = self._kernels.get((stage, backend))
        if kernel is None:
            raise ConfigurationError(
                f"no kernel registered for stage {stage.value!r} backend "
                f"{backend!r}; registered: {self.backends(stage)}"
            )
        return kernel


#: The process-wide kernel registry every sense path resolves against.
KERNELS = KernelRegistry()


def frame_synthesizer(
        backend: str | None = None) -> Callable[..., np.ndarray]:
    """The frame-level synthesis kernel for ``backend`` (default from env).

    The single-frame companion of the Synthesize stage, resolved through
    the same registry so ``repro.radar.frontend.synthesize_frame`` carries
    no backend conditional of its own.
    """
    kernel = KERNELS.resolve(Stage.SYNTHESIZE, backend)
    if kernel.frame_fn is None:
        raise ConfigurationError(
            f"synthesis backend {kernel.backend!r} registered no "
            f"frame-level kernel"
        )
    return kernel.frame_fn


# --------------------------------------------------------------------------
# Instrumentation
# --------------------------------------------------------------------------

# Imported lazily: repro.serve.metrics is dependency-free, but importing it
# initializes the repro.serve package, which imports the radar facade —
# a cycle if it happened while this module (or repro.radar.radar) loads.
_STAGE_METRICS: "MetricsRegistry | None" = None


def stage_metrics() -> "MetricsRegistry":
    """The process-wide per-stage timing registry (lazily constructed).

    One histogram per stage (``stages.<stage>.wall_s``) plus one run
    counter per (stage, backend) pair — the same Prometheus-shaped
    instruments the serving service exports, so a service snapshot, the
    benchmarks artifact, and an experiment record all read identically.
    """
    global _STAGE_METRICS
    if _STAGE_METRICS is None:
        from repro.serve.metrics import MetricsRegistry
        _STAGE_METRICS = MetricsRegistry()
    return _STAGE_METRICS


def _observe_stage(stage: Stage, backend: str, elapsed_s: float,
                   ctx: ExecutionContext) -> None:
    name = f"stages.{stage.value}.wall_s"
    registry = stage_metrics()
    registry.observe(name, elapsed_s, STAGE_TIME_BUCKETS)
    registry.inc(f"stages.{stage.value}.{backend}.runs")
    if ctx.metrics is not None and ctx.metrics is not registry:
        ctx.metrics.observe(name, elapsed_s, STAGE_TIME_BUCKETS)


# --------------------------------------------------------------------------
# Executor
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StageBinding:
    """One plan entry: a stage, optionally pinned to a backend or kernel.

    Attributes:
        stage: which stage this entry runs.
        backend: explicit backend (wins over ``ctx.overrides`` and the
            environment default). With ``kernel`` set it is only the
            instrumentation label.
        kernel: explicit stage function bypassing the registry — how the
            serving engine binds its fused multi-request kernels while
            still executing through this one graph.
    """

    stage: Stage
    backend: str | None = None
    kernel: StageFn | None = None


#: The full FMCW sense plan (Detect runs lazily via the result mixin).
SENSE_PLAN: tuple[StageBinding, ...] = tuple(
    StageBinding(stage) for stage in (
        Stage.EMIT, Stage.SYNTHESIZE, Stage.RANGE_FFT,
        Stage.BACKGROUND_SUBTRACT, Stage.BEAMFORM,
    )
)

#: The receive-only sub-plan: a beat cube already in ``workspace["frames"]``.
RECEIVE_PLAN: tuple[StageBinding, ...] = SENSE_PLAN[2:]


def execute(plan: Sequence[StageBinding],
            ctx: ExecutionContext) -> ExecutionContext:
    """Run ``plan`` in order against ``ctx``, timing every stage.

    Each binding resolves to a kernel (explicit ``kernel`` > explicit
    ``backend`` > ``ctx.overrides`` > environment default via
    :func:`default_backend`), runs it against the shared context, and
    observes its wall time into the per-stage histograms. Returns ``ctx``
    for chaining.
    """
    for binding in plan:
        if binding.kernel is not None:
            run = binding.kernel
            backend = binding.backend or "custom"
        else:
            backend_name = binding.backend
            if backend_name is None:
                backend_name = ctx.overrides.get(binding.stage)
            kernel = KERNELS.resolve(binding.stage, backend_name)
            run = kernel.run
            backend = kernel.backend
        started = time.perf_counter()
        run(ctx)
        _observe_stage(binding.stage, backend, time.perf_counter() - started,
                       ctx)
    return ctx


# --------------------------------------------------------------------------
# Emit
# --------------------------------------------------------------------------


def emit_sweep(scene: Any, times: np.ndarray, config: Any,
               array: UniformLinearArray, rng: np.random.Generator | None,
               ) -> tuple[list[list[PathComponent]], np.ndarray | None]:
    """Per-frame scene components and thermal noise for a whole FMCW sweep.

    The scene is queried and noise is drawn frame-by-frame in time order —
    exactly the generator call sequence of the historical per-frame loop —
    so a fixed seed reproduces bit-for-bit whether the frames are then
    synthesized one by one, as one batched sweep, or fused into a larger
    multi-request batch by the serving engine. Time-invariant entities are
    memoized per sweep (:class:`~repro.radar.scene.SweepEmitter`), which
    consumes no generator draws.
    """
    shape = (config.num_antennas, config.chirp.num_samples)
    add_noise = rng is not None and config.noise_std > 0
    emitter = scene.sweep_emitter(array)
    components_per_frame: list[list[PathComponent]] = []
    noise: list[np.ndarray] = []
    for t in times:
        components_per_frame.append(emitter.components_at(float(t), rng))
        if add_noise:
            noise.append(thermal_noise(config, rng, shape))
    return components_per_frame, (np.stack(noise) if add_noise else None)


@KERNELS.register(Stage.EMIT, SHARED_BACKEND)
def _emit_fmcw(ctx: ExecutionContext) -> None:
    """Emit kernel: scene components + noise stack into the workspace."""
    components, noise = emit_sweep(ctx.scene, ctx.times, ctx.config,
                                   ctx.array, ctx.rng)
    ctx.workspace["components"] = components
    ctx.workspace["noise"] = noise


# --------------------------------------------------------------------------
# Synthesize
# --------------------------------------------------------------------------


@KERNELS.register(Stage.SYNTHESIZE, "naive",
                  frame_fn=synthesize_frame_naive)
def _synthesize_naive(ctx: ExecutionContext) -> None:
    """Reference per-frame synthesis loop over the emitted components."""
    components = ctx.workspace["components"]
    frames = np.stack([
        synthesize_frame_naive(frame_components, ctx.config, ctx.array, None)
        for frame_components in components
    ])
    noise = ctx.workspace.get("noise")
    if noise is not None:
        frames += noise
    ctx.workspace["frames"] = frames


@KERNELS.register(Stage.SYNTHESIZE, "vectorized",
                  frame_fn=synthesize_frame_vectorized)
def _synthesize_vectorized(ctx: ExecutionContext) -> None:
    """Batched sweep synthesis (PR 1 engine) over the emitted components."""
    frames = synthesize_frames(ctx.workspace["components"], ctx.config,
                               ctx.array, rng=None)
    noise = ctx.workspace.get("noise")
    if noise is not None:
        frames += noise
    ctx.workspace["frames"] = frames


# --------------------------------------------------------------------------
# RangeFFT
# --------------------------------------------------------------------------


@KERNELS.register(Stage.RANGE_FFT, "naive")
def _range_fft_naive(ctx: ExecutionContext) -> None:
    """Per-frame windowed range FFT (the reference loop)."""
    ctx.workspace["raw_profiles"] = np.stack([
        frame_range_profiles(frame, ctx.config)
        for frame in ctx.workspace["frames"]
    ])
    ctx.workspace["ranges_full"] = range_axis(
        ctx.config.chirp, zero_pad_factor=ZERO_PAD_FACTOR
    )


@KERNELS.register(Stage.RANGE_FFT, "vectorized")
def _range_fft_vectorized(ctx: ExecutionContext) -> None:
    """Whole-cube blocked range FFT (PR 3 engine)."""
    ctx.workspace["raw_profiles"] = batched_range_profiles(
        ctx.workspace["frames"], ctx.config
    )
    ctx.workspace["ranges_full"] = range_axis(
        ctx.config.chirp, zero_pad_factor=ZERO_PAD_FACTOR
    )


# --------------------------------------------------------------------------
# BackgroundSubtract
# --------------------------------------------------------------------------


def _crop_raw_profiles(ctx: ExecutionContext) -> np.ndarray:
    """Crop the raw profile cube to in-window bins; record the kept axis.

    Cropping commutes exactly with the elementwise successive-frame
    subtraction, so both backends cut the cube down *before* differencing
    and the difference pass touches only the in-room slice.
    """
    keep = range_keep_mask(ctx.workspace["ranges_full"],
                           min_range=ctx.min_range, max_range=ctx.max_range)
    ctx.workspace["keep"] = keep
    ctx.workspace["ranges"] = ctx.workspace["ranges_full"][keep]
    return np.ascontiguousarray(ctx.workspace["raw_profiles"][:, :, keep])


@KERNELS.register(Stage.BACKGROUND_SUBTRACT, "naive")
def _subtract_naive(ctx: ExecutionContext) -> None:
    """Reference frame-chained subtraction (one warmup frame of zeros)."""
    kept = _crop_raw_profiles(ctx)
    subtracted = ctx.buffer("subtracted", kept.shape, kept.dtype)
    previous: np.ndarray | None = None
    for f in range(kept.shape[0]):
        subtracted[f] = background_subtract(kept[f], previous)
        previous = kept[f]
    ctx.workspace["subtracted"] = subtracted


@KERNELS.register(Stage.BACKGROUND_SUBTRACT, "vectorized")
def _subtract_vectorized(ctx: ExecutionContext) -> None:
    """Single shifted-difference pass over the cropped cube."""
    ctx.workspace["subtracted"] = batched_background_subtract(
        _crop_raw_profiles(ctx)
    )


# --------------------------------------------------------------------------
# Beamform
# --------------------------------------------------------------------------


@KERNELS.register(Stage.BEAMFORM, "naive")
def _beamform_naive(ctx: ExecutionContext) -> None:
    """Reference per-frame Eq. 2 beamforming.

    Each frame gets fresh, writable axis arrays — exactly the reference
    path's behavior, and deliberately unlike the vectorized kernel's
    frozen shared planes.
    """
    angles = ctx.config.angle_grid()
    ranges = ctx.workspace["ranges"]
    subtracted = ctx.workspace["subtracted"]
    profiles: list[RangeAngleProfile] = []
    for f, t in enumerate(ctx.times):
        power = ctx.array.beamform(subtracted[f], angles)
        profiles.append(RangeAngleProfile(power=power.T, ranges=ranges.copy(),
                                          angles=angles.copy(),
                                          time=float(t)))
    ctx.workspace["profiles"] = profiles


@KERNELS.register(Stage.BEAMFORM, "vectorized")
def _beamform_vectorized(ctx: ExecutionContext) -> None:
    """Lag-domain Eq. 2 over the whole sweep (PR 3 engine).

    Every profile is a zero-copy view into one frozen power cube sharing
    frozen range/angle planes.
    """
    angles = ctx.config.angle_grid()
    angles.flags.writeable = False
    ranges = ctx.workspace["ranges"]
    ranges.flags.writeable = False
    power_cube = batched_beamform_power(ctx.workspace["subtracted"],
                                        ctx.array, angles)
    power_cube.flags.writeable = False
    ctx.workspace["angles"] = angles
    ctx.workspace["power_cube"] = power_cube
    ctx.workspace["profiles"] = [
        RangeAngleProfile(power=power_cube[f], ranges=ranges, angles=angles,
                          time=float(t))
        for f, t in enumerate(ctx.times)
    ]


# --------------------------------------------------------------------------
# Detect
# --------------------------------------------------------------------------


@KERNELS.register(Stage.DETECT, SHARED_BACKEND)
def _detect_tracks(ctx: ExecutionContext) -> None:
    """Peak detection + Kalman trajectory extraction over the profiles."""
    ctx.workspace["tracks"] = extract_tracks(
        ctx.workspace["profiles"], ctx.array,
        ctx.workspace.get("tracker_config"),
    )


@KERNELS.register(Stage.DETECT, "streaming")
def _detect_tracks_streaming(ctx: ExecutionContext) -> None:
    """Frame-at-a-time Detect: drives the incremental tracker.

    Ingests the workspace profiles one by one into a
    :class:`StreamingTracker` — resuming the tracker already in
    ``workspace["tracker"]`` when one is present, which is how a serving
    session appends new frames to its long-lived tracker state through
    the instrumented executor. ``stream(frames) == batch(frames)`` holds
    by construction (the batch kernel is this loop inlined), and the
    property suite pins it.
    """
    tracker = ctx.workspace.get("tracker")
    if tracker is None:
        tracker = StreamingTracker(ctx.array,
                                   ctx.workspace.get("tracker_config"))
        ctx.workspace["tracker"] = tracker
    for profile in ctx.workspace["profiles"]:
        tracker.ingest(profile)
    ctx.workspace["tracks"] = tracker.tracks()


class TrackedResultMixin:
    """Shared post-processing for sensing results (FMCW and pulsed).

    Subclasses provide ``times``, ``profiles``, ``array``, and (for phase
    analysis) ``raw_profiles`` + ``range_bins()``; this mixin runs the
    Detect stage through the instrumented executor and derives
    trajectories and per-bin phase series from it — one implementation for
    both radar families.
    """

    if TYPE_CHECKING:
        times: np.ndarray
        profiles: list[RangeAngleProfile]
        array: UniformLinearArray
        raw_profiles: np.ndarray | None

        def range_bins(self) -> np.ndarray: ...

    def tracks(self, tracker_config: TrackerConfig | None = None,
               ) -> list[Track]:
        """Run trajectory extraction (the Detect stage) on the profiles."""
        ctx = ExecutionContext(array=self.array, times=self.times)
        ctx.workspace["profiles"] = self.profiles
        ctx.workspace["tracker_config"] = tracker_config
        execute((StageBinding(Stage.DETECT),), ctx)
        result: list[Track] = ctx.workspace["tracks"]
        return result

    def stream_tracks(self, tracker_config: TrackerConfig | None = None,
                      tracker: StreamingTracker | None = None,
                      ) -> StreamingTracker:
        """Feed the profiles frame-by-frame into an incremental tracker.

        Runs the Detect stage's ``"streaming"`` kernel through the
        instrumented executor and returns the primed
        :class:`StreamingTracker` — read ``tracks()`` off it, keep
        ingesting later profiles, or checkpoint it. Pass ``tracker`` to
        continue an existing session instead of starting fresh;
        ``tracker_config`` is ignored in that case (the tracker already
        owns its config).
        """
        ctx = ExecutionContext(array=self.array, times=self.times)
        ctx.workspace["profiles"] = self.profiles
        ctx.workspace["tracker_config"] = tracker_config
        if tracker is not None:
            ctx.workspace["tracker"] = tracker
        execute((StageBinding(Stage.DETECT, backend="streaming"),), ctx)
        primed: StreamingTracker = ctx.workspace["tracker"]
        return primed

    def trajectories(self, tracker_config: TrackerConfig | None = None,
                     *, smooth: bool = True) -> list[Trajectory]:
        """Extracted trajectories, longest first."""
        return [t.to_trajectory(smooth=smooth)
                for t in self.tracks(tracker_config)]

    def best_trajectory(self, tracker_config: TrackerConfig | None = None,
                        ) -> Trajectory:
        """The longest extracted trajectory; raises if nothing was tracked."""
        trajectories = self.trajectories(tracker_config)
        if not trajectories:
            raise TrackingError("no target was tracked in this session")
        return trajectories[0]

    def phase_series(self, distance: float, *,
                     antenna: int = 0) -> np.ndarray:
        """Beat-tone phase across frames at the bin nearest ``distance``.

        This is the observable that carries breathing (Sec. 11.4).
        """
        if self.raw_profiles is None:
            raise TrackingError(
                "this sensing session did not retain raw profiles"
            )
        bins = self.range_bins()
        bin_index = int(np.argmin(np.abs(bins - distance)))
        return extract_phase(self.raw_profiles[:, antenna, :], bin_index)
