"""Trajectory extraction: peaks -> tracks via gating + Kalman filtering.

Implements the eavesdropper algorithms of Sec. 2/9.1: per-frame peak
detection on the range-angle map, detection-to-track association into
tracks, a constant-velocity Kalman filter per track, and the time
smoothing / peak rejection the paper applies before reporting
trajectories.

The module is built around :class:`StreamingTracker`, an *incremental*
multi-target tracker: it ingests one :class:`RangeAngleProfile` (or one
pre-detected frame) at a time, maintains persistent track identities
across frames, coasts through occlusions/missed frames on the Kalman
prediction, and can checkpoint/restore its complete state as a
JSON-serializable blob (the substrate of the serving layer's long-lived
tracking sessions, :mod:`repro.serve.session`). The historical batch
entry point :func:`extract_tracks` is a thin driver over the streaming
core, so ``stream(frames)`` and ``batch(frames)`` are the same
computation by construction — a property pinned track-for-track by
``tests/test_property_tracker.py``.

Detection-to-track association solves a gated minimum-cost assignment
(`scipy.optimize.linear_sum_assignment` when scipy is importable, the
in-repo :func:`hungarian_assignment` otherwise); a greedy
closest-pair-first mode is kept as ``TrackerConfig(association="greedy")``.
All candidate orderings are canonicalized, so tracks — including their
persistent IDs — are independent of detection input order.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError, TrackingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.processing import RangeAngleProfile
from repro.signal.filtering import smooth_trajectory
from repro.types import Trajectory

try:  # pragma: no cover - exercised via the import-time branch taken
    from scipy.optimize import linear_sum_assignment as _scipy_assignment
except ImportError:  # pragma: no cover - container always has scipy
    _scipy_assignment = None

__all__ = [
    "ASSOCIATION_MODES",
    "KalmanTracker2D",
    "StreamingTracker",
    "Track",
    "TrackerConfig",
    "extract_tracks",
    "hungarian_assignment",
    "track_detections",
]

#: Recognized detection-to-track association solvers.
ASSOCIATION_MODES: tuple[str, ...] = ("hungarian", "greedy")

#: One detection: a Cartesian ``(x, y)`` position and its peak power.
Detection = tuple[np.ndarray, float]


class KalmanTracker2D:
    """Constant-velocity Kalman filter over state ``[x, y, vx, vy]``."""

    def __init__(self, initial_position: np.ndarray, *,
                 position_variance: float = 0.25,
                 velocity_variance: float = 1.0,
                 process_noise: float = 0.5,
                 measurement_noise: float = 0.05) -> None:
        position = np.asarray(initial_position, dtype=float)
        if position.shape != (2,):
            raise ConfigurationError("initial position must be (x, y)")
        if min(position_variance, velocity_variance,
               process_noise, measurement_noise) <= 0:
            raise ConfigurationError("Kalman variances must be positive")
        self.state = np.array([position[0], position[1], 0.0, 0.0])
        self.covariance = np.diag([position_variance, position_variance,
                                   velocity_variance, velocity_variance])
        self.process_noise = process_noise
        self.measurement_noise = measurement_noise

    @property
    def position(self) -> np.ndarray:
        """Current position estimate (x, y)."""
        return self.state[:2].copy()

    @property
    def velocity(self) -> np.ndarray:
        """Current velocity estimate (vx, vy)."""
        return self.state[2:].copy()

    def predict(self, dt: float) -> np.ndarray:
        """Advance the state by ``dt`` seconds; returns the predicted position."""
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        transition = np.eye(4)
        transition[0, 2] = dt
        transition[1, 3] = dt
        # White-acceleration process noise (discretized).
        q = self.process_noise
        dt2, dt3, dt4 = dt ** 2, dt ** 3, dt ** 4
        noise = q * np.array([
            [dt4 / 4, 0, dt3 / 2, 0],
            [0, dt4 / 4, 0, dt3 / 2],
            [dt3 / 2, 0, dt2, 0],
            [0, dt3 / 2, 0, dt2],
        ])
        self.state = transition @ self.state
        self.covariance = transition @ self.covariance @ transition.T + noise
        return self.position

    def update(self, measurement: np.ndarray) -> np.ndarray:
        """Fuse a position measurement; returns the corrected position."""
        z = np.asarray(measurement, dtype=float)
        if z.shape != (2,):
            raise ConfigurationError("measurement must be (x, y)")
        observation = np.zeros((2, 4), dtype=float)
        observation[0, 0] = 1.0
        observation[1, 1] = 1.0
        innovation = z - observation @ self.state
        innovation_cov = (observation @ self.covariance @ observation.T
                          + self.measurement_noise * np.eye(2))
        gain = self.covariance @ observation.T @ np.linalg.inv(innovation_cov)
        self.state = self.state + gain @ innovation
        self.covariance = (np.eye(4) - gain @ observation) @ self.covariance
        return self.position

    def to_state(self) -> dict[str, Any]:
        """Complete filter state as a JSON-serializable dict."""
        return {
            "state": [float(v) for v in self.state],
            "covariance": [[float(v) for v in row]
                           for row in self.covariance],
            "process_noise": float(self.process_noise),
            "measurement_noise": float(self.measurement_noise),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> KalmanTracker2D:
        """Rebuild a filter bit-for-bit from :meth:`to_state` output."""
        filter_ = cls(
            np.asarray(state["state"][:2], dtype=float),
            process_noise=float(state["process_noise"]),
            measurement_noise=float(state["measurement_noise"]),
        )
        filter_.state = np.asarray(state["state"], dtype=float)
        filter_.covariance = np.asarray(state["covariance"], dtype=float)
        return filter_


@dataclasses.dataclass(frozen=True)
class TrackerConfig:
    """Tuning of the track-extraction stage.

    Attributes:
        threshold_factor: detection threshold as a multiple of the map's
            median power (a robust noise-floor proxy).
        gate_distance: max association distance between a track's prediction
            and a detection, meters.
        max_misses: consecutive frames a track survives without a detection.
        min_track_points: tracks shorter than this are discarded as noise.
        max_targets: peaks kept per frame.
        smoothing_window: moving-window size of the final smoothing pass.
        max_jump: outlier-rejection jump bound for the smoother, meters.
        min_hit_ratio: minimum detections-per-spanned-frame consistency.
        min_relative_power_db: power floor relative to the strongest
            concurrent track.
        cluster_radius: blob-merging radius for per-frame detections.
        association: detection-to-track assignment solver —
            ``"hungarian"`` (gated global minimum-cost assignment) or
            ``"greedy"`` (closest pairs first, the historical behavior).
    """

    threshold_factor: float = 25.0
    gate_distance: float = 1.0
    max_misses: int = 5
    min_track_points: int = 8
    max_targets: int = 6
    smoothing_window: int = 7
    max_jump: float = 1.0
    min_hit_ratio: float = 0.55
    min_relative_power_db: float = 18.0
    cluster_radius: float = 1.0
    association: str = "hungarian"

    def __post_init__(self) -> None:
        if self.threshold_factor <= 0:
            raise ConfigurationError("threshold_factor must be positive")
        if self.gate_distance <= 0:
            raise ConfigurationError("gate_distance must be positive")
        if self.max_misses < 0:
            raise ConfigurationError("max_misses must be >= 0")
        if self.min_track_points < 2:
            raise ConfigurationError("min_track_points must be >= 2")
        if self.max_targets < 1:
            raise ConfigurationError("max_targets must be >= 1")
        if not 0 < self.min_hit_ratio <= 1:
            raise ConfigurationError("min_hit_ratio must be in (0, 1]")
        if self.min_relative_power_db <= 0:
            raise ConfigurationError("min_relative_power_db must be positive")
        if self.cluster_radius < 0:
            raise ConfigurationError("cluster_radius must be >= 0")
        if self.association not in ASSOCIATION_MODES:
            raise ConfigurationError(
                f"association must be one of {ASSOCIATION_MODES}, "
                f"got {self.association!r}"
            )

    def to_state(self) -> dict[str, Any]:
        """The configuration as a JSON-serializable dict."""
        return dataclasses.asdict(self)

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> TrackerConfig:
        """Rebuild (and re-validate) a config from :meth:`to_state` output."""
        return cls(**state)


class Track:
    """One tracked target: timestamps, positions, and detection powers.

    A track carries a persistent ``track_id`` assigned by the tracker at
    spawn time and stable for the track's whole life — the identity the
    adversary model cares about. ``age`` counts frames the track has
    existed (hits and misses both), ``misses`` counts *consecutive*
    missed frames (reset on every hit), ``total_misses`` counts all of
    them.
    """

    def __init__(self, time: float, position: np.ndarray,
                 config: TrackerConfig, power: float = 0.0,
                 track_id: int = 0) -> None:
        self._config = config
        self.track_id = track_id
        self.times: list[float] = [time]
        self.raw_positions: list[np.ndarray] = [np.asarray(position, dtype=float)]
        self.powers: list[float] = [power]
        self.filter = KalmanTracker2D(position)
        self.misses = 0
        self.total_misses = 0
        self.age = 1
        self._last_time = time

    def __len__(self) -> int:
        return len(self.times)

    def predict(self, time: float) -> np.ndarray:
        """Predicted position at ``time`` without consuming the prediction."""
        dt = max(time - self._last_time, 1e-6)
        transition = np.eye(4)
        transition[0, 2] = dt
        transition[1, 3] = dt
        return (transition @ self.filter.state)[:2]

    def add(self, time: float, position: np.ndarray, power: float = 0.0) -> None:
        """Fuse a new detection into the track."""
        dt = max(time - self._last_time, 1e-6)
        self.filter.predict(dt)
        filtered = self.filter.update(np.asarray(position, dtype=float))
        self.times.append(time)
        self.raw_positions.append(filtered)
        self.powers.append(power)
        self.misses = 0
        self.age += 1
        self._last_time = time

    @property
    def total_power(self) -> float:
        """Accumulated detection power — the track-ranking score.

        Beamforming-sidelobe ghost tracks shadow a real target frame for
        frame, so they can match it in *length*; they cannot match it in
        power. Ranking by accumulated power keeps the real target first.
        """
        return float(sum(self.powers))

    def mark_missed(self) -> None:
        """Record a frame with no associated detection (occlusion/dropout).

        The track is not updated — it coasts on the Kalman prediction and
        recovers if a detection re-enters its gate before ``max_misses``
        consecutive frames elapse.
        """
        self.misses += 1
        self.total_misses += 1
        self.age += 1

    @property
    def alive(self) -> bool:
        return self.misses <= self._config.max_misses

    def to_trajectory(self, *, smooth: bool = True) -> Trajectory:
        """Resample to uniform dt and apply the paper's smoothing stage."""
        if len(self) < 2:
            raise TrackingError("track too short to form a trajectory")
        times = np.asarray(self.times)
        positions = np.vstack(self.raw_positions)
        dt = float(np.median(np.diff(times)))
        uniform_times = np.arange(times[0], times[-1] + dt / 2, dt)
        xs = np.interp(uniform_times, times, positions[:, 0])
        ys = np.interp(uniform_times, times, positions[:, 1])
        points = np.column_stack([xs, ys])
        if smooth and points.shape[0] >= 3:
            points = smooth_trajectory(points,
                                       window=self._config.smoothing_window,
                                       max_jump=self._config.max_jump)
        return Trajectory(points, dt=dt)

    def to_state(self) -> dict[str, Any]:
        """Complete track state as a JSON-serializable dict."""
        return {
            "track_id": int(self.track_id),
            "times": [float(t) for t in self.times],
            "positions": [[float(p[0]), float(p[1])]
                          for p in self.raw_positions],
            "powers": [float(p) for p in self.powers],
            "filter": self.filter.to_state(),
            "misses": int(self.misses),
            "total_misses": int(self.total_misses),
            "age": int(self.age),
            "last_time": float(self._last_time),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any],
                   config: TrackerConfig) -> Track:
        """Rebuild a track bit-for-bit from :meth:`to_state` output."""
        track = cls(state["times"][0],
                    np.asarray(state["positions"][0], dtype=float),
                    config, power=state["powers"][0],
                    track_id=int(state["track_id"]))
        track.times = [float(t) for t in state["times"]]
        track.raw_positions = [np.asarray(p, dtype=float)
                               for p in state["positions"]]
        track.powers = [float(p) for p in state["powers"]]
        track.filter = KalmanTracker2D.from_state(state["filter"])
        track.misses = int(state["misses"])
        track.total_misses = int(state["total_misses"])
        track.age = int(state["age"])
        track._last_time = float(state["last_time"])
        return track


# --------------------------------------------------------------------------
# Assignment solvers
# --------------------------------------------------------------------------


def hungarian_assignment(cost: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Minimum-cost rectangular assignment (in-repo Hungarian solver).

    A dependency-free stand-in for ``scipy.optimize.linear_sum_assignment``
    (the potentials/augmenting-path formulation, O(n^2 m)): returns
    ``(row_indices, col_indices)`` of an assignment of every row (or every
    column, whichever side is smaller) minimizing the summed cost, with
    rows sorted ascending. Property-tested cost-equal to scipy in
    ``tests/test_property_tracker.py``.
    """
    matrix = np.asarray(cost, dtype=float)
    if matrix.ndim != 2:
        raise TrackingError(
            f"cost matrix must be 2-D, got shape {matrix.shape}"
        )
    if matrix.size == 0:
        return (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
    if not np.all(np.isfinite(matrix)):
        raise TrackingError("cost matrix entries must be finite")
    transposed = matrix.shape[0] > matrix.shape[1]
    if transposed:
        matrix = matrix.T
    num_rows, num_cols = matrix.shape

    # 1-based potentials formulation; column 0 is the virtual free column.
    row_potential = np.zeros(num_rows + 1, dtype=float)
    col_potential = np.zeros(num_cols + 1, dtype=float)
    matched_row = np.zeros(num_cols + 1, dtype=np.intp)  # col -> row, 0=free
    predecessor = np.zeros(num_cols + 1, dtype=np.intp)
    for row in range(1, num_rows + 1):
        matched_row[0] = row
        active_col = 0
        min_reduced = np.full(num_cols + 1, np.inf, dtype=np.float64)
        visited = np.zeros(num_cols + 1, dtype=bool)
        while True:
            visited[active_col] = True
            pivot_row = matched_row[active_col]
            delta = np.inf
            next_col = 0
            for col in range(1, num_cols + 1):
                if visited[col]:
                    continue
                reduced = (matrix[pivot_row - 1, col - 1]
                           - row_potential[pivot_row] - col_potential[col])
                if reduced < min_reduced[col]:
                    min_reduced[col] = reduced
                    predecessor[col] = active_col
                if min_reduced[col] < delta:
                    delta = min_reduced[col]
                    next_col = col
            for col in range(num_cols + 1):
                if visited[col]:
                    row_potential[matched_row[col]] += delta
                    col_potential[col] -= delta
                else:
                    min_reduced[col] -= delta
            active_col = next_col
            if matched_row[active_col] == 0:
                break
        while active_col:
            previous_col = predecessor[active_col]
            matched_row[active_col] = matched_row[previous_col]
            active_col = previous_col

    rows = []
    cols = []
    for col in range(1, num_cols + 1):
        if matched_row[col]:
            rows.append(int(matched_row[col]) - 1)
            cols.append(col - 1)
    order = np.argsort(np.asarray(rows, dtype=np.intp), kind="stable")
    row_indices = np.asarray(rows, dtype=np.intp)[order]
    col_indices = np.asarray(cols, dtype=np.intp)[order]
    if transposed:
        return col_indices, row_indices
    return row_indices, col_indices


def _assign_min_cost(cost: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch to scipy's assignment solver, or the in-repo fallback."""
    if _scipy_assignment is not None:
        rows, cols = _scipy_assignment(cost)
        return np.asarray(rows, dtype=np.intp), np.asarray(cols, dtype=np.intp)
    return hungarian_assignment(cost)


def _associate_hungarian(predictions: np.ndarray,
                         detections: list[Detection],
                         gate_distance: float) -> list[tuple[int, int]]:
    """Gated global minimum-cost association: ``(track, detection)`` pairs.

    Out-of-gate pairs enter the cost matrix at a cost so large that any
    solution is first ranked by how few of them it uses, then by summed
    in-gate distance; they are stripped from the returned matching.
    """
    num_tracks = predictions.shape[0]
    num_detections = len(detections)
    if num_tracks == 0 or num_detections == 0:
        return []
    positions = np.vstack([position for position, _power in detections])
    distances = np.linalg.norm(
        predictions[:, None, :] - positions[None, :, :], axis=2
    )
    infeasible = distances > gate_distance
    # Any assignment using k out-of-gate pairs costs more than any using
    # k-1: the penalty exceeds the largest possible sum of in-gate costs.
    penalty = (min(num_tracks, num_detections) + 1.0) * (gate_distance + 1.0)
    cost = np.where(infeasible, penalty, distances)
    rows, cols = _assign_min_cost(cost)
    return [(int(ti), int(di)) for ti, di in zip(rows, cols)
            if not infeasible[ti, di]]


def _associate_greedy(predictions: np.ndarray,
                      detections: list[Detection],
                      gate_distance: float) -> list[tuple[int, int]]:
    """Greedy closest-pairs-first association (the historical behavior).

    Ties on distance break on ``(track index, detection index)``, so the
    matching is deterministic and — detections being canonically ordered
    before association — independent of detection input order.
    """
    pairs: list[tuple[float, int, int]] = []
    for ti in range(predictions.shape[0]):
        for di, (position, _power) in enumerate(detections):
            distance = float(np.linalg.norm(position - predictions[ti]))
            if distance <= gate_distance:
                pairs.append((distance, ti, di))
    pairs.sort()
    used_tracks: set[int] = set()
    used_detections: set[int] = set()
    matching: list[tuple[int, int]] = []
    for _distance, ti, di in pairs:
        if ti in used_tracks or di in used_detections:
            continue
        matching.append((ti, di))
        used_tracks.add(ti)
        used_detections.add(di)
    return matching


_ASSOCIATORS: dict[
    str,
    Callable[[np.ndarray, list[Detection], float], list[tuple[int, int]]],
] = {
    "hungarian": _associate_hungarian,
    "greedy": _associate_greedy,
}


# --------------------------------------------------------------------------
# The incremental multi-target tracker
# --------------------------------------------------------------------------


class StreamingTracker:
    """Incremental multi-target tracker over range-angle frames.

    Feed frames one at a time — :meth:`ingest` for a
    :class:`RangeAngleProfile` (runs the detection front end first),
    :meth:`ingest_detections` for pre-detected ``(position, power)``
    frames — and read the current result at any point via :meth:`tracks`
    (finalized, quality-filtered) or :attr:`active_tracks` (everything
    still being followed). Streaming a sweep frame-by-frame produces
    exactly the tracks of batch-processing it: :func:`extract_tracks` is
    this class driven in a loop.

    The complete tracker state round-trips through
    :meth:`checkpoint`/:meth:`from_checkpoint` as a JSON-serializable
    blob — how the serving layer parks idle sessions without losing
    track identities.
    """

    #: Checkpoint schema version (bump on incompatible state changes).
    CHECKPOINT_VERSION = 1

    #: Exactly the payload keys :meth:`checkpoint` writes and
    #: :meth:`from_checkpoint` reads. rflint RFP012 cross-checks all
    #: three, so editing the payload forces an edit here — and with it
    #: a CHECKPOINT_VERSION bump for any incompatible change.
    CHECKPOINT_FIELDS = (
        "version",
        "config",
        "next_track_id",
        "frame_times",
        "active",
        "finished",
    )

    def __init__(self, array: UniformLinearArray | None = None,
                 config: TrackerConfig | None = None) -> None:
        self.array = array
        self.config = config if config is not None else TrackerConfig()
        self._associate = _ASSOCIATORS[self.config.association]
        self._active: list[Track] = []
        self._finished: list[Track] = []
        self._frame_times: list[float] = []
        self._next_track_id = 1

    # -- state views -------------------------------------------------------

    @property
    def active_tracks(self) -> list[Track]:
        """Tracks still being followed (any length, including tentative)."""
        return list(self._active)

    @property
    def frames_ingested(self) -> int:
        """How many frames this tracker has consumed."""
        return len(self._frame_times)

    @property
    def last_frame_time(self) -> float | None:
        """Capture time of the most recent frame, or ``None`` before any."""
        return self._frame_times[-1] if self._frame_times else None

    # -- ingestion ---------------------------------------------------------

    def ingest(self, profile: RangeAngleProfile) -> None:
        """Consume one range-angle frame: detect, cluster, associate, update."""
        if self.array is None:
            raise ConfigurationError(
                "profile ingestion needs the array geometry; construct "
                "StreamingTracker(array, ...) or use ingest_detections()"
            )
        floor = float(np.median(profile.power))
        threshold = self.config.threshold_factor * max(floor, 1e-30)
        peaks = profile.detect(threshold=threshold,
                               max_peaks=self.config.max_targets)
        detections = [(profile.peak_position(peak, self.array), peak.power)
                      for peak in peaks]
        self.ingest_detections(profile.time, detections)

    def ingest_detections(self, time: float,
                          detections: list[Detection]) -> None:
        """Consume one pre-detected frame of ``(position, power)`` pairs.

        Frames must arrive in nondecreasing time order. Detections are
        clustered and canonically ordered before association, so the
        resulting tracks (IDs included) do not depend on the input order
        of ``detections``.
        """
        if self._frame_times and time < self._frame_times[-1]:
            raise TrackingError(
                f"frames must arrive in time order: got t={time} after "
                f"t={self._frame_times[-1]}"
            )
        self._frame_times.append(float(time))
        merged = _cluster_detections(detections, self.config.cluster_radius)

        if self._active:
            predictions = np.vstack([track.predict(time)
                                     for track in self._active])
        else:
            predictions = np.empty((0, 2), dtype=float)
        matching = self._associate(predictions, merged,
                                   self.config.gate_distance)
        matched_tracks = {ti for ti, _di in matching}
        matched_detections = {di for _ti, di in matching}

        for ti, di in matching:
            position, power = merged[di]
            self._active[ti].add(time, position, power)
        for ti, track in enumerate(self._active):
            if ti not in matched_tracks:
                track.mark_missed()
        for di, (position, power) in enumerate(merged):
            if di not in matched_detections:
                self._active.append(Track(time, position, self.config, power,
                                          track_id=self._next_track_id))
                self._next_track_id += 1

        still_active: list[Track] = []
        for track in self._active:
            if track.alive:
                still_active.append(track)
            elif len(track) >= self.config.min_track_points:
                self._finished.append(track)
        self._active = still_active

    # -- finalization ------------------------------------------------------

    def tracks(self) -> list[Track]:
        """The current finalized view: quality-filtered, strongest first.

        Non-destructive — a streaming session can read its tracks after
        every frame and keep ingesting.
        """
        candidates = list(self._finished)
        candidates.extend(track for track in self._active
                          if len(track) >= self.config.min_track_points)
        kept = _quality_filter(candidates, self._frame_times, self.config)
        kept.sort(key=lambda track: track.total_power, reverse=True)
        return kept

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Complete tracker state as a JSON-serializable blob.

        Restoring via :meth:`from_checkpoint` (optionally after a
        ``json.dumps``/``loads`` round trip — Python float repr is exact)
        yields a tracker whose future outputs are bit-identical to one
        that never checkpointed.
        """
        return {
            "version": self.CHECKPOINT_VERSION,
            "config": self.config.to_state(),
            "next_track_id": int(self._next_track_id),
            "frame_times": [float(t) for t in self._frame_times],
            "active": [track.to_state() for track in self._active],
            "finished": [track.to_state() for track in self._finished],
        }

    @classmethod
    def from_checkpoint(cls, state: dict[str, Any],
                        array: UniformLinearArray | None = None,
                        ) -> StreamingTracker:  # rflint: blocking
        """Rebuild a tracker from a :meth:`checkpoint` blob.

        CPU-bound in proportion to checkpoint size (rebuilds every
        track's Kalman state), hence marked ``# rflint: blocking``:
        coroutines reaching this synchronously get an RFP014 finding and
        must either accept the cost explicitly or move it off-loop.

        Args:
            state: the checkpoint blob.
            array: array geometry to reattach for profile-level ingestion
                (checkpoints do not embed geometry).
        """
        version = state.get("version")
        if version != cls.CHECKPOINT_VERSION:
            raise TrackingError(
                f"unsupported tracker checkpoint version {version!r} "
                f"(expected {cls.CHECKPOINT_VERSION})"
            )
        config = TrackerConfig.from_state(state["config"])
        tracker = cls(array, config)
        tracker._next_track_id = int(state["next_track_id"])
        tracker._frame_times = [float(t) for t in state["frame_times"]]
        tracker._active = [Track.from_state(s, config)
                           for s in state["active"]]
        tracker._finished = [Track.from_state(s, config)
                             for s in state["finished"]]
        return tracker


# --------------------------------------------------------------------------
# Batch drivers (thin loops over the streaming core)
# --------------------------------------------------------------------------


def extract_tracks(profiles: list[RangeAngleProfile],
                   array: UniformLinearArray,
                   config: TrackerConfig | None = None) -> list[Track]:
    """Run the full association + filtering pipeline over a frame sequence.

    A thin batch driver over :class:`StreamingTracker` — one ingest per
    frame, then the finalized view. Returns all tracks with at least
    ``min_track_points`` detections, strongest first.
    """
    tracker = StreamingTracker(array, config)
    for profile in profiles:
        tracker.ingest(profile)
    return tracker.tracks()


def track_detections(frames: list[tuple[float, list[Detection]]],
                     config: TrackerConfig | None = None) -> list[Track]:
    """Batch-track pre-detected frames of ``(time, detections)`` pairs.

    The detection-level companion of :func:`extract_tracks`, for callers
    (tests, benchmarks, external detectors) that bypass the range-angle
    front end.
    """
    tracker = StreamingTracker(config=config)
    for time, detections in frames:
        tracker.ingest_detections(time, detections)
    return tracker.tracks()


# --------------------------------------------------------------------------
# Detection clustering and track quality filtering
# --------------------------------------------------------------------------


def _canonical_order(detections: list[Detection]) -> list[Detection]:
    """Detections sorted strongest-first, position-tie-broken.

    Power ties break on ``(x, y)``, so the ordering — and everything
    downstream of it: cluster membership, centroid summation order,
    association indices, spawn order of new track IDs — is a function of
    the detection *set*, never of the input order.
    """
    return sorted(
        detections,
        key=lambda item: (-item[1], float(item[0][0]), float(item[0][1])),
    )


def _cluster_detections(detections: list[Detection],
                        radius: float) -> list[Detection]:
    """Merge detections within ``radius`` of a stronger one.

    A person is an extended radar target: their body return plus nearby
    multipath form a blob of peaks, not a point. Clustering keeps one
    object per blob at the power-weighted centroid — the small position
    bias this introduces under heavy multipath is precisely the effect
    behind the office environment's larger errors (Sec. 11.1).

    Output order is canonical (see :func:`_canonical_order`) regardless
    of input order, including for ``radius=0``.
    """
    if len(detections) <= 1:
        return list(detections)
    ordered = _canonical_order(detections)
    if radius == 0:
        return ordered
    clusters: list[list[Detection]] = []
    for position, power in ordered:
        for cluster in clusters:
            anchor_position, _anchor_power = cluster[0]
            if np.linalg.norm(position - anchor_position) <= radius:
                cluster.append((position, power))
                break
        else:
            clusters.append([(position, power)])
    merged: list[Detection] = []
    for cluster in clusters:
        weights = np.array([power for _position, power in cluster])
        positions = np.vstack([position for position, _power in cluster])
        centroid = weights @ positions / weights.sum()
        merged.append((centroid, float(weights.sum())))
    return _canonical_order(merged)


def _quality_filter(tracks: list[Track], frame_times: list[float],
                    config: TrackerConfig) -> list[Track]:
    """Reject multipath/speckle tracks by consistency and relative power.

    A real mover is detected in most frames it spans (multipath speckle
    decorrelates frame to frame, so its chains are gappy), and its mean
    detection power is within ``min_relative_power_db`` of the strongest
    concurrent track (bounce trails sit ~10-20 dB below their source).
    """
    if not tracks or not frame_times:
        return list(tracks)
    frame_dt = max(
        float(np.median(np.diff(np.asarray(frame_times)))), 1e-9
    ) if len(frame_times) > 1 else 1e-9

    def hit_ratio(track: Track) -> float:
        spanned = (track.times[-1] - track.times[0]) / frame_dt + 1.0
        return len(track) / max(spanned, 1.0)

    def mean_power(track: Track) -> float:
        return track.total_power / max(len(track), 1)

    consistent = [t for t in tracks if hit_ratio(t) >= config.min_hit_ratio]
    if not consistent:
        return []
    power_floor_ratio = 10.0 ** (-config.min_relative_power_db / 10.0)
    kept: list[Track] = []
    for track in consistent:
        # Compare against the strongest track overlapping this one in time.
        overlapping = [
            other for other in consistent
            if other.times[0] <= track.times[-1]
            and other.times[-1] >= track.times[0]
        ]
        strongest = max(mean_power(other) for other in overlapping)
        if mean_power(track) >= strongest * power_floor_ratio:
            kept.append(track)
    return kept
