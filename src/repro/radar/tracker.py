"""Trajectory extraction: peaks -> tracks via gating + Kalman filtering.

Implements the eavesdropper algorithms of Sec. 2/9.1: per-frame peak
detection on the range-angle map, nearest-neighbour association into tracks,
a constant-velocity Kalman filter per track, and the time smoothing / peak
rejection the paper applies before reporting trajectories.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError, TrackingError
from repro.radar.antenna import UniformLinearArray
from repro.radar.processing import RangeAngleProfile
from repro.signal.filtering import smooth_trajectory
from repro.types import Trajectory

__all__ = ["KalmanTracker2D", "Track", "TrackerConfig", "extract_tracks"]


class KalmanTracker2D:
    """Constant-velocity Kalman filter over state ``[x, y, vx, vy]``."""

    def __init__(self, initial_position: np.ndarray, *,
                 position_variance: float = 0.25,
                 velocity_variance: float = 1.0,
                 process_noise: float = 0.5,
                 measurement_noise: float = 0.05) -> None:
        position = np.asarray(initial_position, dtype=float)
        if position.shape != (2,):
            raise ConfigurationError("initial position must be (x, y)")
        if min(position_variance, velocity_variance,
               process_noise, measurement_noise) <= 0:
            raise ConfigurationError("Kalman variances must be positive")
        self.state = np.array([position[0], position[1], 0.0, 0.0])
        self.covariance = np.diag([position_variance, position_variance,
                                   velocity_variance, velocity_variance])
        self.process_noise = process_noise
        self.measurement_noise = measurement_noise

    @property
    def position(self) -> np.ndarray:
        """Current position estimate (x, y)."""
        return self.state[:2].copy()

    @property
    def velocity(self) -> np.ndarray:
        """Current velocity estimate (vx, vy)."""
        return self.state[2:].copy()

    def predict(self, dt: float) -> np.ndarray:
        """Advance the state by ``dt`` seconds; returns the predicted position."""
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        transition = np.eye(4)
        transition[0, 2] = dt
        transition[1, 3] = dt
        # White-acceleration process noise (discretized).
        q = self.process_noise
        dt2, dt3, dt4 = dt ** 2, dt ** 3, dt ** 4
        noise = q * np.array([
            [dt4 / 4, 0, dt3 / 2, 0],
            [0, dt4 / 4, 0, dt3 / 2],
            [dt3 / 2, 0, dt2, 0],
            [0, dt3 / 2, 0, dt2],
        ])
        self.state = transition @ self.state
        self.covariance = transition @ self.covariance @ transition.T + noise
        return self.position

    def update(self, measurement: np.ndarray) -> np.ndarray:
        """Fuse a position measurement; returns the corrected position."""
        z = np.asarray(measurement, dtype=float)
        if z.shape != (2,):
            raise ConfigurationError("measurement must be (x, y)")
        observation = np.zeros((2, 4), dtype=float)
        observation[0, 0] = 1.0
        observation[1, 1] = 1.0
        innovation = z - observation @ self.state
        innovation_cov = (observation @ self.covariance @ observation.T
                          + self.measurement_noise * np.eye(2))
        gain = self.covariance @ observation.T @ np.linalg.inv(innovation_cov)
        self.state = self.state + gain @ innovation
        self.covariance = (np.eye(4) - gain @ observation) @ self.covariance
        return self.position


@dataclasses.dataclass(frozen=True)
class TrackerConfig:
    """Tuning of the track-extraction stage.

    Attributes:
        threshold_factor: detection threshold as a multiple of the map's
            median power (a robust noise-floor proxy).
        gate_distance: max association distance between a track's prediction
            and a detection, meters.
        max_misses: consecutive frames a track survives without a detection.
        min_track_points: tracks shorter than this are discarded as noise.
        max_targets: peaks kept per frame.
        smoothing_window: moving-window size of the final smoothing pass.
        max_jump: outlier-rejection jump bound for the smoother, meters.
    """

    threshold_factor: float = 25.0
    gate_distance: float = 1.0
    max_misses: int = 5
    min_track_points: int = 8
    max_targets: int = 6
    smoothing_window: int = 7
    max_jump: float = 1.0
    min_hit_ratio: float = 0.55
    min_relative_power_db: float = 18.0
    cluster_radius: float = 1.0

    def __post_init__(self) -> None:
        if self.threshold_factor <= 0:
            raise ConfigurationError("threshold_factor must be positive")
        if self.gate_distance <= 0:
            raise ConfigurationError("gate_distance must be positive")
        if self.max_misses < 0:
            raise ConfigurationError("max_misses must be >= 0")
        if self.min_track_points < 2:
            raise ConfigurationError("min_track_points must be >= 2")
        if self.max_targets < 1:
            raise ConfigurationError("max_targets must be >= 1")
        if not 0 < self.min_hit_ratio <= 1:
            raise ConfigurationError("min_hit_ratio must be in (0, 1]")
        if self.min_relative_power_db <= 0:
            raise ConfigurationError("min_relative_power_db must be positive")
        if self.cluster_radius < 0:
            raise ConfigurationError("cluster_radius must be >= 0")


class Track:
    """One tracked target: timestamps, positions, and detection powers."""

    def __init__(self, time: float, position: np.ndarray,
                 config: TrackerConfig, power: float = 0.0) -> None:
        self._config = config
        self.times: list[float] = [time]
        self.raw_positions: list[np.ndarray] = [np.asarray(position, dtype=float)]
        self.powers: list[float] = [power]
        self.filter = KalmanTracker2D(position)
        self.misses = 0
        self._last_time = time

    def __len__(self) -> int:
        return len(self.times)

    def predict(self, time: float) -> np.ndarray:
        """Predicted position at ``time`` without consuming the prediction."""
        dt = max(time - self._last_time, 1e-6)
        transition = np.eye(4)
        transition[0, 2] = dt
        transition[1, 3] = dt
        return (transition @ self.filter.state)[:2]

    def add(self, time: float, position: np.ndarray, power: float = 0.0) -> None:
        """Fuse a new detection into the track."""
        dt = max(time - self._last_time, 1e-6)
        self.filter.predict(dt)
        filtered = self.filter.update(np.asarray(position, dtype=float))
        self.times.append(time)
        self.raw_positions.append(filtered)
        self.powers.append(power)
        self.misses = 0
        self._last_time = time

    @property
    def total_power(self) -> float:
        """Accumulated detection power — the track-ranking score.

        Beamforming-sidelobe ghost tracks shadow a real target frame for
        frame, so they can match it in *length*; they cannot match it in
        power. Ranking by accumulated power keeps the real target first.
        """
        return float(sum(self.powers))

    def mark_missed(self) -> None:
        self.misses += 1

    @property
    def alive(self) -> bool:
        return self.misses <= self._config.max_misses

    def to_trajectory(self, *, smooth: bool = True) -> Trajectory:
        """Resample to uniform dt and apply the paper's smoothing stage."""
        if len(self) < 2:
            raise TrackingError("track too short to form a trajectory")
        times = np.asarray(self.times)
        positions = np.vstack(self.raw_positions)
        dt = float(np.median(np.diff(times)))
        uniform_times = np.arange(times[0], times[-1] + dt / 2, dt)
        xs = np.interp(uniform_times, times, positions[:, 0])
        ys = np.interp(uniform_times, times, positions[:, 1])
        points = np.column_stack([xs, ys])
        if smooth and points.shape[0] >= 3:
            points = smooth_trajectory(points,
                                       window=self._config.smoothing_window,
                                       max_jump=self._config.max_jump)
        return Trajectory(points, dt=dt)


def extract_tracks(profiles: list[RangeAngleProfile],
                   array: UniformLinearArray,
                   config: TrackerConfig | None = None) -> list[Track]:
    """Run the full association + filtering pipeline over a frame sequence.

    Returns all tracks with at least ``min_track_points`` detections,
    longest first.
    """
    if config is None:
        config = TrackerConfig()
    active: list[Track] = []
    finished: list[Track] = []

    for profile in profiles:
        floor = float(np.median(profile.power))
        threshold = config.threshold_factor * max(floor, 1e-30)
        peaks = profile.detect(threshold=threshold, max_peaks=config.max_targets)
        detections = _cluster_detections(
            [(profile.peak_position(p, array), p.power) for p in peaks],
            config.cluster_radius,
        )

        # Greedy nearest-neighbour association, closest pairs first.
        pairs: list[tuple[float, int, int]] = []
        for ti, track in enumerate(active):
            predicted = track.predict(profile.time)
            for di, (position, _power) in enumerate(detections):
                distance = float(np.linalg.norm(position - predicted))
                if distance <= config.gate_distance:
                    pairs.append((distance, ti, di))
        pairs.sort(key=lambda item: item[0])
        used_tracks: set[int] = set()
        used_dets: set[int] = set()
        for distance, ti, di in pairs:
            if ti in used_tracks or di in used_dets:
                continue
            position, power = detections[di]
            active[ti].add(profile.time, position, power)
            used_tracks.add(ti)
            used_dets.add(di)

        for ti, track in enumerate(active):
            if ti not in used_tracks:
                track.mark_missed()
        for di, (position, power) in enumerate(detections):
            if di not in used_dets:
                active.append(Track(profile.time, position, config, power))

        still_active = []
        for track in active:
            if track.alive:
                still_active.append(track)
            elif len(track) >= config.min_track_points:
                finished.append(track)
        active = still_active

    finished.extend(t for t in active if len(t) >= config.min_track_points)
    finished = _quality_filter(finished, profiles, config)
    finished.sort(key=lambda t: t.total_power, reverse=True)
    return finished


def _cluster_detections(detections: list[tuple[np.ndarray, float]],
                        radius: float) -> list[tuple[np.ndarray, float]]:
    """Merge detections within ``radius`` of a stronger one.

    A person is an extended radar target: their body return plus nearby
    multipath form a blob of peaks, not a point. Clustering keeps one
    object per blob at the power-weighted centroid — the small position
    bias this introduces under heavy multipath is precisely the effect
    behind the office environment's larger errors (Sec. 11.1).
    """
    if radius == 0 or len(detections) <= 1:
        return detections
    ordered = sorted(detections, key=lambda item: item[1], reverse=True)
    clusters: list[list[tuple[np.ndarray, float]]] = []
    for position, power in ordered:
        for cluster in clusters:
            anchor_position, _anchor_power = cluster[0]
            if np.linalg.norm(position - anchor_position) <= radius:
                cluster.append((position, power))
                break
        else:
            clusters.append([(position, power)])
    merged = []
    for cluster in clusters:
        weights = np.array([power for _position, power in cluster])
        positions = np.vstack([position for position, _power in cluster])
        centroid = weights @ positions / weights.sum()
        merged.append((centroid, float(weights.sum())))
    return merged


def _quality_filter(tracks: list[Track], profiles: list[RangeAngleProfile],
                    config: TrackerConfig) -> list[Track]:
    """Reject multipath/speckle tracks by consistency and relative power.

    A real mover is detected in most frames it spans (multipath speckle
    decorrelates frame to frame, so its chains are gappy), and its mean
    detection power is within ``min_relative_power_db`` of the strongest
    concurrent track (bounce trails sit ~10-20 dB below their source).
    """
    if not tracks or not profiles:
        return tracks
    frame_dt = max(
        float(np.median(np.diff([p.time for p in profiles]))), 1e-9
    ) if len(profiles) > 1 else 1e-9

    def hit_ratio(track: Track) -> float:
        spanned = (track.times[-1] - track.times[0]) / frame_dt + 1.0
        return len(track) / max(spanned, 1.0)

    def mean_power(track: Track) -> float:
        return track.total_power / max(len(track), 1)

    consistent = [t for t in tracks if hit_ratio(t) >= config.min_hit_ratio]
    if not consistent:
        return []
    power_floor_ratio = 10.0 ** (-config.min_relative_power_db / 10.0)
    kept: list[Track] = []
    for track in consistent:
        # Compare against the strongest track overlapping this one in time.
        overlapping = [
            other for other in consistent
            if other.times[0] <= track.times[-1]
            and other.times[-1] >= track.times[0]
        ]
        strongest = max(mean_power(other) for other in overlapping)
        if mean_power(track) >= strongest * power_floor_ratio:
            kept.append(track)
    return kept
