"""The RF-Protect tag: switched-reflector hardware and its control stack.

Mirrors the schematic of Fig. 5: an antenna panel (`panel`), the RF switch /
phase shifter / LNA component models (`hardware`), the controller that turns
a desired ghost trajectory into per-frame switching commands (`controller`),
breathing-phase synthesis (`breathing`), and the `RfProtectTag` scene entity
that ties them together and exposes the legitimate-sensor side channel
(`tag`).
"""

from repro.reflector.breathing import BreathingWaveform
from repro.reflector.delay_tag import DelayLineCommand, DelayLineSchedule, DelayLineTag
from repro.reflector.controller import (
    ReflectorController,
    SpoofCommand,
    SpoofSchedule,
)
from repro.reflector.hardware import (
    AntennaSwitchModel,
    LnaModel,
    PhaseShifterModel,
    SwitchModel,
)
from repro.reflector.panel import ReflectorPanel
from repro.reflector.tag import GhostReport, RfProtectTag

__all__ = [
    "AntennaSwitchModel",
    "BreathingWaveform",
    "DelayLineCommand",
    "DelayLineSchedule",
    "DelayLineTag",
    "GhostReport",
    "LnaModel",
    "PhaseShifterModel",
    "ReflectorController",
    "ReflectorPanel",
    "RfProtectTag",
    "SpoofCommand",
    "SpoofSchedule",
    "SwitchModel",
]
