"""Breathing-phase synthesis for the tag's phase shifter (Sec. 11.4).

A breathing chest at range ``r(t) = r0 + A sin(2 pi f t)`` rotates the beat
tone's carrier phase by ``4 pi A sin(.) / lambda`` (round trip). The tag
reproduces that phase rotation directly with its phase shifter, so a radar
watching the tag's range bin reads a human-like breathing waveform.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ReflectorError

__all__ = ["BreathingWaveform"]


@dataclasses.dataclass(frozen=True)
class BreathingWaveform:
    """A realistic breathing phase waveform.

    Real breathing is not a pure sinusoid: inhale is faster than exhale and
    both rate and depth wander. The waveform is a fundamental plus a small
    second harmonic (asymmetry) with slow random-walk modulation of
    amplitude and rate.

    Attributes:
        chest_amplitude: peak chest displacement, meters (~5 mm).
        frequency: breaths per second (~0.25 Hz).
        wavelength: radar wavelength, meters — sets phase per displacement.
        asymmetry: relative second-harmonic amplitude in [0, 0.5].
        variability: relative std-dev of the slow amplitude/rate wander.
        phase: initial breathing phase, radians.
    """

    chest_amplitude: float = 0.005
    frequency: float = 0.25
    wavelength: float = 0.046
    asymmetry: float = 0.2
    variability: float = 0.05
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.chest_amplitude <= 0:
            raise ReflectorError("chest amplitude must be positive")
        if self.frequency <= 0:
            raise ReflectorError("breathing frequency must be positive")
        if self.wavelength <= 0:
            raise ReflectorError("wavelength must be positive")
        if not 0 <= self.asymmetry <= 0.5:
            raise ReflectorError("asymmetry must be in [0, 0.5]")
        if self.variability < 0:
            raise ReflectorError("variability must be >= 0")

    @property
    def peak_phase(self) -> float:
        """Peak carrier-phase excursion: ``4 pi A / lambda`` radians."""
        return 4.0 * np.pi * self.chest_amplitude / self.wavelength

    def phase_waveform(self, times: np.ndarray,
                       rng: np.random.Generator | None = None) -> np.ndarray:
        """Commanded phase-shifter values at the given times, radians.

        With ``rng`` provided, amplitude and rate wander slowly (bounded
        random walks), which is what makes the spoof survive an
        eavesdropper checking for machine-perfect periodicity.
        """
        t = np.asarray(times, dtype=float)
        if t.ndim != 1 or t.size == 0:
            raise ReflectorError("times must be a non-empty 1-D array")

        if rng is None or self.variability == 0:
            amp_mod = np.ones_like(t)
            rate_mod = np.ones_like(t)
        else:
            amp_mod = _bounded_walk(t.size, self.variability, rng)
            rate_mod = _bounded_walk(t.size, self.variability, rng)

        if t.size > 1:
            dt = np.diff(t, prepend=t[0] - (t[1] - t[0]))
        else:
            dt = np.array([0.0])
        # Integrate the (wandering) instantaneous rate into a breathing phase.
        breathing_phase = self.phase + 2.0 * np.pi * self.frequency * np.cumsum(
            rate_mod * dt
        )
        fundamental = np.sin(breathing_phase)
        harmonic = self.asymmetry * np.sin(2.0 * breathing_phase)
        return self.peak_phase * amp_mod * (fundamental + harmonic) / (1.0 + self.asymmetry)


def _bounded_walk(length: int, scale: float,
                  rng: np.random.Generator) -> np.ndarray:
    """A slow multiplicative wander around 1.0, clipped to ±3 scales."""
    steps = rng.normal(0.0, scale / max(np.sqrt(length), 1.0), length)
    walk = 1.0 + np.cumsum(steps)
    return np.clip(walk, 1.0 - 3.0 * scale, 1.0 + 3.0 * scale)
