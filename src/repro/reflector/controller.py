"""Trajectory -> switching-schedule compilation (Sec. 5.3).

Given a ghost trajectory, the controller converts each point to polar
coordinates around the tag's *nominal* radar position (the tag never learns
the true one), picks the panel antenna nearest the required bearing, and
computes the switching frequency that places the ghost at the required
distance along that antenna's ray (Eq. 3). The output is a time-indexed
:class:`SpoofSchedule` the Raspberry-Pi-class MCU of Fig. 5 could execute.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.errors import ReflectorError
from repro.reflector.breathing import BreathingWaveform
from repro.reflector.panel import ReflectorPanel
from repro.signal.chirp import ChirpConfig
from repro.types import Trajectory

__all__ = ["ReflectorController", "SpoofCommand", "SpoofSchedule"]


@dataclasses.dataclass(frozen=True)
class SpoofCommand:
    """One MCU command interval.

    Attributes:
        time: activation time of this command, seconds.
        antenna_index: panel antenna selected by the SP8T switch.
        switch_frequency: on/off modulation frequency, Hz.
        phase_shift: commanded phase-shifter value, radians.
        ghost_position: the (x, y) the ghost is intended to appear at —
            carried for the side-channel report, never transmitted over RF.
        amplitude_scale: commanded attenuator setting, relative to the
            chain's nominal gain. Used for RCS mimicry (Sec. 8): varying
            the reflected power frame-to-frame like a posture-shifting
            human defeats radar-cross-section fingerprinting.
    """

    time: float
    antenna_index: int
    switch_frequency: float
    phase_shift: float
    ghost_position: tuple[float, float]
    amplitude_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.switch_frequency < 0:
            raise ReflectorError("switch frequency must be >= 0")
        if self.amplitude_scale <= 0:
            raise ReflectorError("amplitude_scale must be positive")


class SpoofSchedule:
    """A time-ordered sequence of spoofing commands for one ghost."""

    def __init__(self, commands: Sequence[SpoofCommand], *,
                 command_interval: float) -> None:
        if not commands:
            raise ReflectorError("a schedule needs at least one command")
        if command_interval <= 0:
            raise ReflectorError("command interval must be positive")
        ordered = sorted(commands, key=lambda c: c.time)
        times = [c.time for c in ordered]
        if any(b - a <= 0 for a, b in zip(times, times[1:])):
            raise ReflectorError("command times must be strictly increasing")
        self.commands = list(ordered)
        self.command_interval = float(command_interval)

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    @property
    def start_time(self) -> float:
        return self.commands[0].time

    @property
    def end_time(self) -> float:
        """Time the last command stops being executed."""
        return self.commands[-1].time + self.command_interval

    def command_at(self, t: float) -> SpoofCommand | None:
        """The command active at time ``t``, or ``None`` outside the schedule."""
        if t < self.start_time or t >= self.end_time:
            return None
        index = int(np.searchsorted([c.time for c in self.commands], t, side="right")) - 1
        return self.commands[max(index, 0)]

    def intended_trajectory(self, label: int | None = None) -> Trajectory:
        """The ghost positions this schedule encodes, as a trajectory."""
        points = np.array([c.ghost_position for c in self.commands])
        if points.shape[0] == 1:
            points = np.vstack([points, points])
        return Trajectory(points, dt=self.command_interval, label=label)

    def switch_frequencies(self) -> np.ndarray:
        """Per-command switching frequencies, Hz."""
        return np.array([c.switch_frequency for c in self.commands])


class ReflectorController:
    """Compiles ghost trajectories into reflector switching schedules.

    Args:
        panel: the antenna panel being driven.
        chirp: the radar chirp the tag is calibrated for. The paper notes
            the slope is constrained to a narrow practical range and is
            public for commercial sensors (Sec. 5.1); a mis-assumed slope
            only rescales the spoofed distances.
        radar_position: nominal eavesdropper location; defaults to the
            panel's standard wall-deployment assumption.
        command_rate: MCU command updates per second. Tens of milliseconds
            of control granularity suffice (Sec. 5.2).
        min_distance_offset: smallest spoofable extra distance, meters.
            Switching near DC would be removed as a static reflection, and
            small offsets put the -1 mirror line inside the radar's visible
            range (it sits at ``path_to_antenna - offset``), so ghosts must
            sit at least this far beyond the panel.
        frame_coherent_rate: when set, switching frequencies are rounded to
            multiples of this rate (the radar's frame rate) so the switching
            oscillator phase realigns every frame — required for coherent
            phase observables like spoofed breathing. The rounding error in
            distance is sub-millimeter for typical slopes.
        rcs_variation: relative std-dev of the per-command amplitude jitter
            mimicking human RCS fluctuation (Sec. 8's future-work item).
            0 disables mimicry (constant reflected power).
    """

    def __init__(self, panel: ReflectorPanel, chirp: ChirpConfig, *,
                 radar_position: np.ndarray | None = None,
                 command_rate: float = 10.0,
                 min_distance_offset: float = 0.8,
                 frame_coherent_rate: float | None = None,
                 rcs_variation: float = 0.0) -> None:
        if command_rate <= 0:
            raise ReflectorError("command_rate must be positive")
        if min_distance_offset <= 0:
            raise ReflectorError("min_distance_offset must be positive")
        if frame_coherent_rate is not None and frame_coherent_rate <= 0:
            raise ReflectorError("frame_coherent_rate must be positive")
        if not 0 <= rcs_variation < 1:
            raise ReflectorError("rcs_variation must be in [0, 1)")
        self.rcs_variation = rcs_variation
        self.panel = panel
        self.chirp = chirp
        if radar_position is None:
            radar_position = panel.default_radar_position()
        self.radar_position = np.asarray(radar_position, dtype=float)
        self.command_rate = float(command_rate)
        self.min_distance_offset = float(min_distance_offset)
        self.frame_coherent_rate = frame_coherent_rate

    @property
    def command_interval(self) -> float:
        return 1.0 / self.command_rate

    def _switch_frequency_for(self, ghost: np.ndarray, antenna_index: int) -> float:
        antenna = self.panel.antenna_position(antenna_index)
        path_to_antenna = float(np.linalg.norm(antenna - self.radar_position))
        ghost_range = float(np.linalg.norm(ghost - self.radar_position))
        offset = ghost_range - path_to_antenna
        if offset < self.min_distance_offset:
            raise ReflectorError(
                f"ghost at {tuple(np.round(ghost, 2))} is only {offset:.2f} m beyond "
                f"the panel; minimum spoofable offset is {self.min_distance_offset} m"
            )
        frequency = float(self.chirp.switch_frequency_for_offset(offset))
        if self.frame_coherent_rate is not None:
            frequency = round(frequency / self.frame_coherent_rate) * self.frame_coherent_rate
        return frequency

    def command_for_point(self, ghost: np.ndarray, time: float, *,
                          phase_shift: float = 0.0,
                          amplitude_scale: float = 1.0) -> SpoofCommand:
        """Compile a single ghost position into one command."""
        ghost = np.asarray(ghost, dtype=float)
        rel = ghost - self.radar_position
        bearing = float(np.arctan2(rel[1], rel[0]))
        antenna_index = self.panel.nearest_antenna(bearing, self.radar_position)
        frequency = self._switch_frequency_for(ghost, antenna_index)
        return SpoofCommand(
            time=time,
            antenna_index=antenna_index,
            switch_frequency=frequency,
            phase_shift=phase_shift,
            ghost_position=(float(ghost[0]), float(ghost[1])),
            amplitude_scale=amplitude_scale,
        )

    def plan_trajectory(self, trajectory: Trajectory, *, start_time: float = 0.0,
                        breathing: BreathingWaveform | None = None,
                        rng: np.random.Generator | None = None) -> SpoofSchedule:
        """Compile a full ghost trajectory (room coordinates) to a schedule.

        Raises :class:`ReflectorError` if any point is unspoofable (too
        close to the panel); use :meth:`place_trajectory` first to position
        a shape-only (e.g. GAN-generated) trajectory into coverage.
        """
        num_commands = max(int(round(trajectory.duration * self.command_rate)), 1)
        times = start_time + np.arange(num_commands + 1) * self.command_interval
        if breathing is not None:
            phases = breathing.phase_waveform(times, rng)
        else:
            phases = np.zeros_like(times)
        if self.rcs_variation > 0:
            jitter_rng = rng if rng is not None else np.random.default_rng(0)
            scales = np.maximum(
                1.0 + self.rcs_variation * jitter_rng.standard_normal(times.size),
                0.1,
            )
        else:
            scales = np.ones_like(times)
        commands = [
            self.command_for_point(
                trajectory.position_at(t - start_time), float(t),
                phase_shift=float(phase), amplitude_scale=float(scale),
            )
            for t, phase, scale in zip(times, phases, scales)
        ]
        return SpoofSchedule(commands, command_interval=self.command_interval)

    def plan_static_ghost(self, position: np.ndarray, duration: float, *,
                          start_time: float = 0.0,
                          breathing: BreathingWaveform | None = None,
                          rng: np.random.Generator | None = None) -> SpoofSchedule:
        """Schedule a stationary ghost (e.g. a sleeping, breathing phantom)."""
        if duration <= 0:
            raise ReflectorError("duration must be positive")
        position = np.asarray(position, dtype=float)
        points = np.vstack([position, position])
        trajectory = Trajectory(points, dt=duration)
        return self.plan_trajectory(trajectory, start_time=start_time,
                                    breathing=breathing, rng=rng)

    def place_trajectory(self, trajectory: Trajectory, *,
                         center_range: float | None = None) -> Trajectory:
        """Translate a shape-only trajectory into the panel's coverage.

        The GAN produces trajectory *shapes* around the origin; this places
        the shape so its centroid sits ``center_range`` meters from the
        nominal radar along the panel normal (default: far enough that every
        point clears the minimum offset), preserving the shape exactly.
        """
        centered = trajectory.centered()
        radii = np.linalg.norm(centered.points, axis=1)
        clearance = float(radii.max()) + self.min_distance_offset + 0.5
        panel_range = float(np.linalg.norm(self.panel.center - self.radar_position))
        minimum_range = panel_range + clearance
        if center_range is None:
            center_range = minimum_range
        elif center_range < minimum_range:
            raise ReflectorError(
                f"center_range {center_range:.2f} m leaves points unspoofable; "
                f"need at least {minimum_range:.2f} m"
            )
        center = self.radar_position + center_range * self.panel.normal_direction
        return centered.translated(center)
