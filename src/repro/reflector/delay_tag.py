"""Delay-line spoofer: RF-Protect for pulsed radars (Sec. 13).

Against a pulsed radar, distance must be spoofed with *true* delay —
Sec. 13 proposes "adding a set of delay lines and switching between them".
This tag carries a bank of discrete delay lines behind the same antenna
panel: antenna choice sets the apparent direction exactly as in the FMCW
design, the selected line sets the apparent extra distance (quantized to
the line spacing).

The same tag also works against FMCW radars (a true delay shifts the beat
frequency identically), making it the modulation-agnostic variant of the
defense — at the cost of bulkier hardware, which is why the paper's
primary design prefers kHz switching.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import constants
from repro.errors import ReflectorError
from repro.radar.antenna import UniformLinearArray
from repro.radar.channel import ChannelModel
from repro.radar.frontend import PathComponent
from repro.reflector.hardware import AntennaSwitchModel, LnaModel
from repro.reflector.panel import ReflectorPanel
from repro.types import Trajectory

__all__ = ["DelayLineCommand", "DelayLineSchedule", "DelayLineTag"]

_MIN_ANGLE = 1e-3


@dataclasses.dataclass(frozen=True)
class DelayLineCommand:
    """One interval of the delay-line MCU schedule."""

    time: float
    antenna_index: int
    line_index: int
    ghost_position: tuple[float, float]


class DelayLineSchedule:
    """Time-ordered delay-line commands for one ghost."""

    def __init__(self, commands: list[DelayLineCommand], *,
                 command_interval: float) -> None:
        if not commands:
            raise ReflectorError("a schedule needs at least one command")
        if command_interval <= 0:
            raise ReflectorError("command interval must be positive")
        self.commands = sorted(commands, key=lambda c: c.time)
        self.command_interval = float(command_interval)

    def __len__(self) -> int:
        return len(self.commands)

    @property
    def start_time(self) -> float:
        return self.commands[0].time

    @property
    def end_time(self) -> float:
        return self.commands[-1].time + self.command_interval

    def command_at(self, t: float) -> DelayLineCommand | None:
        if t < self.start_time or t >= self.end_time:
            return None
        times = [c.time for c in self.commands]
        index = int(np.searchsorted(times, t, side="right")) - 1
        return self.commands[max(index, 0)]

    def intended_trajectory(self) -> Trajectory:
        points = np.array([c.ghost_position for c in self.commands])
        if points.shape[0] == 1:
            points = np.vstack([points, points])
        return Trajectory(points, dt=self.command_interval)


class DelayLineTag:
    """A switched-antenna, switched-delay-line reflector.

    Args:
        panel: the antenna panel (shared with the FMCW design).
        num_lines: number of selectable delay lines.
        line_spacing_m: apparent-distance step per line, meters. The bank
            spans ``num_lines * line_spacing_m`` of spoofable extra range.
        radar_position: nominal eavesdropper position (defaults to the
            panel's wall-deployment assumption, as in the FMCW controller).
        command_rate: MCU updates per second.
        lna / antenna_switch: amplification chain models.
        base_rcs: per-antenna RCS before amplification.
        phase_dither: per-frame random carrier-phase modulation. A
            quantized delay-line ghost is piecewise-static between line
            switches, so frame differencing would cancel it; dithering the
            phase (a cheap extra phase-shifter stage, standing in for the
            micro-motion every real target has) keeps the ghost visible —
            the role the switching-oscillator phase plays implicitly in the
            FMCW design.
    """

    def __init__(self, panel: ReflectorPanel, *, num_lines: int = 32,
                 line_spacing_m: float = 0.15,
                 radar_position: np.ndarray | None = None,
                 command_rate: float = 10.0,
                 lna: LnaModel | None = None,
                 antenna_switch: AntennaSwitchModel | None = None,
                 base_rcs: float = 0.01,
                 phase_dither: bool = True) -> None:
        if num_lines < 1:
            raise ReflectorError("need at least one delay line")
        if line_spacing_m <= 0:
            raise ReflectorError("line spacing must be positive")
        if command_rate <= 0:
            raise ReflectorError("command_rate must be positive")
        if base_rcs <= 0:
            raise ReflectorError("base_rcs must be positive")
        self.panel = panel
        self.num_lines = num_lines
        self.line_spacing_m = float(line_spacing_m)
        if radar_position is None:
            radar_position = panel.default_radar_position()
        self.radar_position = np.asarray(radar_position, dtype=float)
        self.command_rate = float(command_rate)
        self.lna = lna if lna is not None else LnaModel()
        self.antenna_switch = (antenna_switch if antenna_switch is not None
                               else AntennaSwitchModel())
        if self.antenna_switch.num_ports < panel.num_antennas:
            raise ReflectorError("antenna switch too small for the panel")
        self.base_rcs = base_rcs
        self.phase_dither = phase_dither
        self.schedules: list[DelayLineSchedule] = []

    @property
    def effective_rcs(self) -> float:
        chain = (self.antenna_switch.through_amplitude
                 * self.lna.amplitude_gain)
        return self.base_rcs * chain ** 2

    @property
    def max_offset_m(self) -> float:
        """Largest spoofable extra distance."""
        return self.num_lines * self.line_spacing_m

    def line_delay(self, line_index: int) -> float:
        """Round-trip delay (seconds) of line ``line_index`` (1-based step)."""
        if not 0 <= line_index < self.num_lines:
            raise ReflectorError(
                f"line index {line_index} outside bank of {self.num_lines}"
            )
        extra_distance = (line_index + 1) * self.line_spacing_m
        return 2.0 * extra_distance / constants.SPEED_OF_LIGHT

    def plan_trajectory(self, trajectory: Trajectory, *,
                        start_time: float = 0.0) -> DelayLineSchedule:
        """Compile a ghost trajectory (room coordinates) to line commands."""
        command_interval = 1.0 / self.command_rate
        num_commands = max(int(round(trajectory.duration * self.command_rate)), 1)
        times = start_time + np.arange(num_commands + 1) * command_interval
        commands = []
        for t in times:
            ghost = trajectory.position_at(float(t) - start_time)
            rel = ghost - self.radar_position
            bearing = float(np.arctan2(rel[1], rel[0]))
            antenna_index = self.panel.nearest_antenna(bearing,
                                                       self.radar_position)
            antenna = self.panel.antenna_position(antenna_index)
            path = float(np.linalg.norm(antenna - self.radar_position))
            offset = float(np.linalg.norm(rel)) - path
            line_index = int(round(offset / self.line_spacing_m)) - 1
            if not 0 <= line_index < self.num_lines:
                raise ReflectorError(
                    f"ghost offset {offset:.2f} m outside the delay bank "
                    f"(0.15-{self.max_offset_m:.2f} m)"
                )
            commands.append(DelayLineCommand(
                time=float(t), antenna_index=antenna_index,
                line_index=line_index,
                ghost_position=(float(ghost[0]), float(ghost[1])),
            ))
        return DelayLineSchedule(commands, command_interval=command_interval)

    def deploy(self, schedule: DelayLineSchedule) -> int:
        self.schedules.append(schedule)
        return len(self.schedules) - 1

    def path_components(self, t: float, array: UniformLinearArray,
                        channel: ChannelModel,
                        rng: np.random.Generator) -> list[PathComponent]:
        """Scene-entity protocol: delayed echoes from the panel antennas."""
        components: list[PathComponent] = []
        for schedule in self.schedules:
            command = schedule.command_at(t)
            if command is None:
                continue
            antenna = self.panel.antenna_position(
                self.antenna_switch.check_port(command.antenna_index)
            )
            distance, angle = array.polar_of(antenna)
            angle = float(np.clip(angle, _MIN_ANGLE, np.pi - _MIN_ANGLE))
            amplitude = float(channel.path_amplitude(distance,
                                                     self.effective_rcs))
            dither = (float(rng.uniform(0.0, 2.0 * np.pi))
                      if self.phase_dither else 0.0)
            components.append(PathComponent(
                distance=distance,
                angle=angle,
                amplitude=amplitude,
                extra_delay_s=self.line_delay(command.line_index),
                phase_offset=dither,
            ))
        return components
