"""Component models for the RF-Protect reflector hardware (Fig. 5).

The tag chain is: panel antenna -> SP8T antenna switch -> on/off frequency
modulation switch -> phase shifter -> LNA -> TX antenna. Each stage is
modelled at the level that matters to the radar: insertion losses scale the
reflected amplitude, the on/off switch produces its square-wave harmonic
series, and the phase shifter quantizes to its bit resolution.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ReflectorError

__all__ = ["AntennaSwitchModel", "Harmonic", "LnaModel", "PhaseShifterModel", "SwitchModel"]


def _db_to_linear_amplitude(db: float) -> float:
    return 10.0 ** (db / 20.0)


@dataclasses.dataclass(frozen=True)
class Harmonic:
    """One spectral line produced by the modulation switch.

    Attributes:
        order: harmonic number ``n``; the line sits at ``n * f_switch``.
        amplitude: relative amplitude (the carrier's is 1 before switching).
        phase: phase of the line relative to the switching waveform.
    """

    order: int
    amplitude: float
    phase: float


@dataclasses.dataclass(frozen=True)
class SwitchModel:
    """The on/off frequency-modulation switch (Sec. 5.1).

    Multiplying the through signal by a 50%-duty 0/1 square wave at
    ``f_switch`` is equivalent to mixing with the wave's Fourier series:
    a DC term of 1/2 (the static reflection, later removed by background
    subtraction) and odd harmonics at ``±n * f_switch`` with amplitude
    ``1 / (pi * n)``. The ``+1`` line is the intended ghost; the rest are
    the side-effects Sec. 5.1 discusses.

    Attributes:
        insertion_loss_db: loss through the switch, dB (negative gain).
        max_harmonic: highest harmonic order modelled (odd orders only).
        include_negative: include the ``-n`` mirror lines ("behind the
            radar"); disable to model ideal single-sideband modulation as in
            the paper's SSB remark.
        duty_cycle: fraction of the period the switch is closed.
    """

    insertion_loss_db: float = 1.0
    max_harmonic: int = 5
    include_negative: bool = True
    duty_cycle: float = 0.5

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0:
            raise ReflectorError("insertion loss must be >= 0 dB")
        if self.max_harmonic < 1:
            raise ReflectorError("max_harmonic must be >= 1")
        if not 0 < self.duty_cycle < 1:
            raise ReflectorError("duty_cycle must be in (0, 1)")

    @property
    def through_amplitude(self) -> float:
        """Amplitude scale of the signal passing the (closed) switch."""
        return _db_to_linear_amplitude(-self.insertion_loss_db)

    def harmonics(self) -> list[Harmonic]:
        """Spectral lines of the switching waveform, DC included.

        For duty cycle ``d`` the Fourier coefficient of order ``n`` is
        ``sin(pi n d) / (pi n)`` (DC term ``d``), so a 50% duty cycle keeps
        only odd orders — matching Sec. 5.1's ``-f, 2f, 3f...`` discussion
        with even lines vanishing.
        """
        loss = self.through_amplitude
        lines = [Harmonic(0, self.duty_cycle * loss, 0.0)]
        orders = range(1, self.max_harmonic + 1)
        for n in orders:
            coefficient = np.sin(np.pi * n * self.duty_cycle) / (np.pi * n)
            if abs(coefficient) < 1e-12:
                continue
            magnitude = abs(coefficient) * loss
            # exp(j n w t) coefficient of a real square wave: c_n = |c|e^{j phi}
            phase = 0.0 if coefficient > 0 else np.pi
            lines.append(Harmonic(n, magnitude, phase))
            if self.include_negative:
                lines.append(Harmonic(-n, magnitude, -phase))
        return lines


@dataclasses.dataclass(frozen=True)
class PhaseShifterModel:
    """Analog phase shifter used for breathing spoofing (Sec. 11.4).

    Attributes:
        bits: control resolution; the commanded phase is quantized to
            ``2 pi / 2**bits`` steps.
        insertion_loss_db: loss through the shifter, dB.
    """

    bits: int = 6
    insertion_loss_db: float = 1.5

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ReflectorError("phase shifter needs at least 1 bit")
        if self.insertion_loss_db < 0:
            raise ReflectorError("insertion loss must be >= 0 dB")

    @property
    def through_amplitude(self) -> float:
        return _db_to_linear_amplitude(-self.insertion_loss_db)

    @property
    def step(self) -> float:
        """Smallest realizable phase step, radians."""
        return 2.0 * np.pi / (2 ** self.bits)

    def quantize(self, phase: float | np.ndarray) -> float | np.ndarray:
        """Round a commanded phase to the nearest realizable setting."""
        return np.round(np.asarray(phase, dtype=float) / self.step) * self.step


@dataclasses.dataclass(frozen=True)
class LnaModel:
    """Low-noise amplifier boosting the re-radiated signal.

    Attributes:
        gain_db: amplitude gain in dB. The paper tunes this so the phantom's
            reflected power matches a human's (Fig. 10). Note the tag's path
            loss is set by the *physical* antenna distance (~1.2 m from the
            radar), not the ghost's apparent distance, so a modest gain
            already makes the fundamental line as bright as a mid-room human
            while keeping the 3rd harmonic "much weaker than human motion"
            (Sec. 5.1). The 12 dB default realizes that balance for the
            default channel; see ``RfProtectTag.effective_rcs``.
    """

    gain_db: float = 12.0

    def __post_init__(self) -> None:
        if self.gain_db < 0:
            raise ReflectorError("LNA gain must be >= 0 dB")

    @property
    def amplitude_gain(self) -> float:
        return _db_to_linear_amplitude(self.gain_db)


@dataclasses.dataclass(frozen=True)
class AntennaSwitchModel:
    """SP8T antenna-selection switch (EV1HMC345ALP3 in the paper).

    Attributes:
        num_ports: selectable antenna ports.
        insertion_loss_db: loss through the switch, dB.
    """

    num_ports: int = 8
    insertion_loss_db: float = 1.0

    def __post_init__(self) -> None:
        if self.num_ports < 1:
            raise ReflectorError("antenna switch needs at least one port")
        if self.insertion_loss_db < 0:
            raise ReflectorError("insertion loss must be >= 0 dB")

    @property
    def through_amplitude(self) -> float:
        return _db_to_linear_amplitude(-self.insertion_loss_db)

    def check_port(self, index: int) -> int:
        """Validate an antenna port selection; returns the index."""
        if not 0 <= index < self.num_ports:
            raise ReflectorError(
                f"antenna port {index} outside SP{self.num_ports}T switch"
            )
        return index
