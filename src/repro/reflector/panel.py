"""Geometry of the switched antenna panel (Sec. 5.2, Fig. 4).

The panel is a line of ``K_R`` directional antennas mounted along a wall.
Each antenna is a *physical* reflector, so the radar genuinely receives the
spoofed signal from that antenna's direction — the property that makes the
defense work against both analog and digital beamforming. Selecting an
antenna selects a discrete ray from the radar into the room; the switching
frequency then places the ghost at a chosen distance along that ray.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.errors import ReflectorError
from repro.geometry import unit_vector, wrap_angle

__all__ = ["ReflectorPanel"]


class ReflectorPanel:
    """A linear panel of selectable reflector antennas.

    Args:
        center: (x, y) of the panel midpoint in room coordinates, meters.
        num_antennas: antennas on the panel (paper: 6).
        spacing: antenna separation in meters (paper: ~0.20).
        wall_angle: direction of the panel line, radians from +x.
        normal_angle: direction the panel faces (into the room); must not be
            parallel to the wall. Defaults to ``wall_angle + pi/2``.
    """

    def __init__(self, center: tuple[float, float] | np.ndarray, *,
                 num_antennas: int = constants.PANEL_NUM_ANTENNAS,
                 spacing: float = constants.PANEL_ANTENNA_SPACING_M,
                 wall_angle: float = 0.0,
                 normal_angle: float | None = None) -> None:
        if num_antennas < 1:
            raise ReflectorError("panel needs at least one antenna")
        if spacing <= 0:
            raise ReflectorError("antenna spacing must be positive")
        self.center = np.asarray(center, dtype=float)
        if self.center.shape != (2,):
            raise ReflectorError("panel center must be (x, y)")
        self.num_antennas = num_antennas
        self.spacing = spacing
        self.wall_angle = float(wall_angle)
        if normal_angle is None:
            normal_angle = wall_angle + np.pi / 2.0
        self.normal_angle = float(normal_angle)
        alignment = abs(np.cos(self.normal_angle - self.wall_angle))
        if alignment > 0.999:
            raise ReflectorError("panel normal must not lie along the wall")

    @property
    def wall_direction(self) -> np.ndarray:
        """Unit vector along the panel line."""
        return unit_vector(self.wall_angle)

    @property
    def normal_direction(self) -> np.ndarray:
        """Unit vector pointing into the room."""
        return unit_vector(self.normal_angle)

    @property
    def span(self) -> float:
        """End-to-end extent of the antenna line, meters."""
        return (self.num_antennas - 1) * self.spacing

    def antenna_positions(self) -> np.ndarray:
        """Antenna (x, y) positions, shape ``(K_R, 2)``, centered on the panel."""
        offsets = np.arange(self.num_antennas) - (self.num_antennas - 1) / 2.0
        return self.center + np.outer(offsets * self.spacing, self.wall_direction)

    def antenna_position(self, index: int) -> np.ndarray:
        """Position of one antenna; raises for out-of-range indices."""
        if not 0 <= index < self.num_antennas:
            raise ReflectorError(
                f"antenna index {index} outside panel of {self.num_antennas}"
            )
        return self.antenna_positions()[index]

    def default_radar_position(self,
                               distance: float = constants.RADAR_TO_REFLECTOR_DISTANCE_M
                               ) -> np.ndarray:
        """The tag's nominal assumption of where the eavesdropper sits.

        RF-Protect is deployed against a vulnerable wall with the radar on
        the other side (Sec. 4): directly behind the panel center at the
        paper's ~1.2 m separation. The tag never learns the true radar
        position; a wrong assumption only rotates/scales the observed ghost
        trajectory (Sec. 5.3), which the evaluation tolerates by design.
        """
        if distance <= 0:
            raise ReflectorError("radar standoff distance must be positive")
        return self.center - distance * self.normal_direction

    def antenna_angles(self, radar_position: np.ndarray | None = None) -> np.ndarray:
        """Discrete spoofable angles, radians, one per antenna.

        The angle of antenna ``k`` is the bearing of the ray from
        ``radar_position`` (nominal if omitted) through the antenna —
        the only directions the panel can make reflections appear from.
        """
        if radar_position is None:
            radar_position = self.default_radar_position()
        radar = np.asarray(radar_position, dtype=float)
        rel = self.antenna_positions() - radar
        return np.arctan2(rel[:, 1], rel[:, 0])

    def nearest_antenna(self, bearing: float,
                        radar_position: np.ndarray | None = None) -> int:
        """Antenna whose discrete angle is closest to ``bearing``."""
        angles = self.antenna_angles(radar_position)
        return int(np.argmin(np.abs(wrap_angle(angles - bearing))))

    def angular_coverage(self,
                         radar_position: np.ndarray | None = None) -> tuple[float, float]:
        """(min, max) spoofable bearing from the (nominal) radar, radians."""
        angles = self.antenna_angles(radar_position)
        return float(angles.min()), float(angles.max())
