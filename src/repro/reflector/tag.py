"""`RfProtectTag`: the deployed reflector as a radar scene entity.

The tag executes one :class:`~repro.reflector.controller.SpoofSchedule` per
ghost. At each radar frame it looks up the active command of every schedule
and emits the spectral lines the switched reflection chain produces: the
static carrier at the selected antenna's true position (removed by the
radar's background subtraction, like any piece of furniture) plus the
square-wave harmonics whose ``+1`` line is the moving ghost (Sec. 5.1).

Because the tag re-radiates the *radar's own* signal, it transmits nothing
when the radar is silent — the property that defeats the turn-the-radar-off
detection of prior spoofing attacks (Sec. 12).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ReflectorError
from repro.radar.antenna import UniformLinearArray
from repro.radar.channel import ChannelModel
from repro.radar.frontend import PathComponent
from repro.reflector.controller import SpoofSchedule
from repro.reflector.hardware import (
    AntennaSwitchModel,
    LnaModel,
    PhaseShifterModel,
    SwitchModel,
)
from repro.reflector.panel import ReflectorPanel
from repro.types import Trajectory

__all__ = ["GhostReport", "RfProtectTag"]

_MIN_ANGLE = 1e-3


@dataclasses.dataclass(frozen=True)
class GhostReport:
    """Side-channel disclosure of one injected ghost (Sec. 11.3).

    A user-authorized sensor receives these reports and can subtract the
    fake trajectories from its tracking output; an eavesdropper never sees
    them because they are conveyed out of band, not over RF.
    """

    ghost_id: int
    trajectory: Trajectory
    start_time: float


class RfProtectTag:
    """The RF-Protect reflector deployed in a scene.

    Args:
        panel: antenna panel geometry.
        switch: on/off modulation switch model.
        phase_shifter: breathing phase shifter model.
        antenna_switch: SP8T antenna selector model.
        lna: amplifier model; with the default channel this makes the
            phantom's received power comparable to a human reflection,
            matching Fig. 10's observation.
        base_rcs: radar cross-section of one panel antenna before
            amplification.
    """

    def __init__(self, panel: ReflectorPanel, *,
                 switch: SwitchModel | None = None,
                 phase_shifter: PhaseShifterModel | None = None,
                 antenna_switch: AntennaSwitchModel | None = None,
                 lna: LnaModel | None = None,
                 base_rcs: float = 0.01) -> None:
        if base_rcs <= 0:
            raise ReflectorError("base_rcs must be positive")
        self.panel = panel
        self.switch = switch if switch is not None else SwitchModel()
        self.phase_shifter = (phase_shifter if phase_shifter is not None
                              else PhaseShifterModel())
        self.antenna_switch = (antenna_switch if antenna_switch is not None
                               else AntennaSwitchModel())
        if self.antenna_switch.num_ports < panel.num_antennas:
            raise ReflectorError(
                f"panel has {panel.num_antennas} antennas but the switch "
                f"only has {self.antenna_switch.num_ports} ports"
            )
        self.lna = lna if lna is not None else LnaModel()
        self.base_rcs = base_rcs
        self.schedules: list[SpoofSchedule] = []

    @property
    def effective_rcs(self) -> float:
        """RCS the radar equation sees after the full amplification chain."""
        chain_amplitude = (self.antenna_switch.through_amplitude
                           * self.switch.through_amplitude
                           * self.phase_shifter.through_amplitude
                           * self.lna.amplitude_gain)
        return self.base_rcs * chain_amplitude ** 2

    def deploy(self, schedule: SpoofSchedule) -> int:
        """Start executing a ghost schedule; returns its ghost id."""
        self.schedules.append(schedule)
        return len(self.schedules) - 1

    def clear(self) -> None:
        """Stop all ghosts."""
        self.schedules.clear()

    def ghost_reports(self) -> list[GhostReport]:
        """Side-channel reports for all deployed ghosts (legitimate sensing)."""
        return [
            GhostReport(ghost_id=i,
                        trajectory=schedule.intended_trajectory(),
                        start_time=schedule.start_time)
            for i, schedule in enumerate(self.schedules)
        ]

    def path_components(self, t: float, array: UniformLinearArray,
                        channel: ChannelModel,
                        rng: np.random.Generator) -> list[PathComponent]:
        """Spectral lines the tag contributes to the frame at time ``t``.

        Implements the :class:`~repro.radar.scene.SceneEntity` protocol, so
        a tag is added to a scene exactly like a human — the radar frontend
        cannot tell the difference, by construction.
        """
        components: list[PathComponent] = []
        for schedule in self.schedules:
            command = schedule.command_at(t)
            if command is None:
                continue
            antenna = self.panel.antenna_position(
                self.antenna_switch.check_port(command.antenna_index)
            )
            distance, angle = array.polar_of(antenna)
            angle = float(np.clip(angle, _MIN_ANGLE, np.pi - _MIN_ANGLE))
            amplitude = float(channel.path_amplitude(distance, self.effective_rcs))
            amplitude *= command.amplitude_scale
            commanded_phase = float(self.phase_shifter.quantize(command.phase_shift))
            # The switching oscillator runs continuously; its phase at frame
            # time t is 2*pi*f*t. Frame-coherent frequencies (multiples of
            # the frame rate) make this wrap to the same value every frame,
            # which is what keeps spoofed breathing readable in phase.
            switching_phase = 2.0 * np.pi * command.switch_frequency * t
            for harmonic in self.switch.harmonics():
                line_amplitude = amplitude * harmonic.amplitude
                line_offset = harmonic.order * command.switch_frequency
                line_phase = (harmonic.order * switching_phase
                              + harmonic.phase + commanded_phase)
                components.append(
                    PathComponent(
                        distance=distance,
                        angle=angle,
                        amplitude=line_amplitude,
                        beat_offset_hz=line_offset,
                        phase_offset=line_phase,
                    )
                )
                if abs(harmonic.order) != 1:
                    continue
                # The tag's re-radiated signal bounces off the room like any
                # other reflection, so the environment's dynamic multipath
                # dresses the ghost's main lines too — Fig. 10b notes these
                # "secondary reflections around the phantom".
                for bounce_distance, bounce_angle, bounce_amp in (
                        channel.sample_multipath(distance, angle,
                                                 line_amplitude, rng)):
                    components.append(
                        PathComponent(
                            distance=bounce_distance,
                            angle=bounce_angle,
                            amplitude=bounce_amp,
                            beat_offset_hz=line_offset,
                            phase_offset=(line_phase
                                          + float(rng.uniform(0.0, 2.0 * np.pi))),
                        )
                    )
        return components
