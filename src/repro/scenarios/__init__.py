"""Declarative scenario registry: one spec layer for every deployment.

The package splits scene construction into three layers:

- **spec** (:mod:`repro.scenarios.spec`): typed, frozen data describing a
  deployment — floorplan and clutter, radar placements (multi-radar
  included), per-human activity programs, reflector strategy, breathing
  and occlusion configuration, seed policy, traffic weight.
- **registry** (:mod:`repro.scenarios.registry`): named specs; the single
  dispatch point every consumer resolves scenarios through.
- **builders** (:mod:`repro.scenarios.builders`): the only code that turns
  specs into :class:`Environment`/:class:`~repro.radar.Scene` objects
  (rflint RFP016 enforces this).

One registered spec therefore drives the experiments runner
(``--scenario``), the serve load generator (``rfprotect serve --mix``),
and the golden range-angle digest suite at once.
"""

from repro.scenarios.builders import (
    REFLECTOR_STRATEGIES,
    BuiltScenario,
    Environment,
    build,
    build_environment,
    register_reflector_strategy,
)
from repro.scenarios.registry import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
    traffic_weights,
)
from repro.scenarios.spec import (
    FloorplanSpec,
    HumanSpec,
    RadarPlacement,
    ReflectorSpec,
    ScenarioSpec,
)
from repro.scenarios.traffic import PlannedRequest, TrafficMix

from repro.scenarios import catalog as _catalog  # noqa: F401  (registers built-ins)

__all__ = [
    "REFLECTOR_STRATEGIES",
    "SCENARIOS",
    "BuiltScenario",
    "Environment",
    "FloorplanSpec",
    "HumanSpec",
    "PlannedRequest",
    "RadarPlacement",
    "ReflectorSpec",
    "ScenarioSpec",
    "TrafficMix",
    "build",
    "build_environment",
    "get_scenario",
    "register_reflector_strategy",
    "register_scenario",
    "scenario_names",
    "traffic_weights",
]
