"""Builders: the only place scenario specs become environments and scenes.

Everything downstream — experiments, the serve demo workload, golden
digests — constructs deployments through :func:`build` (or the
:class:`Environment` helpers it returns). The rflint rule **RFP016**
enforces that: direct ``Scene(...)``/``Environment(...)`` construction in
experiment or serve code is rejected, the same registry-only discipline
RFP009 applies to backend dispatch.

Seeding is worker-count independent: one ``np.random.SeedSequence`` per
built scenario spawns a child stream per human (by index) plus one for
the reflector strategy, so building human 3 alone yields the same
trajectory as building all humans together.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from typing import Any

import numpy as np

from repro import constants
from repro.errors import ConfigurationError, ScenarioError
from repro.geometry import Rectangle
from repro.radar import ChannelModel, FmcwRadar, RadarConfig, Scene
from repro.radar.channel import MultipathSpec
from repro.radar.scene import SceneEntity
from repro.reflector import ReflectorController, ReflectorPanel, RfProtectTag
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import RadarPlacement, ReflectorSpec, ScenarioSpec
from repro.trajectories.synthesis import (
    HumanMotionSimulator,
    synthesize_program,
)
from repro.types import Trajectory

__all__ = [
    "REFLECTOR_STRATEGIES",
    "BuiltScenario",
    "Environment",
    "build",
    "build_environment",
    "register_reflector_strategy",
]


@dataclasses.dataclass(frozen=True)
class Environment:
    """One evaluation deployment: room, radar pose, panel pose, clutter."""

    name: str
    room: Rectangle
    radar_config: RadarConfig
    panel: ReflectorPanel
    multipath: MultipathSpec
    static_clutter: tuple[tuple[float, float, float], ...]
    """Static reflectors as ``(x, y, rcs)`` triples."""

    def make_channel(self) -> ChannelModel:
        """Channel with this environment's multipath statistics."""
        return ChannelModel(multipath=self.multipath)

    def make_scene(self, *, include_clutter: bool = True,
                   channel: ChannelModel | None = None) -> Scene:
        """Fresh scene with the environment's static clutter.

        ``channel`` overrides the environment's own multipath channel —
        e.g. a clean ``ChannelModel()`` to isolate geometric effects from
        environment noise.
        """
        scene = Scene(self.room,
                      channel=self.make_channel() if channel is None
                      else channel)
        if include_clutter:
            for x, y, rcs in self.static_clutter:
                scene.add_static((x, y), rcs=rcs)
        return scene

    def make_radar(self) -> FmcwRadar:
        """The eavesdropper (or legitimate) radar for this deployment."""
        return FmcwRadar(self.radar_config)

    def make_tag(self, **tag_kwargs: Any) -> RfProtectTag:
        """A fresh RF-Protect tag on this environment's panel."""
        return RfProtectTag(self.panel, **tag_kwargs)

    def make_controller(self, *, frame_coherent: bool = False,
                        **controller_kwargs: Any) -> ReflectorController:
        """Controller calibrated for this environment's chirp.

        The controller uses the panel's *nominal* radar assumption, not the
        true radar position — the tag never learns the latter (Sec. 5.2).
        """
        frame_rate = (self.radar_config.frame_rate if frame_coherent else None)
        return ReflectorController(
            self.panel, self.radar_config.chirp,
            frame_coherent_rate=frame_rate,
            **controller_kwargs,
        )

    @property
    def radar_position(self) -> np.ndarray:
        return np.asarray(self.radar_config.position, dtype=float)


#: Per-wall pose: (axis_angle, facing_angle, inward normal direction).
_WALL_GEOMETRY: dict[str, tuple[float, float, tuple[float, float]]] = {
    "bottom": (0.0, np.pi / 2.0, (0.0, 1.0)),
    "top": (0.0, -np.pi / 2.0, (0.0, -1.0)),
    "left": (np.pi / 2.0, 0.0, (1.0, 0.0)),
    "right": (np.pi / 2.0, np.pi, (-1.0, 0.0)),
}


def _radar_pose(room: Rectangle, placement: RadarPlacement,
                ) -> tuple[tuple[float, float], float, float,
                           tuple[float, float]]:
    """(position, axis_angle, facing_angle, inward normal) of a placement."""
    axis_angle, facing_angle, normal = _WALL_GEOMETRY[placement.wall]
    fraction, inset = placement.fraction, placement.inset
    if placement.wall in ("bottom", "top"):
        x = room.x_min + fraction * room.width
        y = (room.y_min + inset if placement.wall == "bottom"
             else room.y_max - inset)
    else:
        x = (room.x_min + inset if placement.wall == "left"
             else room.x_max - inset)
        y = room.y_min + fraction * room.depth
    return (x, y), axis_angle, facing_angle, normal


def build_environment(spec: ScenarioSpec) -> Environment:
    """The spec's :class:`Environment`: room, primary radar, panel, clutter."""
    width, depth = spec.floorplan.size
    if width <= 0 or depth <= 0:
        raise ConfigurationError("environment size must be positive")
    room = Rectangle.from_size(width, depth)
    position, axis_angle, facing_angle, normal = _radar_pose(room,
                                                             spec.radars[0])
    radar_config = RadarConfig(position=position, axis_angle=axis_angle,
                               facing_angle=facing_angle)
    distance = constants.RADAR_TO_REFLECTOR_DISTANCE_M
    panel = ReflectorPanel(
        (position[0] + normal[0] * distance,
         position[1] + normal[1] * distance),
        wall_angle=axis_angle, normal_angle=facing_angle,
    )
    return Environment(name=spec.name, room=room, radar_config=radar_config,
                       panel=panel, multipath=spec.multipath,
                       static_clutter=spec.floorplan.clutter)


def _extra_radar_config(environment: Environment,
                        placement: RadarPlacement) -> RadarConfig:
    """A secondary radar sharing the primary's chirp and noise floor."""
    position, axis_angle, facing_angle, _ = _radar_pose(environment.room,
                                                        placement)
    return RadarConfig(
        chirp=environment.radar_config.chirp,
        position=position,
        axis_angle=axis_angle,
        facing_angle=facing_angle,
        frame_rate=environment.radar_config.frame_rate,
        noise_std=environment.radar_config.noise_std,
    )


ReflectorStrategy = Callable[
    [ReflectorSpec, ScenarioSpec, Environment, np.random.Generator],
    SceneEntity | None,
]

#: Registered reflector strategies, keyed by ``ReflectorSpec.kind``. The
#: single dispatch point for defense deployment (RFP009-style discipline).
REFLECTOR_STRATEGIES: dict[str, ReflectorStrategy] = {}


def register_reflector_strategy(kind: str,
                                ) -> Callable[[ReflectorStrategy],
                                              ReflectorStrategy]:
    """Decorator registering a strategy under ``kind`` (duplicates rejected)."""
    def wrap(strategy: ReflectorStrategy) -> ReflectorStrategy:
        if kind in REFLECTOR_STRATEGIES:
            raise ScenarioError(
                f"duplicate reflector strategy registration: {kind}"
            )
        REFLECTOR_STRATEGIES[kind] = strategy
        return strategy
    return wrap


@register_reflector_strategy("none")
def _no_reflector(reflector: ReflectorSpec, spec: ScenarioSpec,
                  environment: Environment,
                  rng: np.random.Generator) -> SceneEntity | None:
    return None


@register_reflector_strategy("static-ghost")
def _static_ghost(reflector: ReflectorSpec, spec: ScenarioSpec,
                  environment: Environment,
                  rng: np.random.Generator) -> SceneEntity | None:
    position = environment.panel.center + np.asarray(reflector.ghost_offset,
                                                     dtype=float)
    controller = environment.make_controller()
    schedule = controller.plan_static_ghost(position, spec.duration_s,
                                            rng=rng)
    tag = environment.make_tag()
    tag.deploy(schedule)
    return tag


@register_reflector_strategy("walking-ghost")
def _walking_ghost(reflector: ReflectorSpec, spec: ScenarioSpec,
                   environment: Environment,
                   rng: np.random.Generator) -> SceneEntity | None:
    simulator = HumanMotionSimulator(num_points=spec.num_points,
                                     duration=spec.duration_s, rng=rng)
    shape = simulator.sample_trajectory(
        profile_index=reflector.ghost_profile).centered()
    controller = environment.make_controller()
    placed = controller.place_trajectory(shape)
    schedule = controller.plan_trajectory(placed, rng=rng)
    tag = environment.make_tag()
    tag.deploy(schedule)
    return tag


@register_reflector_strategy("breathing-ghost")
def _breathing_ghost(reflector: ReflectorSpec, spec: ScenarioSpec,
                     environment: Environment,
                     rng: np.random.Generator) -> SceneEntity | None:
    from repro.reflector import BreathingWaveform

    position = environment.panel.center + np.asarray(reflector.ghost_offset,
                                                     dtype=float)
    # Frame-coherent switching keeps the ghost's bin phase readable — the
    # vital-sign pipeline reads breathing off the phase (Fig. 14).
    controller = environment.make_controller(frame_coherent=True)
    waveform = BreathingWaveform(
        frequency=reflector.breathing_hz,
        wavelength=environment.radar_config.chirp.wavelength,
    )
    schedule = controller.plan_static_ghost(position, spec.duration_s,
                                            breathing=waveform, rng=rng)
    tag = environment.make_tag()
    tag.deploy(schedule)
    return tag


@dataclasses.dataclass(frozen=True)
class BuiltScenario:
    """A resolved scenario: environment, all radar configs, seeded content.

    Attributes:
        spec: the spec this was built from.
        environment: the primary deployment (room, radar 0, panel).
        radar_configs: every radar, primary first.
        seed: the base seed all content streams spawn from.
    """

    spec: ScenarioSpec
    environment: Environment
    radar_configs: tuple[RadarConfig, ...]
    seed: int

    def make_radars(self) -> tuple[FmcwRadar, ...]:
        """One :class:`FmcwRadar` per placement, primary first."""
        return tuple(FmcwRadar(config) for config in self.radar_configs)

    def _streams(self) -> list[np.random.Generator]:
        """Per-human RNG streams plus one trailing reflector stream.

        Spawned by *index* from one ``SeedSequence``, so each stream is
        independent of how many other humans are built and of any worker
        fan-out ordering.
        """
        children = np.random.SeedSequence(self.seed).spawn(
            len(self.spec.humans) + 1)
        return [np.random.default_rng(child) for child in children]

    def human_trajectories(self) -> tuple[Trajectory, ...]:
        """Each human's synthesized activity-program trace, in spec order."""
        streams = self._streams()
        floorplan = self.spec.floorplan
        return tuple(
            synthesize_program(
                human.program, self.environment.room,
                num_points=self.spec.num_points,
                duration=self.spec.duration_s,
                rng=streams[index], start=human.start,
                margin=floorplan.margin,
            )
            for index, human in enumerate(self.spec.humans)
        )

    def build_scene(self, *, include_clutter: bool = True) -> Scene:
        """The fully populated scene: clutter, humans, reflector, occlusion."""
        scene = self.environment.make_scene(include_clutter=include_clutter)
        scene.occlusion = self.spec.occlusion
        for human, trajectory in zip(self.spec.humans,
                                     self.human_trajectories()):
            kwargs: dict[str, Any] = {"rcs": human.rcs}
            if human.breathing is not None:
                kwargs["breathing"] = human.breathing
            scene.add_human(trajectory, **kwargs)
        strategy = REFLECTOR_STRATEGIES[self.spec.reflector.kind]
        entity = strategy(self.spec.reflector, self.spec, self.environment,
                          self._streams()[-1])
        if entity is not None:
            scene.add(entity)
        return scene


def build(scenario: str | ScenarioSpec, *,
          seed: int | None = None) -> BuiltScenario:
    """Resolve a scenario (by name or spec) into a :class:`BuiltScenario`.

    ``seed`` defaults to the spec's ``default_seed``; the same
    (spec, seed) pair always builds bit-identical content.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    environment = build_environment(spec)
    configs = (environment.radar_config,) + tuple(
        _extra_radar_config(environment, placement)
        for placement in spec.radars[1:]
    )
    return BuiltScenario(
        spec=spec, environment=environment, radar_configs=configs,
        seed=spec.default_seed if seed is None else seed,
    )
