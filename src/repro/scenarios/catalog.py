"""The built-in scenario catalog.

``office`` and ``home`` are the paper's two Fig. 8 deployments — their
specs carry exactly the sizes, clutter and multipath statistics that
``experiments/environments.py`` used to hard-code, so building them is
bit-identical to the original constructors. The rest extend the defense
story along the axes the paper names but never simulates together:
crowds with inter-person occlusion, falls, gestures, breathing phantoms,
dual-radar eavesdroppers, and out-of-paper floorplans.

Every entry here is simultaneously an experiment target
(``rfprotect run fig9 --scenario NAME``), a serve traffic class
(``rfprotect serve --mix``), and a golden-digest regression scene
(``tests/test_golden_scenarios.py``).
"""

from __future__ import annotations

from repro import constants
from repro.radar.channel import MultipathSpec
from repro.radar.scene import BreathingSpec, OcclusionSpec
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import (
    FloorplanSpec,
    HumanSpec,
    RadarPlacement,
    ReflectorSpec,
    ScenarioSpec,
)
from repro.trajectories.synthesis import ActivityProgram, ProgramStep

__all__ = ["OFFICE_MULTIPATH", "HOME_MULTIPATH"]

#: The office's heavy dynamic multipath (metallic cabinets, Sec. 11.1).
OFFICE_MULTIPATH = MultipathSpec(mean_paths=2.2, excess_distance_mean=0.6,
                                 excess_distance_std=0.4,
                                 relative_amplitude=0.38, angle_spread=0.22)

#: The home's milder echo (soft furnishing).
HOME_MULTIPATH = MultipathSpec(mean_paths=0.6, excess_distance_mean=0.5,
                               excess_distance_std=0.3,
                               relative_amplitude=0.15, angle_spread=0.10)

_OFFICE_FLOORPLAN = FloorplanSpec(
    size=constants.OFFICE_SIZE_M,
    clutter=(
        (1.0, 5.8, 6.0),   # metal cabinet row
        (9.0, 5.8, 6.0),   # metal cabinet row
        (2.5, 3.0, 2.0),   # desk cluster
        (7.5, 3.0, 2.0),   # desk cluster
        (5.0, 6.0, 3.0),   # whiteboard wall
    ),
)

_HOME_FLOORPLAN = FloorplanSpec(
    size=constants.HOME_SIZE_M,
    clutter=(
        (3.0, 6.5, 3.0),    # refrigerator
        (12.0, 6.8, 2.0),   # TV wall
        (6.0, 4.0, 1.0),    # sofa
        (10.0, 2.5, 1.0),   # dining table
    ),
)

register_scenario(ScenarioSpec(
    name="office",
    description="the 10.0 x 6.6 m office of Fig. 8b (metallic cabinets)",
    floorplan=_OFFICE_FLOORPLAN,
    multipath=OFFICE_MULTIPATH,
    traffic_weight=2.0,
))

register_scenario(ScenarioSpec(
    name="home",
    description="the 15.24 x 7.62 m home of Fig. 8c (soft furnishing)",
    floorplan=_HOME_FLOORPLAN,
    multipath=HOME_MULTIPATH,
    traffic_weight=2.0,
))

register_scenario(ScenarioSpec(
    name="office-crowd",
    description="three office walkers at mixed gaits, with inter-person "
                "occlusion",
    floorplan=_OFFICE_FLOORPLAN,
    multipath=OFFICE_MULTIPATH,
    humans=(
        HumanSpec(program=ActivityProgram.of("walk")),
        HumanSpec(program=ActivityProgram.of("shuffle", "walk")),
        HumanSpec(program=ActivityProgram.of("stride")),
    ),
    occlusion=OcclusionSpec(),
))

register_scenario(ScenarioSpec(
    name="office-fall",
    description="an office walker who collapses mid-trace (fall detection "
                "workload)",
    floorplan=_OFFICE_FLOORPLAN,
    multipath=OFFICE_MULTIPATH,
    humans=(
        HumanSpec(program=ActivityProgram((
            ProgramStep("walk", 0.6), ProgramStep("fall", 0.4),
        ))),
    ),
))

register_scenario(ScenarioSpec(
    name="home-breathing",
    description="a seated slow-breathing resident plus a breathing phantom "
                "from the tag's phase shifter",
    floorplan=_HOME_FLOORPLAN,
    multipath=HOME_MULTIPATH,
    humans=(
        HumanSpec(program=ActivityProgram.of("sit"),
                  breathing=BreathingSpec(amplitude=0.006, frequency=0.2)),
    ),
    reflector=ReflectorSpec(kind="breathing-ghost", breathing_hz=0.3),
))

register_scenario(ScenarioSpec(
    name="home-gesture",
    description="a mostly seated resident who stands up to gesture",
    floorplan=_HOME_FLOORPLAN,
    multipath=HOME_MULTIPATH,
    humans=(
        HumanSpec(program=ActivityProgram((
            ProgramStep("sit", 0.4), ProgramStep("gesture", 0.3),
            ProgramStep("sit", 0.3),
        ))),
    ),
))

register_scenario(ScenarioSpec(
    name="office-dual-radar",
    description="the Sec. 13 dual-radar eavesdropper against one walker "
                "and one walking ghost",
    floorplan=_OFFICE_FLOORPLAN,
    multipath=OFFICE_MULTIPATH,
    radars=(RadarPlacement(), RadarPlacement(wall="left")),
    humans=(HumanSpec(program=ActivityProgram.of("walk")),),
    reflector=ReflectorSpec(kind="walking-ghost"),
))

register_scenario(ScenarioSpec(
    name="home-pace",
    description="a pacing resident: pause-and-turn dashes then a normal "
                "walk",
    floorplan=_HOME_FLOORPLAN,
    multipath=HOME_MULTIPATH,
    humans=(
        HumanSpec(program=ActivityProgram((
            ProgramStep("pause-and-turn", 0.7), ProgramStep("walk", 0.3),
        ))),
    ),
))

register_scenario(ScenarioSpec(
    name="studio-ghost",
    description="a small 6.0 x 4.8 m studio defended by a walking ghost "
                "alone (no occupant)",
    floorplan=FloorplanSpec(
        size=(6.0, 4.8),
        clutter=((0.8, 4.2, 2.0), (5.2, 4.0, 1.5), (3.0, 4.4, 1.0)),
    ),
    multipath=MultipathSpec(mean_paths=1.2, excess_distance_mean=0.4,
                            excess_distance_std=0.25,
                            relative_amplitude=0.22, angle_spread=0.15),
    reflector=ReflectorSpec(kind="walking-ghost"),
))

register_scenario(ScenarioSpec(
    name="warehouse-sweep",
    description="an 18 x 12 m warehouse with two brisk walkers and almost "
                "no multipath",
    floorplan=FloorplanSpec(
        size=(18.0, 12.0),
        clutter=((4.0, 10.0, 4.0), (14.0, 10.0, 4.0), (9.0, 6.0, 2.0)),
    ),
    multipath=MultipathSpec(mean_paths=0.3, excess_distance_mean=0.8,
                            excess_distance_std=0.5,
                            relative_amplitude=0.10, angle_spread=0.08),
    humans=(
        HumanSpec(program=ActivityProgram.of("stride")),
        HumanSpec(program=ActivityProgram.of("walk", "stride")),
    ),
    occlusion=OcclusionSpec(body_radius=0.3),
    traffic_weight=0.5,
))
