"""The scenario registry: named specs, one dispatch point.

Mirrors the kernel-registry discipline (:mod:`repro.radar.stages`): every
consumer — experiments runner, serve traffic generator, golden-digest
suite, CLI — resolves scenarios exclusively through :func:`get_scenario`,
so the catalog in :mod:`repro.scenarios.catalog` is the complete list of
deployments the system knows how to build.
"""

from __future__ import annotations

from repro.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "SCENARIOS",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "traffic_weights",
]

#: Every registered scenario, keyed by name. The single dispatch point.
SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register a spec under its name; duplicate names are rejected."""
    if spec.name in SCENARIOS:
        raise ScenarioError(f"duplicate scenario registration: {spec.name}")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    spec = SCENARIOS.get(name)
    if spec is None:
        known = ", ".join(sorted(SCENARIOS))
        raise ScenarioError(f"unknown scenario {name!r}; known: {known}")
    return spec


def scenario_names() -> tuple[str, ...]:
    """Sorted names of every registered scenario."""
    return tuple(sorted(SCENARIOS))


def traffic_weights() -> dict[str, float]:
    """Positive traffic weights of the registry, keyed by scenario name."""
    return {name: spec.traffic_weight
            for name, spec in sorted(SCENARIOS.items())
            if spec.traffic_weight > 0}
