"""Typed scenario specs: the declarative layer behind scene construction.

A :class:`ScenarioSpec` is pure data — floorplan and clutter, radar
placements (including multi-radar eavesdroppers), per-human activity
programs, the reflector strategy, breathing and occlusion configuration,
and a seed policy. Specs never touch the RNG or build objects themselves;
:mod:`repro.scenarios.builders` turns them into environments and scenes,
and :mod:`repro.scenarios.registry` names them. Keeping the spec layer
declarative is what lets one registered scenario drive the experiments
runner, the serve traffic generator, and the golden-digest suite at once.
"""

from __future__ import annotations

import dataclasses

from repro import constants
from repro.errors import ScenarioError
from repro.radar.channel import MultipathSpec
from repro.radar.scene import BreathingSpec, OcclusionSpec
from repro.trajectories.synthesis import ActivityProgram

__all__ = [
    "RADAR_WALLS",
    "REFLECTOR_KINDS",
    "FloorplanSpec",
    "HumanSpec",
    "RadarPlacement",
    "ReflectorSpec",
    "ScenarioSpec",
]

#: Walls a radar may be mounted on, named from the room's coordinate frame.
RADAR_WALLS: tuple[str, ...] = ("bottom", "left", "right", "top")

#: Registered reflector strategies (see ``builders.REFLECTOR_STRATEGIES``).
REFLECTOR_KINDS: tuple[str, ...] = ("none", "static-ghost", "walking-ghost",
                                    "breathing-ghost")


@dataclasses.dataclass(frozen=True)
class FloorplanSpec:
    """Room footprint plus its static clutter.

    Attributes:
        size: room (width, depth) in meters, origin at (0, 0).
        clutter: static reflectors as ``(x, y, rcs)`` triples.
        margin: wall standoff of the human walking area, meters.
    """

    size: tuple[float, float]
    clutter: tuple[tuple[float, float, float], ...] = ()
    margin: float = 0.3

    def __post_init__(self) -> None:
        width, depth = self.size
        if width <= 0 or depth <= 0:
            raise ScenarioError("floorplan size must be positive")
        if self.margin < 0 or 2 * self.margin >= min(width, depth):
            raise ScenarioError(
                f"margin {self.margin} leaves no walkable interior in a "
                f"{width} x {depth} room"
            )
        for x, y, _rcs in self.clutter:
            if not (0 <= x <= width and 0 <= y <= depth):
                raise ScenarioError(
                    f"clutter at ({x}, {y}) lies outside the {width} x "
                    f"{depth} footprint"
                )


@dataclasses.dataclass(frozen=True)
class RadarPlacement:
    """One wall-mounted radar: which wall, where along it, how far in.

    The first placement in a spec is the *primary* eavesdropper — the one
    the RF-Protect panel is deployed against (1.2 m in front, same wall,
    per Sec. 9.3). Additional placements model the Sec. 13 multi-radar
    threat.
    """

    wall: str = "bottom"
    fraction: float = 0.5
    inset: float = 0.1

    def __post_init__(self) -> None:
        if self.wall not in RADAR_WALLS:
            raise ScenarioError(
                f"radar wall must be one of {RADAR_WALLS}, got {self.wall!r}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ScenarioError(
                f"radar wall fraction must be in [0, 1], got {self.fraction}"
            )
        if self.inset <= 0:
            raise ScenarioError("radar inset must be positive")


@dataclasses.dataclass(frozen=True)
class HumanSpec:
    """One simulated human: an activity program plus body parameters.

    Attributes:
        program: the activity sequence this human executes.
        rcs: mean radar cross-section of the body.
        breathing: chest-motion override; ``None`` keeps the
            :class:`~repro.radar.scene.HumanTarget` default.
        start: fixed start position; ``None`` samples one from the
            human's own RNG stream.
    """

    program: ActivityProgram
    rcs: float = 1.0
    breathing: BreathingSpec | None = None
    start: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.rcs <= 0:
            raise ScenarioError(f"human rcs must be positive, got {self.rcs}")


@dataclasses.dataclass(frozen=True)
class ReflectorSpec:
    """Which RF-Protect defense (if any) the scenario deploys.

    Attributes:
        kind: strategy name, resolved through the
            ``builders.REFLECTOR_STRATEGIES`` registry — ``none``,
            ``static-ghost``, ``walking-ghost``, or ``breathing-ghost``.
        ghost_offset: static/breathing ghost position relative to the
            panel center, meters.
        ghost_profile: walking-ghost shape: index into the motion
            simulator's activity profiles.
        breathing_hz: commanded phantom breathing rate (``breathing-ghost``).
    """

    kind: str = "none"
    ghost_offset: tuple[float, float] = (0.4, 2.5)
    ghost_profile: int = 2
    breathing_hz: float = 0.3

    def __post_init__(self) -> None:
        if self.kind not in REFLECTOR_KINDS:
            raise ScenarioError(
                f"reflector kind must be one of {REFLECTOR_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.breathing_hz <= 0:
            raise ScenarioError("breathing_hz must be positive")


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One named deployment: everything needed to build its scene.

    Attributes:
        name: registry key (``SCENARIOS[name]``).
        description: one-line catalog summary.
        floorplan: room footprint, clutter, walking margin.
        multipath: the environment's dynamic-multipath statistics.
        radars: wall placements; the first is the primary eavesdropper.
        humans: per-human specs, each with its own activity program.
        reflector: the deployed defense strategy.
        occlusion: inter-person shadowing model; ``None`` disables it.
        duration_s: span of the synthesized human traces, seconds.
        num_points: points per synthesized human trace.
        default_seed: seed used when the builder is given none.
        traffic_weight: relative share of this scenario in serve traffic
            mixes; 0 keeps it out of generated load.
    """

    name: str
    description: str
    floorplan: FloorplanSpec
    multipath: MultipathSpec
    radars: tuple[RadarPlacement, ...] = (RadarPlacement(),)
    humans: tuple[HumanSpec, ...] = ()
    reflector: ReflectorSpec = ReflectorSpec()
    occlusion: OcclusionSpec | None = None
    duration_s: float = constants.TRACE_DURATION_S
    num_points: int = constants.TRACE_NUM_POINTS
    default_seed: int = 0
    traffic_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must not be empty")
        if not self.radars:
            raise ScenarioError("a scenario needs at least one radar")
        if self.duration_s <= 0:
            raise ScenarioError("duration_s must be positive")
        if self.num_points < 2:
            raise ScenarioError("num_points must be >= 2")
        if self.traffic_weight < 0:
            raise ScenarioError("traffic_weight must be >= 0")
