"""Traffic mixes: scenario-weighted load plans for the sensing service.

A :class:`TrafficMix` turns the registry's ``traffic_weight`` declarations
into a deterministic request plan: which scenario each request senses and
with what seed. Plans depend only on the base seed and each request's
*position* (scenario choices come from one generator, per-request seeds
from ``SeedSequence`` children by index), so a load run is reproducible
regardless of how the requests are later batched or which worker executes
them — the same discipline the experiments runner uses.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

import numpy as np

from repro.errors import ScenarioError
from repro.scenarios.registry import get_scenario, traffic_weights

__all__ = ["PlannedRequest", "TrafficMix"]


@dataclasses.dataclass(frozen=True)
class PlannedRequest:
    """One planned sense request: which scenario, with what seed."""

    scenario: str
    seed: int


class TrafficMix:
    """A weighted mix of registered scenarios.

    Args:
        weights: scenario name -> positive relative weight. ``None`` uses
            every registered scenario's ``traffic_weight`` (entries with
            weight 0 stay out). Names are validated against the registry.
    """

    def __init__(self, weights: Mapping[str, float] | None = None) -> None:
        resolved = dict(traffic_weights()) if weights is None else dict(weights)
        if not resolved:
            raise ScenarioError("a traffic mix needs at least one scenario")
        for name, weight in resolved.items():
            get_scenario(name)  # unknown names raise here
            if weight <= 0:
                raise ScenarioError(
                    f"traffic weight for {name!r} must be positive, "
                    f"got {weight}"
                )
        self._names = sorted(resolved)
        total = sum(resolved[name] for name in self._names)
        self._probabilities = np.array(
            [resolved[name] / total for name in self._names])

    @property
    def scenarios(self) -> tuple[str, ...]:
        """The mix's scenario names, sorted."""
        return tuple(self._names)

    def plan(self, num_requests: int, *,
             base_seed: int = 0) -> list[PlannedRequest]:
        """A deterministic request plan of length ``num_requests``.

        Scenario choices are drawn from one generator seeded by
        ``base_seed``; each request's sense seed is spawned by position,
        so request *i* is the same regardless of how many requests follow.
        """
        if num_requests < 1:
            raise ScenarioError(
                f"num_requests must be >= 1, got {num_requests}"
            )
        chooser = np.random.default_rng(np.random.SeedSequence(base_seed))
        choices = chooser.choice(len(self._names), size=num_requests,
                                 p=self._probabilities)
        children = np.random.SeedSequence(base_seed).spawn(num_requests)
        seeds = [int(child.generate_state(1, dtype=np.uint32)[0])
                 for child in children]
        return [PlannedRequest(scenario=self._names[int(index)], seed=seed)
                for index, seed in zip(choices, seeds)]
