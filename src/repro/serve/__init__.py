"""`repro.serve`: an async micro-batching front for the sensing engine.

The simulation core answers one question at a time: "what does this radar
see in this scene?" Production-scale evaluation asks that question millions
of times — GAN-in-the-loop training, parameter sweeps, many tenants sharing
one simulation host. This package turns the core into a *service*:

- :class:`SenseRequest` / :class:`SenseResponse` — the request/response
  shapes (scene + radar config + seed in; result + serving telemetry out).
- :class:`MicroBatcher` — the pure flush-on-size-or-window batching policy.
- :mod:`repro.serve.engine` — fused multi-request execution on the
  vectorized synthesis/receive kernels, with per-request naive fallback.
- :class:`SenseService` — the asyncio scheduler: bounded admission,
  deadlines, worker pool, graceful degradation.
- :class:`InProcessClient` — a synchronous facade for non-async callers.
- :class:`MetricsRegistry` — counters/gauges/histograms with JSON export.
- :class:`SessionStore` / :class:`TrackRequest` — long-lived tracking
  sessions: per-session incremental tracker state with idle eviction and
  exact checkpoint/restore (``repro.serve.session``).

Served results are bitwise identical to direct ``FmcwRadar.sense`` calls
with the same parameters, regardless of arrival order or batch grouping —
``tests/test_serve_service.py`` pins this.
"""

from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.client import InProcessClient
from repro.serve.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serve.request import (
    BACKEND_NAIVE_FALLBACK,
    BACKEND_VECTORIZED,
    BatchKey,
    SenseRequest,
    SenseResponse,
    TrackRequest,
    TrackResponse,
    TrackSnapshot,
)
from repro.serve.service import SenseService, ServiceConfig
from repro.serve.session import SessionConfig, SessionStore, TrackingSession

__all__ = [
    "BACKEND_NAIVE_FALLBACK",
    "BACKEND_VECTORIZED",
    "BATCH_SIZE_BUCKETS",
    "Batch",
    "BatchKey",
    "Counter",
    "Gauge",
    "Histogram",
    "InProcessClient",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "MicroBatcher",
    "SenseRequest",
    "SenseResponse",
    "SenseService",
    "ServiceConfig",
    "SessionConfig",
    "SessionStore",
    "TrackRequest",
    "TrackResponse",
    "TrackSnapshot",
    "TrackingSession",
]
