"""``rfprotect serve``: run the sensing service on a demo spoofing workload.

Stands up an :class:`~repro.serve.client.InProcessClient` (service knobs
from the ``RF_PROTECT_SERVE_*`` environment registry), builds one
ghost-injection scene — the office deployment with a deployed RF-Protect
tag spoofing a walking human — and fires a burst of concurrent sense
requests with distinct seeds at it, exactly the shape of a GAN-in-the-loop
training or parameter-sweep workload. Prints a per-backend completion
summary plus the latency/batch-size telemetry, and can export the full
metrics snapshot as JSON.

Run: ``rfprotect serve --requests 32 --metrics-json metrics.json``
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from collections import Counter as TallyCounter
from collections.abc import Sequence

import numpy as np

from repro.experiments.environments import office_environment
from repro.radar.config import RadarConfig
from repro.radar.scene import Scene
from repro.serve.client import InProcessClient
from repro.serve.request import SenseRequest
from repro.serve.service import ServiceConfig
from repro.signal.chirp import ChirpConfig

__all__ = ["build_demo_scene", "main"]

#: Short demo chirp: 64 beat samples keeps a laptop-class host responsive
#: while exercising every stage of the fused pipeline.
DEMO_CHIRP_DURATION_S = 3.2e-5


def build_demo_scene(seed: int = 7) -> tuple[Scene, RadarConfig]:
    """The demo workload's scene: office clutter plus one deployed ghost.

    Returns the scene and the radar configuration it should be sensed with
    (the office eavesdropper's, on the shortened demo chirp).
    """
    from repro.trajectories import HumanMotionSimulator

    environment = office_environment()
    fast_config = dataclasses.replace(
        environment.radar_config,
        chirp=ChirpConfig(duration=DEMO_CHIRP_DURATION_S),
    )
    environment = dataclasses.replace(environment, radar_config=fast_config)

    rng = np.random.default_rng(seed)
    simulator = HumanMotionSimulator(rng=rng)
    controller = environment.make_controller()
    shape = simulator.sample_trajectory(profile_index=2).centered()
    placed = controller.place_trajectory(shape)
    schedule = controller.plan_trajectory(placed)
    tag = environment.make_tag()
    tag.deploy(schedule)

    scene = environment.make_scene()
    scene.add(tag)
    return scene, fast_config


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``rfprotect serve``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="rfprotect serve",
        description="serve a demo ghost-injection sensing workload",
    )
    parser.add_argument(
        "--requests", type=int, default=16,
        help="concurrent sense requests to issue (default: 16)",
    )
    parser.add_argument(
        "--sense-duration", type=float, default=0.4,
        help="sensing span per request, seconds (default: 0.4)",
    )
    parser.add_argument(
        "--metrics-json", default=None,
        help="write the full metrics snapshot to this JSON file",
    )
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error("--requests must be >= 1")

    scene, radar_config = build_demo_scene()
    requests = [
        SenseRequest(scene=scene, duration=args.sense_duration, seed=seed)
        for seed in range(args.requests)
    ]

    service_config = ServiceConfig.from_env()
    print(f"serving {args.requests} request(s): "
          f"max_batch={service_config.max_batch_size}, "
          f"window={service_config.batch_window_ms}ms, "
          f"queue_depth={service_config.queue_depth}, "
          f"workers={service_config.workers}")

    with InProcessClient(service_config,
                         default_radar_config=radar_config) as client:
        started = time.perf_counter()
        responses = client.sense_many(requests)
        elapsed = time.perf_counter() - started
        snapshot = client.metrics_snapshot()

    backends = TallyCounter(response.backend for response in responses)
    backend_summary = ", ".join(
        f"{count} {backend}" for backend, count in sorted(backends.items())
    )
    frames = sum(len(response.result.times) for response in responses)
    print(f"completed {len(responses)} request(s) ({backend_summary}) "
          f"covering {frames} frames in {elapsed:.3f}s "
          f"({len(responses) / elapsed:.1f} req/s)")

    histograms = snapshot["histograms"]
    assert isinstance(histograms, dict)
    batch_hist = histograms.get("batch.size")
    latency_hist = histograms.get("request.latency_s")
    if isinstance(batch_hist, dict) and batch_hist["count"]:
        mean_batch = float(batch_hist["sum"]) / int(batch_hist["count"])
        print(f"batches: {batch_hist['count']} executed, "
              f"mean size {mean_batch:.1f}")
    if isinstance(latency_hist, dict):
        print(f"latency: p50 {float(latency_hist['p50']) * 1e3:.1f}ms, "
              f"p95 {float(latency_hist['p95']) * 1e3:.1f}ms")

    if args.metrics_json is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        print(f"metrics snapshot written to {args.metrics_json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
