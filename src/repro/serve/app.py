"""``rfprotect serve``: run the sensing service on a demo spoofing workload.

Stands up an :class:`~repro.serve.client.InProcessClient` (service knobs
from the ``RF_PROTECT_SERVE_*`` environment registry), builds a scene
from a registered scenario (``--scenario``, default the office deployment
with a deployed RF-Protect tag spoofing a walking human) and fires a
burst of concurrent sense requests with distinct seeds at it, exactly the
shape of a GAN-in-the-loop training or parameter-sweep workload. With
``--mix`` each request's scenario is drawn from the registry's
traffic-weight mix (:class:`~repro.scenarios.TrafficMix`) instead, every
request carrying its scenario's radar config. Prints a per-backend
completion summary plus the latency/batch-size telemetry, and can export
the full metrics snapshot as JSON.

With ``--sessions N`` the demo switches to the *stateful* workload: N
concurrent tracking sessions, each sensing the scene in ``--chunks``
consecutive tracked requests whose frames feed one persistent
per-session tracker (``RF_PROTECT_SESSION_*`` governs eviction). The
summary then includes per-session frame/track counts and the session
store's gauges.

Run: ``rfprotect serve --requests 32 --metrics-json metrics.json``
or:  ``rfprotect serve --sessions 8 --chunks 4``
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from collections import Counter as TallyCounter
from collections.abc import Sequence

import numpy as np

from repro.radar.config import RadarConfig
from repro.radar.scene import Scene
from repro.scenarios import TrafficMix, build
from repro.serve.client import InProcessClient
from repro.serve.request import SenseRequest, TrackRequest
from repro.serve.service import ServiceConfig
from repro.signal.chirp import ChirpConfig

__all__ = ["build_demo_scene", "main"]

#: Short demo chirp: 64 beat samples keeps a laptop-class host responsive
#: while exercising every stage of the fused pipeline.
DEMO_CHIRP_DURATION_S = 3.2e-5


def build_demo_scene(seed: int = 7,
                     scenario: str = "office") -> tuple[Scene, RadarConfig]:
    """A registered scenario's scene, on the shortened demo chirp.

    Returns the scene and the radar configuration it should be sensed
    with (the scenario's primary radar, demo chirp). Environment-only
    specs (no humans, no reflector — the classic ``office``/``home``
    deployments) get the traditional demo content: one deployed
    RF-Protect tag spoofing a walking human. Content-bearing specs are
    assembled by the scenario builder itself.
    """
    from repro.trajectories import HumanMotionSimulator

    built = build(scenario, seed=seed)
    fast_config = dataclasses.replace(
        built.environment.radar_config,
        chirp=ChirpConfig(duration=DEMO_CHIRP_DURATION_S),
    )
    environment = dataclasses.replace(built.environment,
                                      radar_config=fast_config)
    if built.spec.humans or built.spec.reflector.kind != "none":
        fast = dataclasses.replace(
            built, environment=environment,
            radar_configs=tuple(
                dataclasses.replace(config, chirp=fast_config.chirp)
                for config in built.radar_configs
            ),
        )
        return fast.build_scene(), fast_config

    rng = np.random.default_rng(seed)
    simulator = HumanMotionSimulator(rng=rng)
    controller = environment.make_controller()
    shape = simulator.sample_trajectory(profile_index=2).centered()
    placed = controller.place_trajectory(shape)
    schedule = controller.plan_trajectory(placed)
    tag = environment.make_tag()
    tag.deploy(schedule)

    scene = environment.make_scene()
    scene.add(tag)
    return scene, fast_config


def _run_session_demo(client: InProcessClient, scene: Scene, *,
                      sessions: int, chunks: int, duration: float) -> None:
    """Drive ``sessions`` concurrent tracking sessions, ``chunks`` each.

    Every chunk continues the previous one in scene time
    (``start_time=None``), so each session's tracker follows the ghost
    across the whole span under one set of persistent track IDs. Chunks
    are submitted as futures round by round — all sessions' chunk *k*
    in flight together — so tracked requests coalesce into shared
    sensing batches exactly like the stateless burst.
    """
    session_ids = [client.create_session() for _ in range(sessions)]
    last = None
    for chunk in range(chunks):
        futures = [
            client.submit_tracked(TrackRequest(
                session_id=session_id, scene=scene, duration=duration,
                seed=chunk,
            ))
            for session_id in session_ids
        ]
        last = [future.result() for future in futures]
    assert last is not None
    total_frames = sum(response.frames_total for response in last)
    tracked = sum(len(response.active_tracks) for response in last)
    print(f"{sessions} session(s) x {chunks} chunk(s): "
          f"{total_frames} frames ingested, "
          f"{tracked} active track(s) across sessions")
    for response in last[:4]:
        print(f"  {response.session_id}: {response.frames_total} frames, "
              f"{len(response.active_tracks)} active, "
              f"{len(response.tracks)} finalized")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``rfprotect serve``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="rfprotect serve",
        description="serve a demo ghost-injection sensing workload",
    )
    parser.add_argument(
        "--requests", type=int, default=16,
        help="concurrent sense requests to issue (default: 16)",
    )
    parser.add_argument(
        "--sense-duration", type=float, default=0.4,
        help="sensing span per request, seconds (default: 0.4)",
    )
    parser.add_argument(
        "--metrics-json", default=None,
        help="write the full metrics snapshot to this JSON file",
    )
    parser.add_argument(
        "--sessions", type=int, default=0,
        help="run the stateful demo with this many concurrent tracking "
             "sessions instead of the stateless burst (default: 0 = off)",
    )
    parser.add_argument(
        "--chunks", type=int, default=3,
        help="tracked requests per session in the stateful demo "
             "(default: 3)",
    )
    parser.add_argument(
        "--scenario", default=None,
        help="registered scenario to serve (default: $RF_PROTECT_SCENARIO "
             "or 'office')",
    )
    parser.add_argument(
        "--mix", action="store_true",
        help="draw each request's scenario from the registry's traffic-"
             "weight mix instead of serving one scenario",
    )
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.sessions < 0:
        parser.error("--sessions must be >= 0")
    if args.chunks < 1:
        parser.error("--chunks must be >= 1")
    if args.mix and args.sessions > 0:
        parser.error("--mix applies to the stateless burst, not --sessions")

    from repro.config import get_scenario_name, get_scenario_seed

    scenario = (args.scenario if args.scenario is not None
                else get_scenario_name() or "office")
    scene, radar_config = build_demo_scene(scenario=scenario)
    service_config = ServiceConfig.from_env()
    print(f"serving: max_batch={service_config.max_batch_size}, "
          f"window={service_config.batch_window_ms}ms, "
          f"queue_depth={service_config.queue_depth}, "
          f"workers={service_config.workers}")

    with InProcessClient(service_config,
                         default_radar_config=radar_config) as client:
        started = time.perf_counter()
        if args.sessions > 0:
            _run_session_demo(client, scene, sessions=args.sessions,
                              chunks=args.chunks,
                              duration=args.sense_duration)
            elapsed = time.perf_counter() - started
            print(f"session demo finished in {elapsed:.3f}s")
            snapshot = client.metrics_snapshot()
            gauges = snapshot["gauges"]
            assert isinstance(gauges, dict)
            print(f"session store: {gauges.get('sessions.live', 0):.0f} "
                  f"live, {gauges.get('sessions.parked', 0):.0f} parked")
        else:
            if args.mix:
                # Per-request scenarios drawn from the registry's traffic
                # weights; one scene (and demo radar config) per distinct
                # scenario, attached per request so mixed batches sense
                # with the right radar.
                plan = TrafficMix().plan(args.requests,
                                         base_seed=get_scenario_seed())
                cache: dict[str, tuple[Scene, RadarConfig]] = {
                    scenario: (scene, radar_config)
                }
                requests = []
                for planned in plan:
                    if planned.scenario not in cache:
                        cache[planned.scenario] = build_demo_scene(
                            scenario=planned.scenario)
                    mix_scene, mix_config = cache[planned.scenario]
                    requests.append(SenseRequest(
                        scene=mix_scene, duration=args.sense_duration,
                        seed=planned.seed, config=mix_config,
                    ))
                tally = TallyCounter(planned.scenario for planned in plan)
                print("traffic mix: " + ", ".join(
                    f"{count} {name}"
                    for name, count in sorted(tally.items())
                ))
            else:
                requests = [
                    SenseRequest(scene=scene, duration=args.sense_duration,
                                 seed=seed)
                    for seed in range(args.requests)
                ]
            responses = client.sense_many(requests)
            elapsed = time.perf_counter() - started
            snapshot = client.metrics_snapshot()

            backends = TallyCounter(
                response.backend for response in responses
            )
            backend_summary = ", ".join(
                f"{count} {backend}"
                for backend, count in sorted(backends.items())
            )
            frames = sum(
                len(response.result.times) for response in responses
            )
            print(f"completed {len(responses)} request(s) "
                  f"({backend_summary}) covering {frames} frames in "
                  f"{elapsed:.3f}s ({len(responses) / elapsed:.1f} req/s)")

    histograms = snapshot["histograms"]
    assert isinstance(histograms, dict)
    batch_hist = histograms.get("batch.size")
    latency_hist = histograms.get("request.latency_s")
    if isinstance(batch_hist, dict) and batch_hist["count"]:
        mean_batch = float(batch_hist["sum"]) / int(batch_hist["count"])
        print(f"batches: {batch_hist['count']} executed, "
              f"mean size {mean_batch:.1f}")
    if isinstance(latency_hist, dict):
        print(f"latency: p50 {float(latency_hist['p50']) * 1e3:.1f}ms, "
              f"p95 {float(latency_hist['p95']) * 1e3:.1f}ms")

    if args.metrics_json is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        print(f"metrics snapshot written to {args.metrics_json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
