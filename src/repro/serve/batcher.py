"""The dynamic micro-batching core: pure, synchronous, event-driven.

This is the scheduler's brain, deliberately free of asyncio, clocks, and
I/O: callers push ``(key, item)`` pairs with explicit timestamps and poll
for due flushes. Keeping the policy pure makes it exhaustively testable —
``tests/test_serve_property.py`` drives it with hypothesis-generated
arrival patterns and proves the conservation laws (nothing lost, nothing
duplicated, no batch over size, homogeneous keys, bounded holding time)
without a single sleep.

Policy, matching the classic dynamic-batching recipe (flush on *max batch
size* or *max latency*, whichever comes first):

- each distinct key has at most one **open batch**;
- an arrival joins its key's open batch (creating it if absent, stamping
  the batch's window from the *first* arrival);
- a batch flushes immediately when it reaches ``max_batch_size``
  (reason ``"size"``), or at the first ``poll`` whose ``now`` is past
  ``opened_at + window_s`` (reason ``"window"``);
- ``drain`` flushes everything regardless of age (service shutdown).
"""

from __future__ import annotations

import dataclasses
from typing import Generic, Hashable, TypeVar

from repro.errors import ConfigurationError

__all__ = ["Batch", "MicroBatcher"]

K = TypeVar("K", bound=Hashable)
T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class Batch(Generic[K, T]):
    """One flushed batch: a key-homogeneous group of items.

    Attributes:
        key: the compatibility key every item shares.
        items: the items in admission order.
        opened_at: timestamp of the first arrival (the window anchor).
        flushed_at: timestamp of the flush decision.
        reason: ``"size"``, ``"window"``, or ``"drain"``.
    """

    key: K
    items: tuple[T, ...]
    opened_at: float
    flushed_at: float
    reason: str

    def __len__(self) -> int:
        return len(self.items)


@dataclasses.dataclass
class _OpenBatch(Generic[T]):
    opened_at: float
    items: list[T]


class MicroBatcher(Generic[K, T]):
    """Groups arrivals by key; flushes on size or window expiry."""

    def __init__(self, max_batch_size: int, window_s: float) -> None:
        if max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if window_s < 0:
            raise ConfigurationError(
                f"window_s must be >= 0, got {window_s}"
            )
        self.max_batch_size = max_batch_size
        self.window_s = window_s
        # Insertion-ordered: ties between simultaneously due groups flush
        # in first-opened order, keeping the scheduler deterministic for a
        # given arrival sequence.
        self._open: dict[K, _OpenBatch[T]] = {}

    def pending_count(self) -> int:
        """Items currently held in open (unflushed) batches."""
        return sum(len(open_batch.items) for open_batch in self._open.values())

    def add(self, key: K, item: T, now: float) -> Batch[K, T] | None:
        """Admit one item; returns the flushed batch if it filled up.

        A ``window_s`` of zero means "no coalescing": every arrival flushes
        its (singleton or size-capped) batch immediately.
        """
        open_batch = self._open.get(key)
        if open_batch is None:
            open_batch = _OpenBatch(opened_at=now, items=[])
            self._open[key] = open_batch
        open_batch.items.append(item)
        if len(open_batch.items) >= self.max_batch_size:
            return self._flush(key, now, "size")
        if self.window_s == 0.0:
            return self._flush(key, now, "window")
        return None

    def due(self, now: float) -> list[Batch[K, T]]:
        """Flush every open batch whose latency window has expired."""
        expired = [
            key for key, open_batch in self._open.items()
            if now - open_batch.opened_at >= self.window_s
        ]
        return [self._flush(key, now, "window") for key in expired]

    def next_due_at(self) -> float | None:
        """When the earliest open batch's window expires; ``None`` if idle."""
        if not self._open:
            return None
        earliest = min(
            open_batch.opened_at for open_batch in self._open.values()
        )
        return earliest + self.window_s

    def drain(self, now: float) -> list[Batch[K, T]]:
        """Flush everything immediately (shutdown path)."""
        return [self._flush(key, now, "drain") for key in list(self._open)]

    def remove(self, key: K, predicate_item: T) -> bool:
        """Drop one held item (deadline expiry while still unflushed).

        Returns whether the item was found and removed; an emptied batch is
        closed so it cannot flush as a zero-item group.
        """
        open_batch = self._open.get(key)
        if open_batch is None:
            return False
        try:
            open_batch.items.remove(predicate_item)
        except ValueError:
            return False
        if not open_batch.items:
            del self._open[key]
        return True

    def _flush(self, key: K, now: float, reason: str) -> Batch[K, T]:
        open_batch = self._open.pop(key)
        return Batch(key=key, items=tuple(open_batch.items),
                     opened_at=open_batch.opened_at, flushed_at=now,
                     reason=reason)
