"""In-process client: synchronous callers -> the asyncio sensing service.

:class:`InProcessClient` owns a private event loop on a daemon thread,
starts a :class:`~repro.serve.service.SenseService` on it, and bridges
every call with ``run_coroutine_threadsafe``. Synchronous code (tests, the
CLI, benchmarks, notebooks) gets the full serving stack — micro-batching,
admission control, deadlines, metrics — without touching asyncio:

    with InProcessClient() as client:
        response = client.sense(SenseRequest(scene=scene, duration=2.0))

Concurrency without threads on the caller's side: :meth:`submit` returns a
``concurrent.futures.Future`` immediately, so issuing many requests
back-to-back lets the service coalesce them into shared batches
(:meth:`sense_many` is that pattern packaged).
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Sequence
from concurrent.futures import Future
from types import TracebackType
from typing import Any, Coroutine

from repro.radar.config import RadarConfig
from repro.radar.tracker import TrackerConfig
from repro.serve.metrics import MetricsRegistry
from repro.serve.request import (
    SenseRequest,
    SenseResponse,
    TrackRequest,
    TrackResponse,
)
from repro.serve.service import SenseService, ServiceConfig

__all__ = ["InProcessClient"]


class InProcessClient:
    """A synchronous facade over :class:`SenseService` on a private loop."""

    def __init__(self, config: ServiceConfig | None = None, *,
                 default_radar_config: RadarConfig | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="rfprotect-serve-loop",
            daemon=True,
        )
        self._thread.start()
        self._service = SenseService(
            config,
            default_radar_config=default_radar_config,
            metrics=metrics,
        )
        self._closed = False
        self._call(self._service.start())

    def _call(self, coro: Coroutine[Any, Any, Any]) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    @property
    def service(self) -> SenseService:
        return self._service

    def submit(self, request: SenseRequest) -> Future[SenseResponse]:
        """Submit without waiting; the future resolves off-thread.

        Submitting many requests before collecting any result is what lets
        the scheduler fill batches.
        """
        return asyncio.run_coroutine_threadsafe(
            self._service.submit(request), self._loop
        )

    def sense(self, request: SenseRequest) -> SenseResponse:
        """Submit one request and block for its response."""
        return self.submit(request).result()

    def sense_many(self, requests: Sequence[SenseRequest]
                   ) -> list[SenseResponse]:
        """Submit a burst of requests, then collect responses in order.

        The whole burst crosses into the event loop in a single hop and the
        submits are scheduled back to back, so the scheduler sees all of
        them inside one coalescing window. Responses come back in request
        order; the first per-request failure (e.g. admission rejection) is
        re-raised after the burst settles.
        """

        async def _submit_all() -> list[SenseResponse | BaseException]:
            return await asyncio.gather(
                *(self._service.submit(request) for request in requests),
                return_exceptions=True,
            )

        results = self._call(_submit_all())
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    def create_session(self, session_id: str | None = None, *,
                       tracker_config: TrackerConfig | None = None) -> str:
        """Open a tracking session; returns its id."""
        result: str = self._call(self._service.create_session(
            session_id, tracker_config=tracker_config
        ))
        return result

    def track(self, request: TrackRequest) -> TrackResponse:
        """Submit one tracked (session) request and block for its response."""
        return self.submit_tracked(request).result()

    def submit_tracked(self, request: TrackRequest
                       ) -> Future[TrackResponse]:
        """Submit a tracked request without waiting."""
        return asyncio.run_coroutine_threadsafe(
            self._service.submit_tracked(request), self._loop
        )

    def session_checkpoint(self, session_id: str) -> dict[str, object]:
        """Export the session's current tracker checkpoint."""
        result: dict[str, object] = self._call(
            self._service.session_checkpoint(session_id)
        )
        return result

    def restore_session(self, session_id: str,
                        checkpoint: dict[str, object]) -> str:
        """Open a session primed from an exported checkpoint."""
        result: str = self._call(
            self._service.restore_session(session_id, checkpoint)
        )
        return result

    def end_session(self, session_id: str) -> dict[str, object]:
        """Close a session; returns its final checkpoint."""
        result: dict[str, object] = self._call(
            self._service.end_session(session_id)
        )
        return result

    def metrics_snapshot(self) -> dict[str, object]:
        """Point-in-time JSON-serializable view of the service telemetry."""
        return self._service.metrics.snapshot()

    def close(self) -> None:
        """Stop the service, the loop, and the loop thread."""
        if self._closed:
            return
        self._closed = True
        self._call(self._service.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def __enter__(self) -> InProcessClient:
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.close()
