"""Batch execution: a key-homogeneous group of requests -> sensing results.

This is the synchronous compute half of the service (the scheduler half
lives in :mod:`repro.serve.service`); workers call :func:`execute_batch`
from the executor thread pool. The fused path rides the PR 1/PR 3
vectorized engines end to end:

1. **Emission** — each request's scene components and thermal noise are
   drawn frame-by-frame from that request's *own* seeded generator, in the
   exact draw order of a direct ``FmcwRadar.sense`` call, so batching can
   never perturb a request's random stream.
2. **Fused synthesis** — all requests' frames go through *one*
   :func:`~repro.radar.batch.synthesize_frame_batches` call: one packed
   component batch, one beat/carrier/steering pass, per-frame contractions
   that each read only their own slice.
3. **Fused receive** — one blocked range FFT over the concatenated cube,
   one shared range-crop mask (equal ``BatchKey`` guarantees equal crop),
   one shifted-difference background subtraction with each request's first
   frame re-zeroed (frame 0 of a request has no predecessor — exactly the
   reference warmup), and one cube-wide lag-vector pass. Only the final
   thin GEMM (:func:`~repro.radar.pipeline.beamform_from_lags_stacked`)
   keeps per-request shape: requests with equal frame counts share one
   stacked matmul whose slices are exactly the per-request GEMMs, so every
   output has shapes that depend only on the request itself — results are
   bitwise independent of how the scheduler grouped them.

The fused passes are bound as explicit kernels of the stage graph
(:mod:`repro.radar.stages`) and run through the same instrumented
executor as every direct ``sense`` call, so served batches show up in the
identical per-stage wall-time histograms.

If anything in the fused path raises, :func:`execute_batch` degrades
gracefully: each request is retried alone on the reference kernels
(``synth="naive", pipeline="naive"``), isolating a poisoned request while
the rest of the batch still completes.
"""

from __future__ import annotations

import dataclasses
import functools
import logging
from collections.abc import Sequence

import numpy as np

from repro.radar.batch import synthesize_frame_batches
from repro.radar.config import RadarConfig
from repro.radar.pipeline import (
    SweepProcessingResult,
    batched_background_subtract,
    batched_lag_vectors,
    batched_range_profiles,
    beamform_from_lags_stacked,
)
from repro.radar.processing import ZERO_PAD_FACTOR, range_keep_mask
from repro.radar.radar import FmcwRadar, SensingResult
from repro.radar.stages import ExecutionContext, Stage, StageBinding, execute
from repro.serve.request import (
    BACKEND_NAIVE_FALLBACK,
    BACKEND_VECTORIZED,
    BatchKey,
    SenseRequest,
)
from repro.signal.spectral import range_axis

__all__ = [
    "ExecutionItem",
    "ExecutionOutcome",
    "execute_batch",
    "radar_for",
]

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class ExecutionItem:
    """One admitted request handed to the execution engine."""

    request_id: int
    request: SenseRequest
    key: BatchKey


@dataclasses.dataclass(frozen=True)
class ExecutionOutcome:
    """What the engine produced for one item: a result or an error."""

    request_id: int
    result: SensingResult | None
    backend: str
    error: BaseException | None = None


@functools.lru_cache(maxsize=64)
def radar_for(config: RadarConfig) -> FmcwRadar:
    """A shared radar facade per distinct configuration.

    ``FmcwRadar`` is immutable after construction (config + array
    geometry), so one instance can serve every request and executor thread
    with that configuration; caching it keeps per-request admission cheap
    and reuses the array's process-wide steering/taper/lag-basis memos.
    """
    return FmcwRadar(config)


def _fused_emit(ctx: ExecutionContext) -> None:
    """Per-request emission, each from its own seeded generator.

    Draw order inside a request is exactly that of a direct
    ``FmcwRadar.sense`` call, so batching can never perturb a request's
    random stream.
    """
    radar: FmcwRadar = ctx.workspace["radar"]
    sweeps = []
    noises = []
    times_list = []
    for item in ctx.workspace["items"]:
        request = item.request
        rng = np.random.default_rng(request.seed)
        times = radar.frame_times(request.duration, request.start_time)
        components, noise = radar.sweep_components(request.scene, times, rng)
        sweeps.append(components)
        noises.append(noise)
        times_list.append(times)
    ctx.workspace["sweeps"] = sweeps
    ctx.workspace["noises"] = noises
    ctx.workspace["times_list"] = times_list
    ctx.workspace["frame_counts"] = [len(times) for times in times_list]
    ctx.times = np.concatenate(times_list)


def _fused_synthesize(ctx: ExecutionContext) -> None:
    """One packed synthesis pass over every request's sweep."""
    radar: FmcwRadar = ctx.workspace["radar"]
    fused, cubes = synthesize_frame_batches(ctx.workspace["sweeps"],
                                            ctx.config, radar.array)
    for cube, noise in zip(cubes, ctx.workspace["noises"]):
        if noise is not None:
            cube += noise  # disjoint views: writes land in `fused`
    ctx.workspace["frames"] = fused


def _fused_range_fft(ctx: ExecutionContext) -> None:
    """One blocked range FFT over the concatenated beat cube."""
    ctx.workspace["raw_profiles"] = batched_range_profiles(
        ctx.workspace["frames"], ctx.config
    )
    ctx.workspace["ranges_full"] = range_axis(
        ctx.config.chirp, zero_pad_factor=ZERO_PAD_FACTOR
    )


def _fused_subtract(ctx: ExecutionContext) -> None:
    """Shared crop + shifted difference with request boundaries re-zeroed."""
    keep = range_keep_mask(ctx.workspace["ranges_full"],
                           min_range=ctx.min_range, max_range=ctx.max_range)
    ranges = ctx.workspace["ranges_full"][keep]
    ranges.flags.writeable = False
    ctx.workspace["keep"] = keep
    ctx.workspace["ranges"] = ranges
    kept_profiles = np.ascontiguousarray(
        ctx.workspace["raw_profiles"][:, :, keep]
    )
    subtracted = batched_background_subtract(kept_profiles)
    # A request's first frame has no predecessor inside *its* sweep; the
    # cube-wide shifted difference must not leak the previous request's
    # last frame across the boundary.
    frame_counts = ctx.workspace["frame_counts"]
    starts = np.cumsum([0, *frame_counts[:-1]])
    subtracted[starts] = 0.0
    ctx.workspace["subtracted"] = subtracted


def _fused_beamform(ctx: ExecutionContext) -> None:
    """Cube-wide lag vectors, then per-request-shaped stacked GEMMs."""
    radar: FmcwRadar = ctx.workspace["radar"]
    angles = ctx.config.angle_grid()
    angles.flags.writeable = False
    ranges = ctx.workspace["ranges"]
    frame_counts = ctx.workspace["frame_counts"]

    lag_vectors = batched_lag_vectors(ctx.workspace["subtracted"],
                                      radar.array)

    num_bins = int(ranges.shape[0])
    num_angles = int(angles.shape[0])

    # Per-request-shaped GEMMs: each output's shape depends only on its own
    # request, keeping results bitwise independent of the batch grouping.
    # Requests with equal frame counts share one stacked matmul whose
    # slices are exactly those per-request GEMMs.
    frame_offsets = np.concatenate(([0], np.cumsum(frame_counts)))
    by_frame_count: dict[int, list[int]] = {}
    for i, count in enumerate(frame_counts):
        by_frame_count.setdefault(count, []).append(i)
    power_cubes: dict[int, np.ndarray] = {}
    for num_frames, group in by_frame_count.items():
        rows = num_frames * num_bins
        stack = np.stack([
            lag_vectors[frame_offsets[i] * num_bins:
                        frame_offsets[i] * num_bins + rows]
            for i in group
        ])
        power = beamform_from_lags_stacked(stack, radar.array, angles)
        for slot, i in enumerate(group):
            cube = power[slot].reshape(num_frames, num_bins, num_angles)
            cube.flags.writeable = False
            power_cubes[i] = cube
    ctx.workspace["angles"] = angles
    ctx.workspace["frame_offsets"] = frame_offsets
    ctx.workspace["power_cubes"] = power_cubes


#: The fused batch plan: the same stage sequence as a direct sense call,
#: bound to multi-request kernels and instrumented under the same stages.
_FUSED_PLAN: tuple[StageBinding, ...] = (
    StageBinding(Stage.EMIT, backend="fused", kernel=_fused_emit),
    StageBinding(Stage.SYNTHESIZE, backend="fused", kernel=_fused_synthesize),
    StageBinding(Stage.RANGE_FFT, backend="fused", kernel=_fused_range_fft),
    StageBinding(Stage.BACKGROUND_SUBTRACT, backend="fused",
                 kernel=_fused_subtract),
    StageBinding(Stage.BEAMFORM, backend="fused", kernel=_fused_beamform),
)


def _run_group_vectorized(key: BatchKey,
                          items: Sequence[ExecutionItem],
                          ) -> list[SensingResult]:
    """The fused vectorized path for one key-homogeneous group."""
    config = key.config
    radar = radar_for(config)

    ctx = ExecutionContext(
        array=radar.array, times=np.empty(0, dtype=np.float64),
        config=config, max_range=key.max_range, min_range=config.min_range,
    )
    ctx.workspace["radar"] = radar
    ctx.workspace["items"] = items
    execute(_FUSED_PLAN, ctx)

    raw_profiles = ctx.workspace["raw_profiles"]
    frame_offsets = ctx.workspace["frame_offsets"]
    power_cubes = ctx.workspace["power_cubes"]
    ranges = ctx.workspace["ranges"]
    angles = ctx.workspace["angles"]

    results: list[SensingResult] = []
    for i, times in enumerate(ctx.workspace["times_list"]):
        frame_slice = slice(int(frame_offsets[i]), int(frame_offsets[i + 1]))
        raw_slice = raw_profiles[frame_slice]
        sweep = SweepProcessingResult(raw_profiles=raw_slice,
                                      power_cube=power_cubes[i],
                                      ranges=ranges, angles=angles,
                                      times=times)
        results.append(SensingResult(times=times, profiles=sweep.profiles(),
                                     raw_profiles=raw_slice, config=config,
                                     array=radar.array))
    return results


def _run_single_naive(item: ExecutionItem) -> SensingResult:
    """The degradation path: one request on the reference kernels."""
    request = item.request
    radar = radar_for(item.key.config)
    rng = np.random.default_rng(request.seed)
    return radar.sense(request.scene, request.duration, rng=rng,
                       start_time=request.start_time,
                       max_range=item.key.max_range,
                       synth="naive", pipeline="naive")


def execute_batch(items: Sequence[ExecutionItem]) -> list[ExecutionOutcome]:
    """Execute one flushed batch; never raises, reports per-item outcomes.

    Tries the fused vectorized path for the whole group first; on any
    failure, degrades to per-request naive execution so a single poisoned
    request cannot take its batch-mates down with it.
    """
    if not items:
        return []
    key = items[0].key
    if any(item.key != key for item in items):
        raise ValueError("execute_batch requires a key-homogeneous batch")
    try:
        results = _run_group_vectorized(key, items)
    except Exception as error:
        logger.warning(
            "vectorized batch path failed for %d request(s) (%s: %s); "
            "degrading to the naive backend",
            len(items), type(error).__name__, error,
        )
        return [_fallback_outcome(item) for item in items]
    return [
        ExecutionOutcome(request_id=item.request_id, result=result,
                         backend=BACKEND_VECTORIZED)
        for item, result in zip(items, results)
    ]


def _fallback_outcome(item: ExecutionItem) -> ExecutionOutcome:
    try:
        result = _run_single_naive(item)
    except Exception as error:  # surfaced per request, not swallowed
        logger.warning("naive fallback failed for request %d (%s: %s)",
                       item.request_id, type(error).__name__, error)
        return ExecutionOutcome(request_id=item.request_id, result=None,
                                backend=BACKEND_NAIVE_FALLBACK, error=error)
    return ExecutionOutcome(request_id=item.request_id, result=result,
                            backend=BACKEND_NAIVE_FALLBACK)
