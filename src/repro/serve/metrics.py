"""Telemetry core for the sensing service: counters, gauges, histograms.

The service must answer "what is it doing right now?" without a debugger
attached: how many requests were admitted/rejected/expired, how large the
coalesced batches actually are, where the latency percentiles sit, how deep
the queue is. This module is a minimal, dependency-free metrics registry —
Prometheus-shaped (monotonic counters, set-point gauges, fixed-bucket
histograms) but exporting plain JSON via :meth:`MetricsRegistry.snapshot`,
so a test, the CLI, or a log shipper can consume it directly.

All instruments are thread-safe: the scheduler mutates them from the event
loop while the worker pool's executor threads record execution timings.
Percentiles are estimated from the histogram buckets with linear
interpolation — deterministic, O(buckets), and honest about its resolution
(the bucket bounds are the measurement grid).
"""

from __future__ import annotations

import dataclasses
import json
import threading
from collections.abc import Sequence

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
]

#: Default latency grid, seconds: sub-millisecond to tens of seconds.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Default batch-size grid: powers of two up to a generous batch cap.
BATCH_SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)


@dataclasses.dataclass
class Counter:
    """A monotonically increasing event count."""

    name: str
    description: str = ""
    _value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


@dataclasses.dataclass
class Gauge:
    """A value that goes up and down (queue depth, in-flight requests)."""

    name: str
    description: str = ""
    _value: float = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, delta: float) -> None:
        self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket histogram with interpolated percentile estimates.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    """

    def __init__(self, name: str, bounds: Sequence[float],
                 description: str = "") -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges or any(hi <= lo for hi, lo in zip(edges[1:], edges[:-1])):
            raise ValueError(
                f"histogram {name} needs strictly increasing bucket bounds"
            )
        self.name = name
        self.description = description
        self.bounds = edges
        self._counts = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self._counts[index] += 1
        self._count += 1
        self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) from the buckets.

        Linear interpolation inside the containing bucket; observations in
        the overflow bucket report the last finite edge (a floor, stated
        rather than invented).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.bounds):
            bucket = self._counts[i]
            if cumulative + bucket >= rank and bucket > 0:
                within = (rank - cumulative) / bucket
                return lower + (bound - lower) * min(max(within, 0.0), 1.0)
            cumulative += bucket
            lower = bound
        return self.bounds[-1]

    def to_dict(self) -> dict[str, object]:
        buckets = [
            {"le": bound, "count": self._counts[i]}
            for i, bound in enumerate(self.bounds)
        ]
        buckets.append({"le": "inf", "count": self._counts[-1]})
        return {
            "description": self.description,
            "count": self._count,
            "sum": self._sum,
            "buckets": buckets,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named instruments behind one lock, exported as one JSON document."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, description)
            return self._counters[name]

    def gauge(self, name: str, description: str = "") -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, description)
            return self._gauges[name]

    def histogram(self, name: str, bounds: Sequence[float],
                  description: str = "") -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, bounds, description)
            return self._histograms[name]

    def inc(self, name: str, amount: int = 1) -> None:
        """Shorthand: increment (auto-creating) the counter ``name``."""
        counter = self.counter(name)
        with self._lock:
            counter.inc(amount)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        """Shorthand: observe into (auto-creating) the histogram ``name``."""
        histogram = self.histogram(name, bounds)
        with self._lock:
            histogram.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Shorthand: set (auto-creating) the gauge ``name``."""
        gauge = self.gauge(name)
        with self._lock:
            gauge.set(value)

    def snapshot(self, *, now: float | None = None,
                 sequence: int | None = None) -> dict[str, object]:
        """A point-in-time JSON-serializable view of every instrument.

        ``now``/``sequence`` are caller-supplied context keys (the
        ``SessionStore`` ``now=`` convention: the registry never reads a
        clock), so snapshots appended to an audit ledger are
        deterministic and replayable — the same instrument state with
        the same stamps serializes to the same bytes.
        """
        with self._lock:
            snapshot: dict[str, object] = {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
            }
        if now is not None:
            snapshot["now"] = float(now)
        if sequence is not None:
            snapshot["sequence"] = int(sequence)
        return snapshot

    def to_json(self, *, indent: int | None = 2, now: float | None = None,
                sequence: int | None = None) -> str:
        """The snapshot as a JSON document (same ``now``/``sequence`` keys)."""
        return json.dumps(self.snapshot(now=now, sequence=sequence),
                          indent=indent, sort_keys=True)
