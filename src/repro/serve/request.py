"""Request/response shapes of the sensing service.

A :class:`SenseRequest` is everything one caller wants sensed: a scene, the
radar configuration to sense it with, a sensing span, a seed (the *only*
source of randomness — the service never draws from hidden state), and an
optional per-request deadline. Requests whose radar configuration and range
crop agree share a :class:`BatchKey`; the scheduler only coalesces requests
with equal keys, because only those can ride the same vectorized
synthesis/receive passes (same chirp grid, same antenna count, same kept
range bins).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.radar.config import RadarConfig
from repro.radar.radar import SensingResult
from repro.radar.scene import Scene

__all__ = [
    "BACKEND_NAIVE_FALLBACK",
    "BACKEND_VECTORIZED",
    "BatchKey",
    "SenseRequest",
    "SenseResponse",
]


#: How a served request was ultimately executed.
BACKEND_VECTORIZED = "vectorized"
BACKEND_NAIVE_FALLBACK = "naive-fallback"


@dataclasses.dataclass(frozen=True)
class BatchKey:
    """The compatibility class of a request: what may share its batch.

    Two requests with equal keys produce beat cubes on the same sample grid
    with the same antenna count and crop to the same range bins, so their
    frames can be concatenated through one fused synthesis + receive pass.
    ``RadarConfig`` is a frozen dataclass of floats/tuples, so value
    equality (not object identity) defines the grouping.
    """

    config: RadarConfig
    max_range: float


@dataclasses.dataclass(frozen=True)
class SenseRequest:
    """One sensing job submitted to the service.

    Attributes:
        scene: the room and its entities to sense.
        duration: sensing span in seconds (must be positive).
        seed: seed of the per-request ``np.random.Generator``; fixed seed
            in, bitwise-identical :class:`SensingResult` out, regardless of
            arrival order or batch grouping.
        config: radar configuration; ``None`` uses the service's default.
        start_time: scene time of the first frame.
        max_range: optional far crop of the range axis; ``None`` derives
            the room-diagonal default exactly like ``FmcwRadar.sense``.
        deadline_s: per-request deadline budget in seconds from admission;
            ``None`` uses the service default. Work still queued when the
            deadline passes is cancelled, never executed.
    """

    scene: Scene
    duration: float
    seed: int = 0
    config: RadarConfig | None = None
    start_time: float = 0.0
    max_range: float | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError(
                f"sense duration must be positive, got {self.duration}"
            )
        if self.max_range is not None and self.max_range <= 0:
            raise ConfigurationError(
                f"max_range must be positive, got {self.max_range}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )


@dataclasses.dataclass(frozen=True)
class SenseResponse:
    """A completed request: the sensing result plus serving telemetry.

    Attributes:
        request_id: admission-ordered id assigned by the service.
        result: the :class:`SensingResult`, bitwise identical to a direct
            ``FmcwRadar.sense`` call with the same request parameters.
        backend: ``"vectorized"`` for the fused batch path or
            ``"naive-fallback"`` when the service degraded to the reference
            kernels after a vectorized failure.
        batch_size: how many requests shared this request's batch.
        queued_s: admission -> execution-start wait, seconds.
        total_s: admission -> completion latency, seconds.
    """

    request_id: int
    result: SensingResult
    backend: str
    batch_size: int
    queued_s: float
    total_s: float
