"""Request/response shapes of the sensing service.

A :class:`SenseRequest` is everything one caller wants sensed: a scene, the
radar configuration to sense it with, a sensing span, a seed (the *only*
source of randomness — the service never draws from hidden state), and an
optional per-request deadline. Requests whose radar configuration and range
crop agree share a :class:`BatchKey`; the scheduler only coalesces requests
with equal keys, because only those can ride the same vectorized
synthesis/receive passes (same chirp grid, same antenna count, same kept
range bins).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.radar.config import RadarConfig
from repro.radar.radar import SensingResult
from repro.radar.scene import Scene
from repro.radar.tracker import Track

__all__ = [
    "BACKEND_NAIVE_FALLBACK",
    "BACKEND_VECTORIZED",
    "BatchKey",
    "SenseRequest",
    "SenseResponse",
    "TrackRequest",
    "TrackResponse",
    "TrackSnapshot",
]


#: How a served request was ultimately executed.
BACKEND_VECTORIZED = "vectorized"
BACKEND_NAIVE_FALLBACK = "naive-fallback"


@dataclasses.dataclass(frozen=True)
class BatchKey:
    """The compatibility class of a request: what may share its batch.

    Two requests with equal keys produce beat cubes on the same sample grid
    with the same antenna count and crop to the same range bins, so their
    frames can be concatenated through one fused synthesis + receive pass.
    ``RadarConfig`` is a frozen dataclass of floats/tuples, so value
    equality (not object identity) defines the grouping.
    """

    config: RadarConfig
    max_range: float


@dataclasses.dataclass(frozen=True)
class SenseRequest:
    """One sensing job submitted to the service.

    Attributes:
        scene: the room and its entities to sense.
        duration: sensing span in seconds (must be positive).
        seed: seed of the per-request ``np.random.Generator``; fixed seed
            in, bitwise-identical :class:`SensingResult` out, regardless of
            arrival order or batch grouping.
        config: radar configuration; ``None`` uses the service's default.
        start_time: scene time of the first frame.
        max_range: optional far crop of the range axis; ``None`` derives
            the room-diagonal default exactly like ``FmcwRadar.sense``.
        deadline_s: per-request deadline budget in seconds from admission;
            ``None`` uses the service default. Work still queued when the
            deadline passes is cancelled, never executed.
    """

    scene: Scene
    duration: float
    seed: int = 0
    config: RadarConfig | None = None
    start_time: float = 0.0
    max_range: float | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError(
                f"sense duration must be positive, got {self.duration}"
            )
        if self.max_range is not None and self.max_range <= 0:
            raise ConfigurationError(
                f"max_range must be positive, got {self.max_range}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )


@dataclasses.dataclass(frozen=True)
class SenseResponse:
    """A completed request: the sensing result plus serving telemetry.

    Attributes:
        request_id: admission-ordered id assigned by the service.
        result: the :class:`SensingResult`, bitwise identical to a direct
            ``FmcwRadar.sense`` call with the same request parameters.
        backend: ``"vectorized"`` for the fused batch path or
            ``"naive-fallback"`` when the service degraded to the reference
            kernels after a vectorized failure.
        batch_size: how many requests shared this request's batch.
        queued_s: admission -> execution-start wait, seconds.
        total_s: admission -> completion latency, seconds.
    """

    request_id: int
    result: SensingResult
    backend: str
    batch_size: int
    queued_s: float
    total_s: float


@dataclasses.dataclass(frozen=True)
class TrackRequest:
    """One incremental frame-ingestion job against a tracking session.

    The sensing half (scene, duration, seed, config, max_range) is exactly
    a :class:`SenseRequest` — tracked requests ride the same admission,
    :class:`BatchKey` coalescing, and fused execution as stateless ones.
    What a session adds is *continuity*: the sensed frames are ingested
    into the session's persistent :class:`~repro.radar.tracker
    .StreamingTracker`, so track identities survive across requests.

    Attributes:
        session_id: the session whose tracker ingests the sensed frames.
        scene: the room and its entities to sense.
        duration: sensing span in seconds (must be positive).
        seed: seed of the per-request generator (same determinism contract
            as :class:`SenseRequest`).
        config: radar configuration; ``None`` uses the service's default.
        start_time: scene time of the first frame; ``None`` continues one
            frame interval after the session's last ingested frame (0.0
            for a fresh session).
        max_range: optional far crop of the range axis.
        deadline_s: per-request deadline budget, as for sense requests.
    """

    session_id: str
    scene: Scene
    duration: float
    seed: int = 0
    config: RadarConfig | None = None
    start_time: float | None = None
    max_range: float | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ConfigurationError("session_id must be non-empty")
        if self.duration <= 0:
            raise ConfigurationError(
                f"sense duration must be positive, got {self.duration}"
            )
        if self.max_range is not None and self.max_range <= 0:
            raise ConfigurationError(
                f"max_range must be positive, got {self.max_range}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )


@dataclasses.dataclass(frozen=True)
class TrackSnapshot:
    """The wire-shaped view of one track at response time.

    A frozen value object (plain floats/ints, no live filter state) so
    responses can outlive the session, be compared across requests, and
    serialize cleanly.
    """

    track_id: int
    start_time: float
    last_time: float
    num_points: int
    age: int
    misses: int
    total_misses: int
    position: tuple[float, float]
    velocity: tuple[float, float]
    total_power: float

    @classmethod
    def from_track(cls, track: Track) -> TrackSnapshot:
        last = track.raw_positions[-1]
        velocity = track.filter.velocity
        return cls(
            track_id=track.track_id,
            start_time=float(track.times[0]),
            last_time=float(track.times[-1]),
            num_points=len(track),
            age=track.age,
            misses=track.misses,
            total_misses=track.total_misses,
            position=(float(last[0]), float(last[1])),
            velocity=(float(velocity[0]), float(velocity[1])),
            total_power=track.total_power,
        )


@dataclasses.dataclass(frozen=True)
class TrackResponse:
    """A completed tracked request: session-level tracking state + telemetry.

    Attributes:
        request_id: admission-ordered id of the underlying sense request.
        session_id: the session the frames were ingested into.
        frames_added: frames this request contributed.
        frames_total: frames the session's tracker has consumed in total.
        tracks: the finalized (quality-filtered) view, strongest first.
        active_tracks: every track still being followed, tentative ones
            included, in spawn order.
        backend: execution backend of the sensing batch.
        batch_size: how many requests shared the sensing batch.
        queued_s: admission -> execution-start wait, seconds.
        total_s: admission -> completion latency (ingestion included).
    """

    request_id: int
    session_id: str
    frames_added: int
    frames_total: int
    tracks: tuple[TrackSnapshot, ...]
    active_tracks: tuple[TrackSnapshot, ...]
    backend: str
    batch_size: int
    queued_s: float
    total_s: float
