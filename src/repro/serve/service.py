"""The asyncio sensing service: admission, scheduling, execution, telemetry.

:class:`SenseService` is the event-loop half of the serving stack. It wires
the pure :class:`~repro.serve.batcher.MicroBatcher` policy to real time and
real compute:

- **Admission control** — a bounded number of requests may wait for
  execution; beyond ``queue_depth``, submissions fail fast with
  :class:`~repro.errors.ServiceOverloadedError` instead of growing an
  unbounded backlog (load shedding, not buffering).
- **Micro-batching** — admitted requests coalesce per
  :class:`~repro.serve.request.BatchKey`; a batch flushes when it reaches
  ``max_batch_size`` or when its first request has waited
  ``batch_window_ms`` (a background flusher task polls the batcher).
- **Bounded worker pool** — ``workers`` asyncio workers pull flushed
  batches from a queue and run them on a thread pool (numpy releases the
  GIL in the kernels that matter), so the event loop never blocks on
  compute.
- **Deadlines and cancellation** — every request carries a deadline from
  admission; a request whose deadline passes while it is still queued is
  failed with :class:`~repro.errors.DeadlineExceededError` *before* any
  compute is spent on it, and a caller that cancels its future simply
  never gets resolved (its batch-mates are unaffected).
- **Graceful degradation** — execution is delegated to
  :func:`repro.serve.engine.execute_batch`, which falls back to the naive
  reference kernels per request if the fused vectorized path raises; the
  fallback is visible in the ``batches.fallback`` counter and each
  response's ``backend`` field.
- **Tracking sessions** — :meth:`SenseService.submit_tracked` senses
  through the same admission/batching path, then ingests the resulting
  frames into the request's session tracker
  (:class:`~repro.serve.session.SessionStore`); the flusher additionally
  runs the store's idle-eviction sweep on its own cadence.

Everything the service does is observable through its
:class:`~repro.serve.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.config import (
    get_serve_batch_window_ms,
    get_serve_deadline_s,
    get_serve_max_batch,
    get_serve_queue_depth,
    get_serve_workers,
)
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.radar.config import RadarConfig
from repro.serve.batcher import Batch, MicroBatcher
from repro.serve.engine import ExecutionItem, ExecutionOutcome, execute_batch, radar_for
from repro.serve.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.radar.tracker import TrackerConfig
from repro.serve.request import (
    BACKEND_VECTORIZED,
    BatchKey,
    SenseRequest,
    SenseResponse,
    TrackRequest,
    TrackResponse,
    TrackSnapshot,
)
from repro.serve.session import SessionConfig, SessionStore

__all__ = ["SenseService", "ServiceConfig"]

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Scheduling knobs of the sensing service.

    Attributes:
        max_batch_size: flush a batch as soon as it holds this many
            requests.
        batch_window_ms: flush a batch once its first request has waited
            this long, even if it is not full. Zero disables coalescing.
        queue_depth: maximum requests admitted but not yet executing;
            submissions beyond this are rejected.
        default_deadline_s: deadline applied to requests that do not carry
            their own.
        workers: concurrent batch executions (asyncio workers, each backed
            by one thread-pool slot).
    """

    max_batch_size: int = 32
    batch_window_ms: float = 2.0
    queue_depth: int = 256
    default_deadline_s: float = 30.0
    workers: int = 2

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.batch_window_ms < 0:
            raise ConfigurationError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.default_deadline_s <= 0:
            raise ConfigurationError(
                f"default_deadline_s must be positive, "
                f"got {self.default_deadline_s}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )

    @property
    def batch_window_s(self) -> float:
        return self.batch_window_ms / 1000.0

    @classmethod
    def from_env(cls) -> ServiceConfig:
        """Build from the typed ``RF_PROTECT_SERVE_*`` registry knobs."""
        return cls(
            max_batch_size=get_serve_max_batch(),
            batch_window_ms=get_serve_batch_window_ms(),
            queue_depth=get_serve_queue_depth(),
            default_deadline_s=get_serve_deadline_s(),
            workers=get_serve_workers(),
        )


@dataclasses.dataclass(eq=False)
class _Pending:
    """One admitted request waiting for (or in) execution."""

    request_id: int
    request: SenseRequest
    key: BatchKey
    future: asyncio.Future[SenseResponse]
    admitted_at: float
    deadline_at: float


ExecuteFn = Callable[[Sequence[ExecutionItem]], list[ExecutionOutcome]]


class SenseService:
    """Async micro-batching front of the FMCW sensing engine.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`
    explicitly. All methods must run on the event loop that ``start`` ran
    on; cross-thread callers should go through
    :class:`repro.serve.client.InProcessClient`.

    Args:
        config: scheduling knobs; ``None`` reads the ``RF_PROTECT_SERVE_*``
            environment registry.
        default_radar_config: radar configuration applied to requests that
            do not carry their own.
        metrics: telemetry registry to record into; ``None`` creates a
            private one (exposed as :attr:`metrics`).
        execute: batch-execution callable, overridable for tests; defaults
            to :func:`repro.serve.engine.execute_batch`.
        session_config: retention policy of the tracking-session store
            (exposed as :attr:`sessions`); ``None`` reads the
            ``RF_PROTECT_SESSION_*`` environment registry.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 default_radar_config: RadarConfig | None = None,
                 metrics: MetricsRegistry | None = None,
                 execute: ExecuteFn | None = None,
                 session_config: SessionConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig.from_env()
        self.default_radar_config = (
            default_radar_config if default_radar_config is not None
            else RadarConfig()
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._execute: ExecuteFn = execute if execute is not None else execute_batch
        self.sessions = SessionStore(session_config, metrics=self.metrics)
        self._batcher: MicroBatcher[BatchKey, _Pending] = MicroBatcher(
            max_batch_size=self.config.max_batch_size,
            window_s=self.config.batch_window_s,
        )
        self._running = False
        self._next_id = 0
        self._waiting = 0
        self._queue: asyncio.Queue[Batch[BatchKey, _Pending]] | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._tasks: list[asyncio.Task[None]] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind to the running loop and spawn the flusher/worker tasks."""
        if self._running:
            return
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="rfprotect-serve",
        )
        self._running = True
        self._tasks = [asyncio.create_task(self._flush_loop(),
                                           name="serve-flusher")]
        self._tasks.extend(
            asyncio.create_task(self._worker_loop(), name=f"serve-worker-{i}")
            for i in range(self.config.workers)
        )

    async def stop(self) -> None:
        """Drain held batches, finish queued work, and shut down."""
        if not self._running:
            return
        self._running = False
        assert self._queue is not None and self._executor is not None
        loop = asyncio.get_running_loop()
        for batch in self._batcher.drain(loop.time()):
            self._queue.put_nowait(batch)
        await self._queue.join()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self._executor.shutdown(wait=True)
        self._executor = None
        self._queue = None

    async def __aenter__(self) -> SenseService:
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- admission ---------------------------------------------------------

    def batch_key_for(self, request: SenseRequest) -> BatchKey:
        """The compatibility key this request would be grouped under."""
        config = (request.config if request.config is not None
                  else self.default_radar_config)
        max_range = (request.max_range if request.max_range is not None
                     else radar_for(config).default_max_range(request.scene))
        return BatchKey(config=config, max_range=float(max_range))

    async def submit(self, request: SenseRequest) -> SenseResponse:
        """Admit one request and await its result.

        Raises:
            ServiceClosedError: the service is not running.
            ServiceOverloadedError: the admission queue is full.
            DeadlineExceededError: the deadline expired before execution.
            ServeError subclasses from execution failures.
        """
        if not self._running or self._queue is None:
            self.metrics.inc("requests.rejected")
            raise ServiceClosedError(
                "sense request submitted to a service that is not running"
            )
        if self._waiting >= self.config.queue_depth:
            self.metrics.inc("requests.rejected")
            raise ServiceOverloadedError(
                f"admission queue is full "
                f"({self._waiting}/{self.config.queue_depth} waiting)"
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        deadline_s = (request.deadline_s if request.deadline_s is not None
                      else self.config.default_deadline_s)
        pending = _Pending(
            request_id=self._next_id,
            request=request,
            key=self.batch_key_for(request),
            future=loop.create_future(),
            admitted_at=now,
            deadline_at=now + deadline_s,
        )
        self._next_id += 1
        self._set_waiting(self._waiting + 1)
        self.metrics.inc("requests.submitted")
        full = self._batcher.add(pending.key, pending, now)
        if full is not None:
            self._queue.put_nowait(full)
        return await pending.future

    def _set_waiting(self, value: int) -> None:
        self._waiting = value
        self.metrics.set_gauge("queue.depth", float(value))

    # -- tracking sessions -------------------------------------------------

    async def create_session(self, session_id: str | None = None, *,
                             tracker_config: TrackerConfig | None = None,
                             ) -> str:
        """Open a tracking session; returns its (possibly assigned) id."""
        loop = asyncio.get_running_loop()
        session = self.sessions.create(session_id, now=loop.time(),
                                       tracker_config=tracker_config)
        return session.session_id

    async def session_checkpoint(self, session_id: str) -> dict[str, object]:
        """The session's current tracker checkpoint (JSON-serializable).

        Takes the session lock: a snapshot cut mid-ingestion would mix
        pre- and post-frame tracker state into one blob.
        """
        session = self.sessions.peek(session_id)
        async with session.lock:
            return self.sessions.checkpoint_of(session_id)

    async def restore_session(self, session_id: str,
                              checkpoint: dict[str, object]) -> str:
        """Open a session primed from a previously exported checkpoint.

        The prime-then-restore swap runs under the session lock so a
        concurrent tracked request (or the eviction sweep) can never see
        the half-initialized tracker/checkpoint pair.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        session = self.sessions.create(session_id, now=now)
        async with session.lock:
            session.checkpoint = dict(checkpoint)
            session.tracker = None
            # Checkpoint restore is CPU-bound on checkpoint size; for the
            # session-open path we take that cost on-loop deliberately —
            # it is a one-off, admission-rate-limited operation.
            self.sessions.get(session_id, now=now)  # rflint: disable=RFP014 -- accepted one-off restore cost
        return session.session_id

    async def end_session(self, session_id: str) -> dict[str, object]:
        """Close the session; returns its final checkpoint blob.

        Takes the session lock so the final snapshot cannot interleave
        with an in-flight tracked request's frame ingestion.
        """
        session = self.sessions.peek(session_id)
        async with session.lock:
            checkpoint = self.sessions.checkpoint_of(session_id)
            self.sessions.remove(session_id)
        return checkpoint

    async def submit_tracked(self, request: TrackRequest) -> TrackResponse:
        """Sense, then ingest the frames into the request's session tracker.

        The sensing half rides :meth:`submit` unchanged — same admission
        control, deadline handling, and :class:`BatchKey` coalescing as a
        stateless request (tracked and untracked requests share batches).
        Ingestion is serialized per session by the session lock, so
        concurrent tracked requests against one session apply their frames
        one request at a time.

        Raises everything :meth:`submit` raises, plus
        :class:`~repro.errors.SessionNotFoundError` for unknown (or
        already evicted-and-dropped) sessions.
        """
        loop = asyncio.get_running_loop()
        session = self.sessions.peek(request.session_id)
        async with session.lock:
            # Re-fetch under the lock: the eviction sweep may have parked
            # the session between peek and acquisition; get() restores it.
            # The restore path is CPU-bound (rebuilds Kalman state) and
            # runs on-loop deliberately: it is serialized per session by
            # this lock, bounded by checkpoint size, and moving it to the
            # executor would let the batcher interleave with a
            # half-restored tracker.
            session = self.sessions.get(
                request.session_id, now=loop.time()
            )  # rflint: disable=RFP014 -- deliberate on-loop restore, see comment above
            tracker = session.tracker
            assert tracker is not None
            config = (request.config if request.config is not None
                      else self.default_radar_config)
            if request.start_time is not None:
                start_time = request.start_time
            else:
                last = tracker.last_frame_time
                start_time = (0.0 if last is None
                              else last + config.frame_interval)
            response = await self.submit(SenseRequest(
                scene=request.scene,
                duration=request.duration,
                seed=request.seed,
                config=request.config,
                start_time=start_time,
                max_range=request.max_range,
                deadline_s=request.deadline_s,
            ))
            sensed_at = loop.time()
            before = tracker.frames_ingested
            if tracker.array is None:
                tracker.array = response.result.array
            response.result.stream_tracks(tracker=tracker)
            frames_added = tracker.frames_ingested - before
            now = loop.time()
            self.sessions.record_frames(session, frames_added, now=now)
            self.metrics.inc("requests.tracked")
            tracked = TrackResponse(
                request_id=response.request_id,
                session_id=session.session_id,
                frames_added=frames_added,
                frames_total=tracker.frames_ingested,
                tracks=tuple(TrackSnapshot.from_track(track)
                             for track in tracker.tracks()),
                active_tracks=tuple(TrackSnapshot.from_track(track)
                                    for track in tracker.active_tracks),
                backend=response.backend,
                batch_size=response.batch_size,
                queued_s=response.queued_s,
                total_s=response.total_s + (now - sensed_at),
            )
        # Lock released: re-apply the live bound a concurrent burst may
        # have overshot (locked sessions are unparkable while in flight).
        self.sessions.rebalance()
        return tracked

    # -- scheduling --------------------------------------------------------

    async def _flush_loop(self) -> None:
        """Poll the batcher for window-expired groups; sweep idle sessions.

        The session sweep rides the flusher instead of owning a task: it
        is a bookkeeping pass measured in microseconds, and coupling it to
        the tick the service already pays keeps the task inventory flat.
        """
        tick = max(self.config.batch_window_s / 4.0, 0.001)
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        sweep_interval = self.sessions.config.sweep_interval_s
        next_sweep = loop.time() + sweep_interval
        while True:
            now = loop.time()
            for batch in self._batcher.due(now):
                self._queue.put_nowait(batch)
            if now >= next_sweep:
                evicted = self.sessions.evict_idle(now)
                if evicted:
                    self.metrics.inc("sessions.evicted", evicted)
                next_sweep = now + sweep_interval
            await asyncio.sleep(tick)

    async def _worker_loop(self) -> None:
        """Pull flushed batches and execute them off-loop."""
        assert self._queue is not None
        queue = self._queue
        loop = asyncio.get_running_loop()
        while True:
            batch = await queue.get()
            try:
                await self._run_batch(loop, batch)
            except Exception as error:
                # A worker must survive anything a batch throws at it, and
                # no caller may be left awaiting forever: fail whatever
                # futures the batch still holds open.
                logger.exception("serve worker failed on a batch")
                for pending in batch.items:
                    if not pending.future.done():
                        self.metrics.inc("requests.failed")
                        pending.future.set_exception(ServeError(
                            f"batch execution failed: {error}"
                        ))
            finally:
                queue.task_done()

    async def _run_batch(self, loop: asyncio.AbstractEventLoop,
                         batch: Batch[BatchKey, _Pending]) -> None:
        started_at = loop.time()
        live: list[_Pending] = []
        for pending in batch.items:
            if pending.future.done():
                # Cancelled by the caller while queued: drop silently.
                self._set_waiting(self._waiting - 1)
            elif pending.deadline_at <= started_at:
                self._set_waiting(self._waiting - 1)
                self.metrics.inc("requests.expired")
                pending.future.set_exception(DeadlineExceededError(
                    f"request {pending.request_id} expired after "
                    f"{started_at - pending.admitted_at:.3f}s in queue "
                    f"(deadline was "
                    f"{pending.deadline_at - pending.admitted_at:.3f}s)"
                ))
            else:
                live.append(pending)
        if not live:
            return
        for pending in live:
            self._set_waiting(self._waiting - 1)
        self.metrics.observe("batch.size", float(len(live)),
                             bounds=BATCH_SIZE_BUCKETS)

        items = [
            ExecutionItem(request_id=pending.request_id,
                          request=pending.request, key=pending.key)
            for pending in live
        ]
        assert self._executor is not None
        outcomes = await loop.run_in_executor(
            self._executor, self._execute, items
        )
        finished_at = loop.time()

        self.metrics.inc("batches.executed")
        by_id = {outcome.request_id: outcome for outcome in outcomes}
        if any(outcome.backend != BACKEND_VECTORIZED for outcome in outcomes):
            self.metrics.inc("batches.fallback")
        for pending in live:
            if pending.future.done():
                continue
            outcome = by_id.get(pending.request_id)
            if outcome is None or (outcome.result is None
                                   and outcome.error is None):
                self.metrics.inc("requests.failed")
                pending.future.set_exception(ServeError(
                    f"request {pending.request_id} produced no outcome"
                ))
            elif outcome.error is not None or outcome.result is None:
                self.metrics.inc("requests.failed")
                assert outcome.error is not None
                pending.future.set_exception(outcome.error)
            else:
                queued_s = started_at - pending.admitted_at
                total_s = finished_at - pending.admitted_at
                self.metrics.inc("requests.completed")
                self.metrics.observe("request.queued_s", queued_s,
                                     bounds=LATENCY_BUCKETS_S)
                self.metrics.observe("request.latency_s", total_s,
                                     bounds=LATENCY_BUCKETS_S)
                pending.future.set_result(SenseResponse(
                    request_id=pending.request_id,
                    result=outcome.result,
                    backend=outcome.backend,
                    batch_size=len(live),
                    queued_s=queued_s,
                    total_s=total_s,
                ))
