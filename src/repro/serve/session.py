"""Long-lived tracking sessions: per-session tracker state with eviction.

The adversary the paper defends against tracks people *continuously* —
every new sweep updates the same tracks. This module gives the serving
stack that statefulness: a :class:`SessionStore` holds one
:class:`~repro.radar.tracker.StreamingTracker` per session ID, so a client
can sense a scene in many small requests and keep stable track identities
across all of them.

At "millions of users" scale most sessions are idle at any instant, so the
store is two-tiered:

- **Live** sessions hold a full tracker (numpy filter state, ready to
  ingest). At most ``max_live`` of them exist; beyond that the
  least-recently-active are *parked*.
- **Parked** sessions hold only the tracker's checkpoint blob (plain
  Python floats, JSON-serializable). Touching a parked session restores
  the tracker bit-for-bit — the checkpoint/restore round trip is exact by
  construction (:meth:`StreamingTracker.checkpoint`), so parking is
  invisible to tracking output. At most ``max_sessions`` sessions exist in
  total; beyond that the least-recently-active parked sessions are
  dropped.

The store never reads a clock: every operation takes ``now`` from the
caller (the service passes ``loop.time()``), which keeps the store
deterministic and directly testable. All mutating operations record into a
:class:`~repro.serve.metrics.MetricsRegistry` — ``sessions.live`` /
``sessions.parked`` gauges plus created/parked/restored/dropped/frame
counters.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Any

from repro.config import (
    get_session_idle_s,
    get_session_max_live,
    get_session_max_sessions,
    get_session_sweep_s,
)
from repro.errors import ConfigurationError, SessionNotFoundError
from repro.radar.antenna import UniformLinearArray
from repro.radar.tracker import StreamingTracker, TrackerConfig
from repro.serve.metrics import MetricsRegistry

__all__ = ["SessionConfig", "SessionStore", "TrackingSession"]


@dataclasses.dataclass(frozen=True)
class SessionConfig:
    """Retention policy of the session store.

    Attributes:
        max_live: sessions kept live (full tracker in memory) before the
            least-recently-active ones are parked to checkpoints.
        max_sessions: total sessions retained (live + parked) before the
            least-recently-active ones are dropped entirely.
        idle_timeout_s: inactivity span after which the eviction sweep
            parks a live session.
        sweep_interval_s: cadence of the service's eviction sweep.
    """

    max_live: int = 64
    max_sessions: int = 1024
    idle_timeout_s: float = 60.0
    sweep_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_live < 1:
            raise ConfigurationError(
                f"max_live must be >= 1, got {self.max_live}"
            )
        if self.max_sessions < self.max_live:
            raise ConfigurationError(
                f"max_sessions ({self.max_sessions}) must be >= max_live "
                f"({self.max_live})"
            )
        if self.idle_timeout_s <= 0:
            raise ConfigurationError(
                f"idle_timeout_s must be positive, got {self.idle_timeout_s}"
            )
        if self.sweep_interval_s <= 0:
            raise ConfigurationError(
                f"sweep_interval_s must be positive, "
                f"got {self.sweep_interval_s}"
            )

    @classmethod
    def from_env(cls) -> SessionConfig:
        """Build from the typed ``RF_PROTECT_SESSION_*`` registry knobs."""
        return cls(
            max_live=get_session_max_live(),
            max_sessions=get_session_max_sessions(),
            idle_timeout_s=get_session_idle_s(),
            sweep_interval_s=get_session_sweep_s(),
        )


@dataclasses.dataclass(eq=False)
class TrackingSession:
    """One session: a tracker (live) or its checkpoint blob (parked).

    Exactly one of ``tracker`` / ``checkpoint`` is set at any time. The
    ``lock`` serializes frame ingestion per session — concurrent tracked
    requests against the same session ingest one at a time, in completion
    order, so the tracker's frame-time monotonicity holds.
    """

    session_id: str
    created_at: float
    last_active: float
    tracker: StreamingTracker | None = None
    checkpoint: dict[str, Any] | None = None
    lock: asyncio.Lock = dataclasses.field(default_factory=asyncio.Lock)

    @property
    def live(self) -> bool:
        # Lock-free monitoring read: a single atomic attribute load whose
        # staleness only skews a gauge by one transition.
        return self.tracker is not None  # rflint: disable=RFP010 -- atomic monitoring read

    @property
    def frames_ingested(self) -> int:
        """Frames this session's tracker has consumed (parked or live).

        Lock-free monitoring read. Each state is snapshotted into a local
        before use so a concurrent park/restore cannot slip between the
        check and the dereference; the value may be one frame stale,
        which gauges and eviction accounting tolerate.
        """
        tracker = self.tracker  # rflint: disable=RFP010 -- atomic snapshot
        if tracker is not None:
            return tracker.frames_ingested
        checkpoint = self.checkpoint  # rflint: disable=RFP010 -- atomic snapshot
        assert checkpoint is not None
        return len(checkpoint["frame_times"])


class SessionStore:
    """Keyed tracker state with LRU parking and bounded retention.

    Not thread-safe by itself: all calls must come from one event loop (or
    one thread), the same discipline the service applies to its own state.
    Per-session *ingestion* concurrency is what the session locks are for.
    """

    def __init__(self, config: SessionConfig | None = None, *,
                 default_tracker_config: TrackerConfig | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.config = config if config is not None else SessionConfig.from_env()
        self.default_tracker_config = default_tracker_config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._sessions: dict[str, TrackingSession] = {}
        self._next_id = 0
        self._update_gauges()

    # -- inventory ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def ids(self) -> list[str]:
        """All retained session IDs, sorted."""
        return sorted(self._sessions)

    @property
    def live_count(self) -> int:
        return sum(1 for s in self._sessions.values() if s.live)

    @property
    def parked_count(self) -> int:
        return sum(1 for s in self._sessions.values() if not s.live)

    def _update_gauges(self) -> None:
        self.metrics.set_gauge("sessions.live", float(self.live_count))
        self.metrics.set_gauge("sessions.parked", float(self.parked_count))

    # -- lifecycle ---------------------------------------------------------

    def create(self, session_id: str | None = None, *, now: float,
               tracker_config: TrackerConfig | None = None,
               array: UniformLinearArray | None = None) -> TrackingSession:
        """Open a new session with a fresh tracker; returns it live.

        ``session_id=None`` allocates ``s-<n>`` ids; explicit ids must be
        unused. Creating beyond ``max_sessions`` drops the
        least-recently-active session to make room; beyond ``max_live``,
        the least-recently-active live session is parked.
        """
        if session_id is None:
            session_id = f"s-{self._next_id}"
            self._next_id += 1
        elif session_id in self._sessions:
            raise ConfigurationError(
                f"session {session_id!r} already exists"
            )
        config = (tracker_config if tracker_config is not None
                  else self.default_tracker_config)
        session = TrackingSession(
            session_id=session_id,
            created_at=now,
            last_active=now,
            tracker=StreamingTracker(array, config),
        )
        self._sessions[session_id] = session
        self.metrics.inc("sessions.created")
        self._enforce_bounds(exempt=session_id)
        self._update_gauges()
        return session

    def get(self, session_id: str, *, now: float,
            array: UniformLinearArray | None = None) -> TrackingSession:
        """The session, live — restoring its tracker from checkpoint if parked.

        Touches the session's activity clock, so getting a session also
        defers its eviction.
        """
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionNotFoundError(
                f"unknown tracking session {session_id!r} (evicted or "
                f"never created)"
            )
        session.last_active = now
        if session.tracker is None:
            assert session.checkpoint is not None
            session.tracker = StreamingTracker.from_checkpoint(
                session.checkpoint, array
            )
            session.checkpoint = None
            self.metrics.inc("sessions.restored")
            self._enforce_bounds(exempt=session_id)
        elif array is not None and session.tracker.array is None:
            session.tracker.array = array
        self._update_gauges()
        return session

    def peek(self, session_id: str) -> TrackingSession:
        """The session as stored — no restore, no activity touch."""
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionNotFoundError(
                f"unknown tracking session {session_id!r}"
            )
        return session

    def checkpoint_of(self, session_id: str) -> dict[str, Any]:
        """The session's current checkpoint blob (computed live if needed)."""
        session = self.peek(session_id)
        if session.tracker is not None:
            return session.tracker.checkpoint()
        assert session.checkpoint is not None
        return session.checkpoint

    def park(self, session_id: str) -> None:
        """Swap the session's live tracker for its checkpoint blob."""
        session = self.peek(session_id)
        if session.tracker is None:
            return
        session.checkpoint = session.tracker.checkpoint()
        session.tracker = None
        self.metrics.inc("sessions.parked")
        self._update_gauges()

    def remove(self, session_id: str) -> None:
        """Forget the session entirely."""
        if self._sessions.pop(session_id, None) is not None:
            self.metrics.inc("sessions.removed")
            self._update_gauges()

    def record_frames(self, session: TrackingSession, frames: int, *,
                      now: float) -> None:
        """Account ``frames`` newly ingested frames to the session."""
        session.last_active = now
        self.metrics.inc("sessions.frames", frames)

    # -- eviction ----------------------------------------------------------

    def evict_idle(self, now: float) -> int:
        """Park every live session idle for ``idle_timeout_s``; returns count.

        The service's flusher runs this every ``sweep_interval_s``.
        Sessions whose ingestion lock is currently held are skipped — a
        request is mid-flight on them, which is the opposite of idle.
        """
        parked = 0
        for session in list(self._sessions.values()):
            # Lock-free read of last_active: the sweep only uses it as an
            # idleness heuristic, and a stale value merely defers parking
            # to the next sweep (the locked() guard above already excludes
            # sessions with ingestion in flight).
            if (session.live and not session.lock.locked()
                    and now - session.last_active
                    >= self.config.idle_timeout_s):  # rflint: disable=RFP010 -- heuristic staleness is harmless
                self.park(session.session_id)
                parked += 1
        return parked

    def rebalance(self) -> None:
        """Re-apply the retention bounds outside a mutation event.

        A session mid-ingestion holds its lock and cannot be parked, so a
        burst of concurrent tracked requests legitimately overshoots
        ``max_live`` while in flight. The service calls this as each
        tracked request finishes (lock released), parking back down so the
        overshoot never outlives the burst that caused it.
        """
        self._enforce_bounds()

    def _enforce_bounds(self, *, exempt: str | None = None) -> None:
        """Apply the live and total retention bounds, LRU-first.

        ``exempt`` (the session being created/restored) is never parked or
        dropped — bounds are enforced against everything else.
        """
        by_idle = sorted(
            (s for s in self._sessions.values() if s.session_id != exempt),
            key=lambda s: s.last_active,
        )
        overflow = len(self._sessions) - self.config.max_sessions
        for session in [s for s in by_idle if not s.live][:max(overflow, 0)]:
            self._sessions.pop(session.session_id)
            self.metrics.inc("sessions.dropped")
        live_overflow = self.live_count - self.config.max_live
        if live_overflow > 0:
            for session in [s for s in by_idle
                            if s.live and not s.lock.locked()][:live_overflow]:
                self.park(session.session_id)
        self._update_gauges()
