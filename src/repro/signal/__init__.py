"""DSP substrate: chirp math, spectra, detection, filtering, and phase tools.

This package contains the signal-processing primitives shared by the radar
simulator (`repro.radar`) and the reflector model (`repro.reflector`). It is
deliberately free of scene or hardware concepts: everything here operates on
plain arrays and small configuration objects.
"""

from repro.signal.chirp import ChirpConfig
from repro.signal.detection import cfar_threshold, detect_peaks_2d, PeakDetection
from repro.signal.filtering import (
    median_filter,
    moving_average,
    reject_outliers,
    smooth_trajectory,
)
from repro.signal.phase import extract_phase, unwrap_phase, dominant_period
from repro.signal.spectral import (
    beat_spectrum,
    find_spectral_peaks,
    range_axis,
    range_fft,
)
from repro.signal.windows import get_window

__all__ = [
    "ChirpConfig",
    "PeakDetection",
    "beat_spectrum",
    "cfar_threshold",
    "detect_peaks_2d",
    "dominant_period",
    "extract_phase",
    "find_spectral_peaks",
    "get_window",
    "median_filter",
    "moving_average",
    "range_axis",
    "range_fft",
    "reject_outliers",
    "smooth_trajectory",
    "unwrap_phase",
]
