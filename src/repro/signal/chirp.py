"""FMCW chirp configuration and the time-of-flight arithmetic of Sec. 3.

An FMCW radar transmits a chirp whose frequency rises linearly with slope
``sl = bandwidth / duration``. Mixing the received reflection with the
transmitted chirp produces a *beat* tone at ``f_b = sl * tau`` for a path
delay ``tau``, so distance maps linearly to beat frequency (Eq. 1):

    distance = C * f_b / (2 * sl)

RF-Protect's key observation (Sec. 5.1) is the converse: shifting the beat
frequency by ``f_switch`` — achievable by on/off switching a reflector —
moves the *apparent* distance by ``C * f_switch / (2 * sl)`` without any
physical motion. Both directions of that mapping live here.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["ChirpConfig"]


@dataclasses.dataclass(frozen=True)
class ChirpConfig:
    """Parameters of the FMCW chirp and its dechirped (beat) sampling.

    Attributes:
        start_frequency: sweep start in Hz (paper: 6 GHz).
        bandwidth: sweep span in Hz (paper: 1 GHz).
        duration: chirp duration in seconds (paper: 500 us).
        sample_rate: ADC rate for the *beat* signal in Hz. The beat signal is
            narrowband (hundreds of kHz for room-scale delays), so a few MHz
            suffices — this is exactly why FMCW radars avoid GHz sampling.
    """

    start_frequency: float = constants.CHIRP_START_HZ
    bandwidth: float = constants.CHIRP_BANDWIDTH_HZ
    duration: float = constants.CHIRP_DURATION_S
    sample_rate: float = 2.0e6

    def __post_init__(self) -> None:
        if self.start_frequency <= 0:
            raise ConfigurationError("start_frequency must be positive")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if self.num_samples < 8:
            raise ConfigurationError(
                "chirp too short for its sample rate: fewer than 8 beat samples"
            )

    @property
    def slope(self) -> float:
        """Chirp slope ``sl`` in Hz/s."""
        return self.bandwidth / self.duration

    @property
    def center_frequency(self) -> float:
        """Sweep center frequency in Hz."""
        return self.start_frequency + self.bandwidth / 2.0

    @property
    def wavelength(self) -> float:
        """Wavelength at the center frequency, in meters."""
        return constants.SPEED_OF_LIGHT / self.center_frequency

    @property
    def num_samples(self) -> int:
        """Beat samples captured per chirp."""
        return int(round(self.duration * self.sample_rate))

    @property
    def range_resolution(self) -> float:
        """FMCW range resolution ``C / (2B)`` in meters (Sec. 3)."""
        return constants.SPEED_OF_LIGHT / (2.0 * self.bandwidth)

    @property
    def max_unambiguous_range(self) -> float:
        """Largest distance whose beat tone stays below Nyquist."""
        return self.beat_frequency_to_distance(self.sample_rate / 2.0)

    def sample_times(self) -> np.ndarray:
        """Sample instants within one chirp, shape ``(num_samples,)``."""
        return np.arange(self.num_samples) / self.sample_rate

    def distance_to_delay(self, distance: float | np.ndarray) -> float | np.ndarray:
        """Round-trip delay for a reflector at ``distance`` meters."""
        return 2.0 * np.asarray(distance, dtype=float) / constants.SPEED_OF_LIGHT

    def delay_to_distance(self, delay: float | np.ndarray) -> float | np.ndarray:
        """One-way distance for a round-trip ``delay`` (Eq. 1, time form)."""
        return constants.SPEED_OF_LIGHT * np.asarray(delay, dtype=float) / 2.0

    def distance_to_beat_frequency(self, distance: float | np.ndarray) -> float | np.ndarray:
        """Beat frequency produced by a reflector at ``distance`` meters."""
        return self.slope * self.distance_to_delay(distance)

    def beat_frequency_to_distance(self, beat_frequency: float | np.ndarray) -> float | np.ndarray:
        """Distance implied by a ``beat_frequency`` (Eq. 1)."""
        return (constants.SPEED_OF_LIGHT * np.asarray(beat_frequency, dtype=float)
                / (2.0 * self.slope))

    def switch_frequency_for_offset(self, distance_offset: float | np.ndarray) -> float | np.ndarray:
        """Switching frequency that shifts apparent distance by ``distance_offset``.

        This is Eq. 3 solved for ``f_switch``: the RF-Protect reflector turns
        itself on and off at this rate to appear ``distance_offset`` meters
        beyond its physical location. Positive offsets only make sense in the
        paper's deployment (the reflector sits on the wall nearest the radar).
        """
        return 2.0 * self.slope * np.asarray(distance_offset, dtype=float) / constants.SPEED_OF_LIGHT

    def offset_for_switch_frequency(self, switch_frequency: float | np.ndarray) -> float | np.ndarray:
        """Apparent distance offset created by ``switch_frequency`` (Eq. 3)."""
        return (constants.SPEED_OF_LIGHT * np.asarray(switch_frequency, dtype=float)
                / (2.0 * self.slope))

    def carrier_phase(self, distance: float | np.ndarray) -> float | np.ndarray:
        """Beat-tone phase ``2 pi f0 tau`` for a reflector at ``distance``.

        Sub-wavelength motion (e.g. a breathing chest) shows up in this term,
        which is how FMCW radars extract vital signs (Sec. 11.4).
        """
        return 2.0 * np.pi * self.start_frequency * self.distance_to_delay(distance)
